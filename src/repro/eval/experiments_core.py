"""Experiments over the local PASS: indexing granularity, naming, closure,
query suites, the PASS properties and provenance abstraction (E1-E4, E13, E14).

Each ``run_eN`` function is self-contained: it builds its workload,
measures, and returns an :class:`~repro.eval.result.ExperimentResult`.
Sizes are chosen so a single experiment completes in a few seconds; the
benchmark wrappers in ``benchmarks/`` simply call these functions.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from repro.core.abstraction import AgentAbstractionRule, DepthAbstractionRule
from repro.core.attributes import Timestamp
from repro.core.closure import make_closure
from repro.core.naming import FilenameConvention, ProvenanceNaming
from repro.core.pass_store import PassStore
from repro.core.provenance import Agent, PName, ProvenanceRecord
from repro.core.query import AttributeEquals, DerivedFrom, Query
from repro.core.tupleset import TupleSet, TupleSetWindower
from repro.eval.criteria import precision_recall
from repro.eval.result import ExperimentResult
from repro.pipeline.operators import RollupOperator
from repro.pipeline.versioning import VersionedRepository
from repro.sensors.workloads import (
    MedicalWorkload,
    TrafficWorkload,
    VolcanoWorkload,
)

__all__ = ["run_e1", "run_e2", "run_e3", "run_e4", "run_e13", "run_e14"]


# ----------------------------------------------------------------------
# E1 -- indexing granularity: per tuple vs per tuple set
# ----------------------------------------------------------------------
def run_e1(hours: float = 2.0, stations: int = 6) -> ExperimentResult:
    """Section II: indexing every reading is infeasible; index tuple sets."""
    result = ExperimentResult(
        experiment_id="E1",
        title="Index granularity: per tuple vs per tuple set",
        claim=(
            "Indexing every sensor reading individually is infeasible due to the "
            "sheer number of readings; tuple sets are the right granularity."
        ),
        headers=[
            "window_seconds",
            "readings",
            "tuple_sets",
            "per_tuple_index_entries",
            "per_set_index_entries",
            "entry_ratio",
            "per_set_ingest_ms",
        ],
    )
    workload = TrafficWorkload(seed=11, stations_per_city=stations)
    network = workload.networks[0]
    readings = network.readings(workload.start, hours * 3600.0)

    for window_seconds in (60.0, 300.0, 1800.0):
        windower = TupleSetWindower(
            window_seconds=window_seconds,
            base_attributes={"network": network.name, "domain": "traffic"},
            agent=network.agent,
        )
        tuple_sets = windower.window(readings)
        attrs_per_set = (
            len(tuple_sets[0].provenance.attributes) if tuple_sets else 0
        )
        # Indexing each reading would need one posting per reading attribute
        # (plus identity); indexing tuple sets needs one per set attribute.
        per_tuple_entries = sum(len(reading.values) + 3 for reading in readings)
        per_set_entries = attrs_per_set * len(tuple_sets)

        store = PassStore()
        started = time.perf_counter()
        for tuple_set in tuple_sets:
            store.ingest(tuple_set)
        elapsed_ms = (time.perf_counter() - started) * 1000.0

        ratio = per_tuple_entries / per_set_entries if per_set_entries else float("inf")
        result.add_row(
            window_seconds,
            len(readings),
            len(tuple_sets),
            per_tuple_entries,
            per_set_entries,
            round(ratio, 1),
            round(elapsed_ms, 2),
        )
    result.notes.append(
        "The per-tuple/per-set entry ratio grows with the window width; even at "
        "one-minute windows the per-set index is an order of magnitude smaller."
    )
    return result


# ----------------------------------------------------------------------
# E2 -- naming: conventional filenames vs structured provenance
# ----------------------------------------------------------------------
def run_e2(hours: float = 3.0) -> ExperimentResult:
    """Section II-A: flat filenames lose attributes and relationships."""
    result = ExperimentResult(
        experiment_id="E2",
        title="Naming schemes: conventional filenames vs provenance names",
        claim=(
            "Conventional self-describing filenames cannot express every attribute "
            "or any relationship between data sets; structured provenance can."
        ),
        headers=["query", "scheme", "answerable", "precision", "recall"],
    )
    workload = TrafficWorkload(seed=5, cities=("london", "boston"), stations_per_city=3)
    raw, derived = workload.all_sets(hours=hours)
    everything = raw + derived

    convention = FilenameConvention(["domain", "city", "window_start"])
    naming = ProvenanceNaming()
    filenames: Dict[str, ProvenanceRecord] = {}
    collisions = 0
    for tuple_set in everything:
        record = tuple_set.provenance
        naming.register(record)
        filename = convention.name(record)
        if filename in filenames:
            # Distinct data sets whose names collide: the convention cannot
            # tell them apart, so the later one silently shadows the earlier.
            collisions += 1
        filenames[filename] = record

    ground_store = PassStore()
    for tuple_set in everything:
        ground_store.ingest(tuple_set)

    def score(query_name, attribute, value, lineage_target: Optional[PName] = None):
        if lineage_target is None:
            truth = set(ground_store.query(AttributeEquals(attribute, value)))
        else:
            truth = set(ground_store.query(DerivedFrom(lineage_target)))
        # Structured provenance names.
        if lineage_target is None:
            structured = {PName(d) for d in naming.lookup(attribute, value)}
        else:
            related = set()
            frontier = [lineage_target.digest]
            while frontier:
                digest = frontier.pop()
                for other in naming.related(digest):
                    if other not in {p.digest for p in related}:
                        record = naming.resolve(other)
                        if any(a.digest == digest for a in record.ancestors):
                            related.add(PName(other))
                            frontier.append(other)
            structured = related
        p, r = precision_recall(structured, truth)
        result.add_row(query_name, "provenance", True, round(p, 3), round(r, 3))
        # Conventional filenames.
        if lineage_target is not None:
            result.add_row(query_name, "filename", False, 0.0, 0.0)
            return
        matches = convention.lookup(filenames, attribute, value)
        returned = {filenames[name].pname() for name in matches}
        answerable = convention.can_express(attribute)
        p, r = precision_recall(returned, truth)
        result.add_row(query_name, "filename", answerable, round(p, 3), round(r, 3))

    score("by city (encoded in filename)", "city", "london")
    score("by processing stage (not encoded)", "stage", "aggregated")
    score("by owner (not encoded)", "owner", "london-transport-authority")
    score("derived-from relationship", "", "", lineage_target=raw[0].pname)
    result.notes.append(
        "Filename lookups lose all recall on attributes outside the naming "
        "convention and cannot answer relationship queries at all."
    )
    result.notes.append(
        f"{collisions} of {len(everything)} data sets collided onto an existing "
        "filename (the convention cannot distinguish the derived products of the "
        "same city and window), so even encoded-attribute lookups lose recall."
    )
    return result


# ----------------------------------------------------------------------
# E3 -- transitive closure strategies
# ----------------------------------------------------------------------
def _build_chain_store(depth: int, fan_in: int = 4) -> PassStore:
    """A store holding `fan_in` raw sets rolled up repeatedly to `depth` levels."""
    workload = VolcanoWorkload(seed=3, stations=fan_in)
    raw = workload.tuple_sets(hours=1.0)[: fan_in]
    store = PassStore(closure="naive")
    for tuple_set in raw:
        store.ingest(tuple_set)
    current = raw
    for level in range(depth):
        rollup = RollupOperator(f"rollup-l{level}", version="1.0")
        merged = rollup.apply_many(current)
        store.ingest(merged)
        current = [merged]
    return store


def run_e3(depths: Sequence[int] = (4, 16, 64), fan_in: int = 4) -> ExperimentResult:
    """Section II-B: recursive queries need better support than per-query scans."""
    result = ExperimentResult(
        experiment_id="E3",
        title="Transitive closure strategies vs derivation depth",
        claim=(
            "Simple relational name-to-value schemes are not sufficient for "
            "recursive provenance queries; dedicated closure support is needed."
        ),
        headers=["depth", "strategy", "queries", "node_visits", "elapsed_ms"],
    )
    for depth in depths:
        base_store = _build_chain_store(depth, fan_in)
        pnames = base_store.pnames()
        for strategy_name in ("naive", "memoized", "labelled", "interval"):
            store = PassStore(closure=strategy_name)
            for pname in sorted(pnames, key=lambda p: p.digest):
                record = base_store.get_record(pname)
                store.ingest_record(record)
            store.closure.reset_counters()
            started = time.perf_counter()
            queries = 0
            for pname in pnames:
                store.ancestors(pname)
                queries += 1
            elapsed_ms = (time.perf_counter() - started) * 1000.0
            result.add_row(
                depth,
                strategy_name,
                queries,
                store.closure.operations,
                round(elapsed_ms, 2),
            )
    result.notes.append(
        "Naive per-query BFS revisits the whole chain for every query; the "
        "labelled strategy answers from precomputed reachability sets."
    )
    return result


# ----------------------------------------------------------------------
# E4 -- the Section III query suites
# ----------------------------------------------------------------------
def run_e4() -> ExperimentResult:
    """Sections III-A/B/C: versioning, science and sensor queries on one PASS."""
    result = ExperimentResult(
        experiment_id="E4",
        title="Representative query suites on a local PASS",
        claim=(
            "Document versioning, scientific derivation and EMT sensor queries "
            "are all expressible over provenance and answerable by one store."
        ),
        headers=["suite", "query", "results", "needs_lineage", "elapsed_ms"],
    )

    # Versioning suite (Section III-A).
    repo = VersionedRepository(name="flight-software")
    t0 = Timestamp(0.0)
    repo.commit("main.c", ["int main() {", "  return 0;", "}"], "alice", t0, tags=("Release 1.0",))
    repo.commit("main.c", ["int main() {", "  init();", "  return 0;", "}"], "bob", t0 + 3600)
    repo.commit(
        "main.c",
        ["int main() {", "  init();", "  return run();", "}"],
        "alice",
        t0 + 7200,
        tags=("Release 1.1",),
    )
    repo.commit("util.c", ["void init() {}", "#define ERR_42 42"], "carol", t0 + 4000)
    repo.commit("util.c", ["void init() {}"], "dave", t0 + 9000)
    versioning_queries = {
        "file as of yesterday": lambda: repo.as_of("main.c", t0 + 4000),
        "changes since last week": lambda: repo.changes_since("main.c", t0 + 1800),
        "when was each line inserted": lambda: repo.blame("main.c"),
        "who removed the error code": lambda: repo.who_removed("util.c", "#define ERR_42 42"),
        "files tagged Release 1.1": lambda: repo.tagged("Release 1.1"),
        "full lineage of head": lambda: repo.revision_lineage("main.c"),
    }
    for name, thunk in versioning_queries.items():
        started = time.perf_counter()
        answer = thunk()
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        count = len(answer) if isinstance(answer, (list, set, tuple)) else 1
        result.add_row("versioning", name, count, name == "full lineage of head", round(elapsed_ms, 3))

    # Science suite (Section III-B) using the volcano workload's derivations.
    volcano = VolcanoWorkload(seed=7, stations=8)
    raw, derived = volcano.all_sets(hours=6.0)
    science_store = PassStore()
    for tuple_set in raw + derived:
        science_store.ingest(tuple_set)
    event = derived[0].pname if derived else raw[0].pname
    science_queries = {
        "raw data this result derives from": (lambda: science_store.raw_sources(event), True),
        "everything needed to reproduce it": (lambda: science_store.ancestors(event), True),
        "all downstream (tainted) data": (lambda: science_store.descendants(raw[0].pname), True),
        "experiments from this instrument": (
            lambda: science_store.query(AttributeEquals("volcano", "reventador")),
            False,
        ),
    }
    for name, (thunk, needs_lineage) in science_queries.items():
        started = time.perf_counter()
        answer = thunk()
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        result.add_row("science", name, len(answer), needs_lineage, round(elapsed_ms, 3))

    # Sensor / EMT suite (Section III-C).
    medical = MedicalWorkload(seed=9, patients=5)
    raw, derived = medical.all_sets(hours=0.5)
    medical_store = PassStore()
    for tuple_set in raw + derived:
        medical_store.ingest(tuple_set)
    for name, query in medical.query_suite().items():
        started = time.perf_counter()
        answer = medical_store.query(query)
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        result.add_row("sensor/EMT", name, len(answer), query.requires_lineage, round(elapsed_ms, 3))

    result.notes.append(
        "Every query class from the three motivating domains runs against the "
        "same local PASS interface; only the lineage queries need closure support."
    )
    return result


# ----------------------------------------------------------------------
# E13 -- the four PASS properties under a removal storm
# ----------------------------------------------------------------------
def run_e13(hours: float = 2.0) -> ExperimentResult:
    """Section V: the four properties that distinguish a PASS."""
    result = ExperimentResult(
        experiment_id="E13",
        title="PASS properties under data removal",
        claim=(
            "Provenance is first class, queryable, unique per data set, and "
            "survives removal of ancestor objects."
        ),
        headers=["property", "checked", "violations"],
    )
    workload = TrafficWorkload(seed=13, stations_per_city=4)
    raw, derived = workload.all_sets(hours=hours)
    store = PassStore()
    for tuple_set in raw + derived:
        store.ingest(tuple_set)

    # P1/P2: provenance stored and queryable for every ingested set.
    queryable = 0
    for pname in store.pnames():
        record = store.get_record(pname)
        network = record.get("network")
        if network is None:
            # Nothing to query by; the record itself being retrievable is enough.
            queryable += 1
            continue
        hits = store.query(AttributeEquals("network", network))
        if pname in set(hits):
            queryable += 1
    result.add_row("P1/P2 first-class & queryable", len(store.pnames()), len(store.pnames()) - queryable)

    # P3: re-ingesting different data under identical provenance is refused.
    from repro.errors import DuplicateProvenanceError

    clash_attempts, clashes_refused = 0, 0
    for tuple_set in raw[:10]:
        if tuple_set.is_empty():
            continue
        clash_attempts += 1
        readings = tuple_set.readings[:-1]  # different data ...
        impostor = TupleSet(readings, tuple_set.provenance)  # ... same provenance
        try:
            store.ingest(impostor)
        except DuplicateProvenanceError:
            clashes_refused += 1
    result.add_row("P3 no identical provenance for different data", clash_attempts, clash_attempts - clashes_refused)

    # P4: remove every raw ancestor; derived data's lineage must stay intact.
    removed = 0
    for tuple_set in raw:
        store.remove_data(tuple_set.pname)
        removed += 1
    surviving = 0
    for tuple_set in derived:
        ancestors = store.ancestors(tuple_set.pname)
        if ancestors:
            surviving += 1
    violations = store.verify_invariants()
    result.add_row("P4 provenance survives ancestor removal", removed, len(violations))
    result.notes.append(
        f"After removing {removed} raw data sets, {surviving}/{len(derived)} derived "
        "sets still report complete ancestry."
    )
    return result


# ----------------------------------------------------------------------
# E14 -- provenance abstraction
# ----------------------------------------------------------------------
def run_e14(toolchain_depth: int = 12) -> ExperimentResult:
    """Section V: report 'gcc 3.3.3', not gcc's own change history."""
    result = ExperimentResult(
        experiment_id="E14",
        title="Provenance abstraction of tool lineage",
        claim=(
            "Deep tool provenance should be reported as an abstraction "
            "('gcc 3.3.3') rather than expanded in full."
        ),
        headers=["configuration", "full_lineage", "reported_entries", "hidden", "compression"],
    )
    store = PassStore()

    # The compiler's own deep change history.
    previous = None
    for revision in range(toolchain_depth):
        attributes = {
            "kind": "toolchain",
            "tool": "gcc",
            "tool_version": f"3.3.{revision}",
            "domain": "software",
        }
        record = (
            ProvenanceRecord(attributes)
            if previous is None
            else previous.derive(attributes)
        )
        store.ingest_record(record)
        previous = record
    compiler_record = previous

    # The analysis binary compiled by the toolchain, and the result it produced.
    binary = compiler_record.derive(
        {"kind": "binary", "name": "analyse-sightings", "domain": "software"},
        agent=Agent("compiler", "gcc", "3.3.3"),
    )
    store.ingest_record(binary)
    analysis = binary.derive(
        {"kind": "analysis-result", "domain": "traffic", "study": "zone-effects"},
        agent=Agent("program", "analyse-sightings", "1.0"),
    )
    store.ingest_record(analysis)
    focus = analysis.pname()

    plain = store.report_lineage(focus)
    result.add_row(
        "no abstraction",
        plain.full_size(),
        plain.reported_size(),
        plain.hidden_count,
        round(plain.compression_ratio(), 2),
    )

    store.add_abstraction_rule(AgentAbstractionRule(agent_kind="compiler"))
    abstracted = store.report_lineage(focus)
    result.add_row(
        "compiler agents abstracted",
        abstracted.full_size(),
        abstracted.reported_size(),
        abstracted.hidden_count,
        round(abstracted.compression_ratio(), 2),
    )

    store.add_abstraction_rule(DepthAbstractionRule(max_depth=1))
    shallow = store.report_lineage(focus)
    result.add_row(
        "compiler rule + depth 1",
        shallow.full_size(),
        shallow.reported_size(),
        shallow.hidden_count,
        round(shallow.compression_ratio(), 2),
    )
    result.notes.append(
        "The abstracted reports keep the analysis lineage visible while the "
        "compiler's own change history collapses to a single labelled entry."
    )
    return result
