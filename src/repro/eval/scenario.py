"""Standard evaluation scenario shared by the experiments.

Every architecture comparison needs the same scaffolding: a wide-area
topology with storage sites in the cities the workloads use plus a
central warehouse, a way to build every architecture model over that
topology, and helpers to publish a workload into a model and to
establish a ground-truth oracle for result-quality scoring.  Keeping it
in one place means each experiment (and each benchmark file) stays short
and the models are always compared under identical conditions.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.api import connect
from repro.api.client import PassClient, wrap
from repro.core.attributes import GeoPoint
from repro.core.pass_store import PassStore
from repro.core.provenance import PName
from repro.core.query import Query
from repro.core.tupleset import TupleSet
from repro.distributed import (
    ArchitectureModel,
    CentralizedWarehouse,
    DistributedDatabase,
    DistributedHashTable,
    FederatedDatabase,
    HierarchicalNamespace,
    LocaleAwarePass,
    SoftStateIndex,
)
from repro.net import NetworkSimulator, Site, Topology
from repro.sensors.workloads import CITY_CENTRES

__all__ = [
    "standard_topology",
    "build_all_models",
    "build_all_clients",
    "origin_site_for",
    "publish_all",
    "ground_truth_store",
    "MODEL_NAMES",
]

#: Names of the sites the standard topology creates for each city.
def _site_name(city: str) -> str:
    return f"{city}-site"


#: The model names the harness builds, in report order.
MODEL_NAMES = [
    "centralized",
    "distributed-db",
    "federated",
    "soft-state",
    "hierarchical",
    "dht",
    "locale-aware-pass",
]


def standard_topology(
    cities: Sequence[str] = ("london", "boston", "seattle", "tokyo"),
    warehouse_location: GeoPoint = GeoPoint(41.0, -87.0),
) -> Topology:
    """A topology with one storage site per city plus a central warehouse.

    The warehouse sits in the middle of North America -- far from London
    and Tokyo -- which is exactly the geometry that makes "ship all the
    metadata to one place" expensive for a worldwide sensor federation.
    """
    topology = Topology()
    for city in cities:
        if city not in CITY_CENTRES:
            raise ValueError(f"unknown city {city!r}; known: {sorted(CITY_CENTRES)}")
        topology.add_site(Site(_site_name(city), CITY_CENTRES[city], kind="storage"))
    topology.add_site(Site("warehouse", warehouse_location, kind="warehouse"))
    return topology


def build_all_models(
    topology: Topology,
    refresh_interval_seconds: float = 300.0,
    significance_order: Sequence[str] = ("city", "domain", "window_start"),
) -> Dict[str, ArchitectureModel]:
    """Instantiate every Section IV architecture model over ``topology``."""
    storage_sites = [site.name for site in topology.sites(kind="storage")]
    # Soft-state zones: split the storage sites into two zones, indexes at
    # the first site of each half (mirrors RLS deployments per continent).
    half = max(1, len(storage_sites) // 2)
    zones = {
        "zone-a": (storage_sites[0], storage_sites[:half]),
        "zone-b": (storage_sites[half % len(storage_sites)], storage_sites[half:] or storage_sites[:1]),
    }
    models: Dict[str, ArchitectureModel] = {
        "centralized": CentralizedWarehouse(topology, warehouse_site="warehouse"),
        "distributed-db": DistributedDatabase(topology),
        "federated": FederatedDatabase(topology),
        "soft-state": SoftStateIndex(
            topology, zones=zones, refresh_interval_seconds=refresh_interval_seconds
        ),
        "hierarchical": HierarchicalNamespace(topology, significance_order=significance_order),
        "dht": DistributedHashTable(topology),
        "locale-aware-pass": LocaleAwarePass(topology),
    }
    return models


def build_all_clients(
    topology: Topology,
    refresh_interval_seconds: float = 300.0,
    significance_order: Sequence[str] = ("city", "domain", "window_start"),
) -> Dict[str, PassClient]:
    """Every architecture model behind the unified :class:`PassClient` façade.

    Same construction as :func:`build_all_models`, wrapped so consumers
    can drive all targets (and the local stores from ``connect()``)
    through one protocol.
    """
    models = build_all_models(
        topology,
        refresh_interval_seconds=refresh_interval_seconds,
        significance_order=significance_order,
    )
    return {name: wrap(model) for name, model in models.items()}


def origin_site_for(tuple_set: TupleSet, topology: Topology) -> str:
    """The storage site where a tuple set is produced (nearest to its location)."""
    location = tuple_set.provenance.get("location")
    if isinstance(location, GeoPoint):
        return topology.nearest_site(location, kind="storage").name
    storage = topology.sites(kind="storage")
    return storage[0].name


def publish_all(
    model: "ArchitectureModel | PassClient",
    tuple_sets: Sequence[TupleSet],
    topology: Topology,
    origin_fn: Optional[Callable[[TupleSet], str]] = None,
) -> List[Tuple[PName, str, float, int, int]]:
    """Publish every tuple set into ``model``; return per-publish cost samples.

    ``model`` may be a bare architecture model or an already-wrapped
    client; either way publication runs through the PassClient façade.
    Each returned tuple is ``(pname, origin_site, latency_ms, messages,
    bytes)`` so experiments can aggregate however they like.
    """
    client = wrap(model)
    samples = []
    for tuple_set in tuple_sets:
        origin = origin_fn(tuple_set) if origin_fn else origin_site_for(tuple_set, topology)
        result = client.publish(tuple_set, origin=origin)
        cost = result.cost
        samples.append((tuple_set.pname, origin, cost.latency_ms, cost.messages, cost.bytes))
    return samples


def ground_truth_store(tuple_sets: Sequence[TupleSet]) -> PassStore:
    """A single local PASS holding everything: the oracle for precision/recall."""
    client = connect("memory://")
    client.publish_many(tuple_sets)
    return client.store


def ground_truth_answer(store: PassStore, query: Query) -> List[PName]:
    """The oracle's answer to a query (convenience wrapper)."""
    return store.query(query)
