"""Inverted attribute index over provenance records.

"Instead of encoding the name as a string, we represent it fully as a
collection of name-value pairs" (Section II-A) -- and then those pairs
must be indexed so that "users will search for data sets based on
subsets of the attributes and values found in provenance metadata"
(Section II-B).

:class:`AttributeIndex` is a straightforward inverted index:

    attribute name -> canonical(value) -> set of PName digests

plus a per-attribute sorted view to answer range queries on
order-compatible values.  It is the workhorse index of the local PASS
store and of the centralized / distributed architecture models.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.attributes import (
    AttributeValue,
    canonical_encode,
    compare_values,
)
from repro.core.provenance import PName, ProvenanceRecord
from repro.errors import ConfigurationError

__all__ = ["AttributeIndex"]


class AttributeIndex:
    """Inverted index from attribute values to PNames.

    Parameters
    ----------
    indexed_attributes:
        When given, only these attribute names are indexed (the rest can
        still be answered by a scan at the store level).  When ``None``
        every attribute of every record is indexed.
    """

    def __init__(self, indexed_attributes: Optional[Iterable[str]] = None) -> None:
        self._only = set(indexed_attributes) if indexed_attributes is not None else None
        # attribute -> canonical value -> set of digests
        self._postings: Dict[str, Dict[str, Set[str]]] = {}
        # attribute -> list of (value, canonical) kept for range scans;
        # rebuilt lazily when dirty.
        self._values: Dict[str, List[Tuple[AttributeValue, str]]] = {}
        self._dirty: Set[str] = set()
        self._entries = 0

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def add(self, pname: PName, record: ProvenanceRecord) -> None:
        """Index every (selected) attribute of ``record`` under ``pname``."""
        for name, value in record.attributes.items():
            if self._only is not None and name not in self._only:
                continue
            self._add_one(name, value, pname.digest)

    def add_value(self, pname: PName, name: str, value: AttributeValue) -> None:
        """Index a single name/value pair (used for annotations)."""
        if self._only is not None and name not in self._only:
            return
        self._add_one(name, value, pname.digest)

    def remove(self, pname: PName, record: ProvenanceRecord) -> None:
        """Remove a record's postings (used only by soft-state expiry)."""
        for name, value in record.attributes.items():
            postings = self._postings.get(name)
            if not postings:
                continue
            encoded = canonical_encode(value)
            bucket = postings.get(encoded)
            if bucket and pname.digest in bucket:
                bucket.discard(pname.digest)
                self._entries -= 1
                if not bucket:
                    del postings[encoded]
                    self._dirty.add(name)

    def _add_one(self, name: str, value: AttributeValue, digest: str) -> None:
        encoded = canonical_encode(value)
        postings = self._postings.setdefault(name, {})
        bucket = postings.setdefault(encoded, set())
        if not bucket:
            # A value never seen for this attribute: the sorted view is stale.
            self._dirty.add(name)
        if digest not in bucket:
            bucket.add(digest)
            self._entries += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def indexed_attributes(self) -> List[str]:
        """Attribute names that currently have postings."""
        return sorted(self._postings)

    def entry_count(self) -> int:
        """Total number of (attribute, value, pname) postings."""
        return self._entries

    def covers(self, attribute: str) -> bool:
        """True when lookups on ``attribute`` can use the index."""
        if self._only is not None and attribute not in self._only:
            return False
        return True

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def lookup(self, attribute: str, value: AttributeValue) -> Set[PName]:
        """Exact-match lookup; returns the (possibly empty) set of PNames."""
        postings = self._postings.get(attribute, {})
        digests = postings.get(canonical_encode(value), set())
        return {PName(d) for d in digests}

    def lookup_any(self, attribute: str, values: Iterable[AttributeValue]) -> Set[PName]:
        """Union of exact-match lookups over several values."""
        result: Set[PName] = set()
        for value in values:
            result |= self.lookup(attribute, value)
        return result

    def lookup_range(
        self,
        attribute: str,
        low: Optional[AttributeValue] = None,
        high: Optional[AttributeValue] = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Set[PName]:
        """Range lookup over order-compatible values of one attribute.

        Values of a kind incompatible with the bounds are skipped (they
        cannot fall inside the range).
        """
        if low is None and high is None:
            raise ConfigurationError("range lookup needs at least one bound")
        result: Set[str] = set()
        for value, encoded in self._sorted_values(attribute):
            if not self._in_range(value, low, high, include_low, include_high):
                continue
            result |= self._postings.get(attribute, {}).get(encoded, set())
        return {PName(d) for d in result}

    def distinct_values(self, attribute: str) -> List[AttributeValue]:
        """Every distinct value indexed under ``attribute`` (sorted when possible)."""
        return [value for value, _ in self._sorted_values(attribute)]

    def cardinality(self, attribute: str) -> int:
        """Number of distinct values indexed for ``attribute``."""
        return len(self._postings.get(attribute, {}))

    def selectivity(self, attribute: str, value: AttributeValue) -> float:
        """Fraction of postings for ``attribute`` matching ``value`` (0 when unseen)."""
        postings = self._postings.get(attribute, {})
        total = sum(len(bucket) for bucket in postings.values())
        if total == 0:
            return 0.0
        return len(postings.get(canonical_encode(value), set())) / total

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _sorted_values(self, attribute: str) -> List[Tuple[AttributeValue, str]]:
        postings = self._postings.get(attribute)
        if postings is None:
            return []
        if attribute in self._dirty or attribute not in self._values:
            decoded = [(self._decode_for_sort(encoded), encoded) for encoded in postings]
            decoded.sort(key=lambda item: (item[0][0], item[0][1]))
            self._values[attribute] = [(key[2], encoded) for key, encoded in decoded]
            self._dirty.discard(attribute)
        return self._values[attribute]

    @staticmethod
    def _decode_for_sort(encoded: str):
        """Build a sort key from a canonical encoding, keeping the original value."""
        from repro.core.attributes import GeoPoint, Timestamp

        tag, _, body = encoded.partition(":")
        if tag == "i":
            value: AttributeValue = int(body)
            return ("num", float(value), value)
        if tag == "f":
            value = float(body)
            return ("num", value, value)
        if tag == "b":
            value = bool(int(body))
            return ("num", float(value), value)
        if tag == "t":
            value = Timestamp(float(body))
            return ("num", value.seconds, value)
        if tag == "s":
            return ("str", body, body)
        if tag == "g":
            lat_text, _, lon_text = body.partition(",")
            value = GeoPoint(float(lat_text), float(lon_text))
            return ("geo", (value.latitude, value.longitude), value)
        # Lists and anything else sort after scalars, by raw encoding.
        return ("zzz", encoded, encoded)

    @staticmethod
    def _in_range(value, low, high, include_low, include_high) -> bool:
        try:
            if low is not None:
                cmp = compare_values(value, low)
                if cmp < 0 or (cmp == 0 and not include_low):
                    return False
            if high is not None:
                cmp = compare_values(value, high)
                if cmp > 0 or (cmp == 0 and not include_high):
                    return False
        except ConfigurationError:
            return False
        return True
