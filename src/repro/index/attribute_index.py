"""Inverted attribute index over provenance records.

"Instead of encoding the name as a string, we represent it fully as a
collection of name-value pairs" (Section II-A) -- and then those pairs
must be indexed so that "users will search for data sets based on
subsets of the attributes and values found in provenance metadata"
(Section II-B).

:class:`AttributeIndex` is a straightforward inverted index:

    attribute name -> canonical(value) -> set of PName digests

plus a per-attribute sorted view to answer range queries on
order-compatible values.  It is the workhorse index of the local PASS
store and of the centralized / distributed architecture models.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.attributes import (
    AttributeValue,
    canonical_encode,
    compare_values,
)
from repro.core.provenance import PName, ProvenanceRecord
from repro.errors import ConfigurationError

__all__ = ["AttributeIndex"]


class AttributeIndex:
    """Inverted index from attribute values to PNames.

    Parameters
    ----------
    indexed_attributes:
        When given, only these attribute names are indexed (the rest can
        still be answered by a scan at the store level).  When ``None``
        every attribute of every record is indexed.
    """

    def __init__(self, indexed_attributes: Optional[Iterable[str]] = None) -> None:
        self._only = set(indexed_attributes) if indexed_attributes is not None else None
        # attribute -> canonical value -> set of digests
        self._postings: Dict[str, Dict[str, Set[str]]] = {}
        # attribute -> list of (value, canonical) kept for range scans;
        # rebuilt lazily when dirty.
        self._values: Dict[str, List[Tuple[AttributeValue, str]]] = {}
        # attribute -> parallel list of (kind, sort_key) tuples, bisected
        # by lookup_range so a range touches only the distinct values
        # inside it instead of every distinct value of the attribute.
        self._sort_keys: Dict[str, List[Tuple[str, object]]] = {}
        self._dirty: Set[str] = set()
        self._entries = 0
        # attribute -> number of postings, for planner cost estimates.
        self._attr_entries: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def add(self, pname: PName, record: ProvenanceRecord) -> None:
        """Index every (selected) attribute of ``record`` under ``pname``."""
        for name, value in record.attributes.items():
            if self._only is not None and name not in self._only:
                continue
            self._add_one(name, value, pname.digest)

    def add_value(self, pname: PName, name: str, value: AttributeValue) -> None:
        """Index a single name/value pair (used for annotations)."""
        if self._only is not None and name not in self._only:
            return
        self._add_one(name, value, pname.digest)

    def remove(self, pname: PName, record: ProvenanceRecord) -> None:
        """Remove a record's postings (used only by soft-state expiry)."""
        for name, value in record.attributes.items():
            postings = self._postings.get(name)
            if not postings:
                continue
            encoded = canonical_encode(value)
            bucket = postings.get(encoded)
            if bucket and pname.digest in bucket:
                bucket.discard(pname.digest)
                self._entries -= 1
                self._attr_entries[name] = self._attr_entries.get(name, 1) - 1
                if not bucket:
                    del postings[encoded]
                    self._dirty.add(name)

    def _add_one(self, name: str, value: AttributeValue, digest: str) -> None:
        encoded = canonical_encode(value)
        postings = self._postings.setdefault(name, {})
        bucket = postings.setdefault(encoded, set())
        if not bucket:
            # A value never seen for this attribute: the sorted view is stale.
            self._dirty.add(name)
        if digest not in bucket:
            bucket.add(digest)
            self._entries += 1
            self._attr_entries[name] = self._attr_entries.get(name, 0) + 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def indexed_attributes(self) -> List[str]:
        """Attribute names that currently have postings."""
        return sorted(self._postings)

    def entry_count(self) -> int:
        """Total number of (attribute, value, pname) postings."""
        return self._entries

    def covers(self, attribute: str) -> bool:
        """True when lookups on ``attribute`` can use the index."""
        if self._only is not None and attribute not in self._only:
            return False
        return True

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def lookup(self, attribute: str, value: AttributeValue) -> Set[PName]:
        """Exact-match lookup; returns the (possibly empty) set of PNames."""
        postings = self._postings.get(attribute, {})
        digests = postings.get(canonical_encode(value), set())
        return {PName(d) for d in digests}

    def lookup_any(self, attribute: str, values: Iterable[AttributeValue]) -> Set[PName]:
        """Union of exact-match lookups over several values."""
        result: Set[PName] = set()
        for value in values:
            result |= self.lookup(attribute, value)
        return result

    def lookup_range(
        self,
        attribute: str,
        low: Optional[AttributeValue] = None,
        high: Optional[AttributeValue] = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Set[PName]:
        """Range lookup over order-compatible values of one attribute.

        Values of a kind incompatible with the bounds are skipped (they
        cannot fall inside the range).  The sorted per-attribute view is
        bisected on the bounds, so the lookup touches only the distinct
        values actually inside the range (O(log d + matches)).
        """
        if low is None and high is None:
            raise ConfigurationError("range lookup needs at least one bound")
        result: Set[str] = set()
        postings = self._postings.get(attribute, {})
        for _, encoded in self._range_slice(attribute, low, high, include_low, include_high):
            result |= postings.get(encoded, set())
        return {PName(d) for d in result}

    def lookup_all(self, attribute: str) -> Set[PName]:
        """Every PName carrying ``attribute`` at all (the 'exists' lookup)."""
        result: Set[str] = set()
        for bucket in self._postings.get(attribute, {}).values():
            result |= bucket
        return {PName(d) for d in result}

    # ------------------------------------------------------------------
    # Cardinality estimates (planner cost model; never fetch records)
    # ------------------------------------------------------------------
    def count(self, attribute: str, value: AttributeValue) -> int:
        """Exact posting count for one value (free: one dict probe)."""
        return len(self._postings.get(attribute, {}).get(canonical_encode(value), ()))

    def count_any(self, attribute: str, values: Iterable[AttributeValue]) -> int:
        """Upper bound on a multi-probe's result size (buckets may overlap)."""
        return sum(self.count(attribute, value) for value in values)

    def attribute_entry_count(self, attribute: str) -> int:
        """Total postings under ``attribute`` (records carrying it, counted per value)."""
        return self._attr_entries.get(attribute, 0)

    def estimate_range(
        self,
        attribute: str,
        low: Optional[AttributeValue] = None,
        high: Optional[AttributeValue] = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> int:
        """Estimated postings inside a range: distinct-in-range x mean bucket size.

        Costs two bisections; it never walks buckets, so the planner can
        afford to estimate every candidate range before choosing one.
        """
        bounds = self._range_bounds(attribute, low, high, include_low, include_high)
        if bounds is None:
            # Unorderable bound kinds: assume the whole attribute qualifies.
            return self.attribute_entry_count(attribute)
        entries, lo_idx, hi_idx = bounds
        distinct_in_range = max(0, hi_idx - lo_idx)
        cardinality = len(entries)
        if cardinality == 0 or distinct_in_range == 0:
            return 0
        mean_bucket = self.attribute_entry_count(attribute) / cardinality
        return max(1, round(distinct_in_range * mean_bucket))

    def distinct_values(self, attribute: str) -> List[AttributeValue]:
        """Every distinct value indexed under ``attribute`` (sorted when possible)."""
        return [value for value, _ in self._sorted_values(attribute)]

    def cardinality(self, attribute: str) -> int:
        """Number of distinct values indexed for ``attribute``."""
        return len(self._postings.get(attribute, {}))

    def selectivity(self, attribute: str, value: AttributeValue) -> float:
        """Fraction of postings for ``attribute`` matching ``value`` (0 when unseen)."""
        postings = self._postings.get(attribute, {})
        total = sum(len(bucket) for bucket in postings.values())
        if total == 0:
            return 0.0
        return len(postings.get(canonical_encode(value), set())) / total

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _sorted_values(self, attribute: str) -> List[Tuple[AttributeValue, str]]:
        postings = self._postings.get(attribute)
        if postings is None:
            return []
        if attribute in self._dirty or attribute not in self._values:
            decoded = [(self._decode_for_sort(encoded), encoded) for encoded in postings]
            decoded.sort(key=lambda item: (item[0][0], item[0][1]))
            self._values[attribute] = [(key[2], encoded) for key, encoded in decoded]
            self._sort_keys[attribute] = [(key[0], key[1]) for key, _ in decoded]
            self._dirty.discard(attribute)
        return self._values[attribute]

    def _range_bounds(
        self, attribute, low, high, include_low, include_high
    ) -> Optional[Tuple[List[Tuple[AttributeValue, str]], int, int]]:
        """Bisect the sorted view down to ``(entries, lo_idx, hi_idx)``.

        Returns ``None`` when a bound's kind cannot be bisected (list
        values) -- callers then fall back to the linear filter.
        """
        entries = self._sorted_values(attribute)
        keys = self._sort_keys.get(attribute, [])
        low_key = self._bound_key(low) if low is not None else None
        high_key = self._bound_key(high) if high is not None else None
        if (low is not None and low_key is None) or (high is not None and high_key is None):
            return None
        kinds = {key[0] for key in (low_key, high_key) if key is not None}
        if len(kinds) > 1:
            # Bounds of different kinds: no value can satisfy both.
            return entries, 0, 0
        kind = kinds.pop()
        if low_key is None:
            lo_idx = bisect_left(keys, (kind,))
        elif include_low:
            lo_idx = bisect_left(keys, low_key)
        else:
            lo_idx = bisect_right(keys, low_key)
        if high_key is None:
            # A string strictly greater than the bare kind tag bounds the
            # whole segment of that kind from above.
            hi_idx = bisect_left(keys, (kind + "\uffff",))
        elif include_high:
            hi_idx = bisect_right(keys, high_key)
        else:
            hi_idx = bisect_left(keys, high_key)
        return entries, lo_idx, max(lo_idx, hi_idx)

    def _range_slice(
        self, attribute, low, high, include_low, include_high
    ) -> List[Tuple[AttributeValue, str]]:
        bounds = self._range_bounds(attribute, low, high, include_low, include_high)
        if bounds is None:
            return [
                (value, encoded)
                for value, encoded in self._sorted_values(attribute)
                if self._in_range(value, low, high, include_low, include_high)
            ]
        entries, lo_idx, hi_idx = bounds
        return entries[lo_idx:hi_idx]

    @staticmethod
    def _bound_key(value: AttributeValue) -> Optional[Tuple[str, object]]:
        """The (kind, sort_key) a bound occupies in the sorted view, or None.

        Delegates to the same ordering the comparison predicates use
        (:func:`repro.core.attributes.compare_values` via
        ``_ordering_key``), so a bisected range can never disagree with
        predicate evaluation.  List bounds sort under the ``zzz``
        catch-all segment, which has no total order against the
        ordering key -- return None so the caller falls back to the
        linear filter.
        """
        from repro.core.attributes import _ordering_key

        try:
            kind, key = _ordering_key(value)
        except ConfigurationError:
            return None
        if kind == "list":
            return None
        return (kind, key)

    @staticmethod
    def _decode_for_sort(encoded: str):
        """Build a sort key from a canonical encoding, keeping the original value."""
        from repro.core.attributes import GeoPoint, Timestamp

        tag, _, body = encoded.partition(":")
        if tag == "i":
            value: AttributeValue = int(body)
            return ("num", float(value), value)
        if tag == "f":
            value = float(body)
            return ("num", value, value)
        if tag == "b":
            value = bool(int(body))
            return ("num", float(value), value)
        if tag == "t":
            value = Timestamp(float(body))
            return ("num", value.seconds, value)
        if tag == "s":
            return ("str", body, body)
        if tag == "g":
            lat_text, _, lon_text = body.partition(",")
            value = GeoPoint(float(lat_text), float(lon_text))
            return ("geo", (value.latitude, value.longitude), value)
        # Lists and anything else sort after scalars, by raw encoding.
        return ("zzz", encoded, encoded)

    @staticmethod
    def _in_range(value, low, high, include_low, include_high) -> bool:
        try:
            if low is not None:
                cmp = compare_values(value, low)
                if cmp < 0 or (cmp == 0 and not include_low):
                    return False
            if high is not None:
                cmp = compare_values(value, high)
                if cmp > 0 or (cmp == 0 and not include_high):
                    return False
        except ConfigurationError:
            return False
        return True
