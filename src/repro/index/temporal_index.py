"""Temporal index over tuple-set time windows.

Tuple sets are "collections of readings grouped by some property,
typically time" (Section II), so nearly every query carries a time
constraint: "show me the heart rate from moment of arrival until now",
"aggregated over time to estimate the effects of changing Zone size".

:class:`TemporalIndex` maps time intervals (a tuple set's
``window_start``/``window_end``) to PNames and answers three questions:

* which tuple sets *overlap* a query interval,
* which are entirely *contained* in it,
* which cover a single instant.

The implementation keeps intervals in a list sorted by start time with
binary search on the start bound; for the workload sizes the benchmarks
use (10^4-10^5 windows) this is comfortably fast and, more importantly,
easy to verify.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import List, Optional, Set, Tuple

from repro.core.attributes import Timestamp
from repro.core.provenance import PName
from repro.errors import ConfigurationError

__all__ = ["TemporalIndex"]


class TemporalIndex:
    """Maps time intervals to PNames."""

    def __init__(self) -> None:
        # Sorted list of (start_seconds, end_seconds, digest).
        self._intervals: List[Tuple[float, float, str]] = []
        self._max_duration = 0.0

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def add(self, pname: PName, start: Timestamp, end: Timestamp) -> None:
        """Index ``pname`` under the closed interval [start, end]."""
        if end.seconds < start.seconds:
            raise ConfigurationError("interval end precedes its start")
        entry = (start.seconds, end.seconds, pname.digest)
        insort(self._intervals, entry)
        self._max_duration = max(self._max_duration, end.seconds - start.seconds)

    def __len__(self) -> int:
        return len(self._intervals)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def overlapping(self, start: Timestamp, end: Timestamp) -> Set[PName]:
        """PNames whose interval overlaps [start, end] (closed intervals)."""
        if end.seconds < start.seconds:
            raise ConfigurationError("query end precedes its start")
        result: Set[PName] = set()
        # Any overlapping interval must start at or before the query end,
        # and (because intervals are at most _max_duration long) at or
        # after query start - max_duration.
        low = start.seconds - self._max_duration
        begin = self._lower_bound(low)
        for idx in range(begin, len(self._intervals)):
            iv_start, iv_end, digest = self._intervals[idx]
            if iv_start > end.seconds:
                break
            if iv_end >= start.seconds:
                result.add(PName(digest))
        return result

    def contained(self, start: Timestamp, end: Timestamp) -> Set[PName]:
        """PNames whose interval lies entirely inside [start, end]."""
        if end.seconds < start.seconds:
            raise ConfigurationError("query end precedes its start")
        result: Set[PName] = set()
        begin = self._lower_bound(start.seconds)
        for idx in range(begin, len(self._intervals)):
            iv_start, iv_end, digest = self._intervals[idx]
            if iv_start > end.seconds:
                break
            if iv_start >= start.seconds and iv_end <= end.seconds:
                result.add(PName(digest))
        return result

    def at(self, instant: Timestamp) -> Set[PName]:
        """PNames whose interval covers a single instant."""
        return self.overlapping(instant, instant)

    def estimate_overlapping(self, start: Timestamp, end: Timestamp) -> int:
        """Upper bound on :meth:`overlapping`'s result size, in O(log n).

        Counts the intervals the scan would visit (start within
        ``[query start - max_duration, query end]``); some of those miss
        the window, so this over-estimates, which is safe for a planner
        deciding whether the index beats a full scan.
        """
        if end.seconds < start.seconds:
            raise ConfigurationError("query end precedes its start")
        begin = self._lower_bound(start.seconds - self._max_duration)
        # First interval starting strictly after the query end.
        finish = bisect_left(self._intervals, (end.seconds, float("inf"), "\uffff"))
        return max(0, finish - begin)

    def span(self) -> Optional[Tuple[Timestamp, Timestamp]]:
        """(earliest start, latest end) over everything indexed, or None."""
        if not self._intervals:
            return None
        earliest = self._intervals[0][0]
        latest = max(end for _, end, _ in self._intervals)
        return (Timestamp(earliest), Timestamp(latest))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _lower_bound(self, start_seconds: float) -> int:
        """Index of the first interval whose start is >= start_seconds."""
        # The sentinel sorts before every real entry sharing the same start.
        return bisect_left(self._intervals, (start_seconds, -float("inf"), ""))
