"""Grid-based spatial index over tuple-set locations.

"Sensor data is locale specific" (Section I) and some query classes are
inherently spatial: "a commuter investigating alternate routes will
likely search by sensor location", or combining data "geographically
with data from other cities".

:class:`SpatialIndex` buckets locations into fixed-size latitude /
longitude grid cells and answers radius and bounding-box queries by
scanning the candidate cells and filtering by exact distance.  A grid is
entirely sufficient here: tuple sets have one representative location
(the network centroid), counts are modest, and the benchmarks care about
*which* architecture touches the index, not about R-tree constants.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.attributes import GeoPoint
from repro.core.provenance import PName
from repro.errors import ConfigurationError

__all__ = ["SpatialIndex"]


class SpatialIndex:
    """Maps geographic points to PNames using a fixed-resolution grid.

    Parameters
    ----------
    cell_degrees:
        Width/height of a grid cell in degrees.  The default (0.5) is a
        few tens of kilometres at mid latitudes -- city scale, matching
        the paper's "Boston traffic data belongs in Boston" granularity.
    """

    def __init__(self, cell_degrees: float = 0.5) -> None:
        if cell_degrees <= 0:
            raise ConfigurationError("cell_degrees must be positive")
        self._cell = float(cell_degrees)
        self._cells: Dict[Tuple[int, int], Set[str]] = {}
        self._points: Dict[str, GeoPoint] = {}

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def add(self, pname: PName, location: GeoPoint) -> None:
        """Index ``pname`` at ``location`` (re-adding moves it)."""
        digest = pname.digest
        previous = self._points.get(digest)
        if previous is not None:
            self._cells.get(self._cell_of(previous), set()).discard(digest)
        self._points[digest] = location
        self._cells.setdefault(self._cell_of(location), set()).add(digest)

    def __len__(self) -> int:
        return len(self._points)

    def location_of(self, pname: PName) -> Optional[GeoPoint]:
        """The indexed location of ``pname``, or None when not indexed."""
        return self._points.get(pname.digest)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def within_radius(self, centre: GeoPoint, radius_km: float) -> Set[PName]:
        """PNames indexed within ``radius_km`` of ``centre``."""
        if radius_km < 0:
            raise ConfigurationError("radius_km must be non-negative")
        result: Set[PName] = set()
        for digest in self._candidates(centre, radius_km):
            if self._points[digest].distance_km(centre) <= radius_km:
                result.add(PName(digest))
        return result

    def in_box(
        self,
        south_west: GeoPoint,
        north_east: GeoPoint,
    ) -> Set[PName]:
        """PNames inside the latitude/longitude box (inclusive)."""
        if north_east.latitude < south_west.latitude:
            raise ConfigurationError("box north edge is south of its south edge")
        result: Set[PName] = set()
        for digest, point in self._points.items():
            if (
                south_west.latitude <= point.latitude <= north_east.latitude
                and self._lon_between(point.longitude, south_west.longitude, north_east.longitude)
            ):
                result.add(PName(digest))
        return result

    def estimate_within(self, centre: GeoPoint, radius_km: float) -> int:
        """Upper bound on :meth:`within_radius`'s result size.

        Sums the populations of the candidate grid cells without
        computing a single great-circle distance, so the planner can
        afford it while choosing a path.
        """
        if radius_km < 0:
            raise ConfigurationError("radius_km must be non-negative")
        return sum(
            len(self._cells.get(cell, ())) for cell in self._candidate_cells(centre, radius_km)
        )

    def nearest(self, centre: GeoPoint, count: int = 1) -> List[PName]:
        """The ``count`` indexed PNames closest to ``centre``."""
        if count <= 0:
            raise ConfigurationError("count must be positive")
        ranked = sorted(
            self._points.items(), key=lambda item: item[1].distance_km(centre)
        )
        return [PName(digest) for digest, _ in ranked[:count]]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _cell_of(self, point: GeoPoint) -> Tuple[int, int]:
        return (
            int(math.floor(point.latitude / self._cell)),
            int(math.floor(point.longitude / self._cell)),
        )

    def _candidate_cells(self, centre: GeoPoint, radius_km: float) -> Iterable[Tuple[int, int]]:
        # Convert the radius into a conservative number of cells.  One
        # degree of latitude is ~111 km; a degree of longitude shrinks
        # with latitude, so the longitude span must be widened by
        # 1/cos(latitude) to stay conservative.
        lat_degrees = radius_km / 111.0 if radius_km > 0 else 0.0
        cos_lat = max(0.05, math.cos(math.radians(centre.latitude)))
        lon_degrees = lat_degrees / cos_lat
        lat_span = max(1, int(math.ceil(lat_degrees / self._cell)) + 1)
        lon_span = max(1, int(math.ceil(lon_degrees / self._cell)) + 1)
        centre_cell = self._cell_of(centre)
        for d_lat in range(-lat_span, lat_span + 1):
            for d_lon in range(-lon_span, lon_span + 1):
                yield (centre_cell[0] + d_lat, centre_cell[1] + d_lon)

    def _candidates(self, centre: GeoPoint, radius_km: float) -> Iterable[str]:
        for cell in self._candidate_cells(centre, radius_km):
            for digest in self._cells.get(cell, ()):  # pragma: no branch
                yield digest

    @staticmethod
    def _lon_between(lon: float, west: float, east: float) -> bool:
        if west <= east:
            return west <= lon <= east
        # Box crosses the antimeridian.
        return lon >= west or lon <= east
