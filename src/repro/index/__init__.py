"""Indexes over provenance metadata: attribute, temporal and spatial."""

from repro.index.attribute_index import AttributeIndex
from repro.index.spatial_index import SpatialIndex
from repro.index.temporal_index import TemporalIndex

__all__ = ["AttributeIndex", "TemporalIndex", "SpatialIndex"]
