"""Benchmark: the sharded storage engine vs. the single-file backend.

The acceptance claim of the sharded storage engine: on a 10^6-record
store of 10^3-deep derivation chains, batched ingest (group commit, one
transaction per shard per batch) and full scans through
``sqlite:///pass.db?shards=8`` are >= 3x faster than the unsharded
single-file backend on a multi-core box -- while answering every query
identically.  SQLite releases the GIL inside its C calls, so per-shard
commits and scans genuinely overlap.

Run with:  python benchmarks/bench_storage.py          (10^6 records, shard sweep)
      or:  python benchmarks/bench_storage.py --quick  (CI parity gate, small store)
      or:  pytest benchmarks/bench_storage.py -s

The quick mode gates CI on *parity*: the same workload written through
shards=1 and shards=4 must answer ordered queries byte-identically,
unordered and lineage queries with identical sets, and scan the same
records -- timing stays advisory because shared single-core runners make
speedup thresholds flaky.  The full mode asserts the 3x claim when the
host has the cores to back it (>= 4), and records honest numbers either
way in ``benchmarks/results/BENCH_storage.json``.
"""

from __future__ import annotations

import argparse
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro.api.dsl import Q
from repro.core.pass_store import PassStore
from repro.core.provenance import ProvenanceRecord
from repro.storage.factory import make_backend

CHAIN_DEPTH = 1_000
QUICK_CHAIN_DEPTH = 200
BATCH_SIZE = 5_000
FULL_SHARD_SWEEP = (1, 2, 4, 8)
REQUIRED_SPEEDUP = 3.0


def _emit_bench_json(area: str, payload: dict) -> None:
    """Persist headline numbers via the shared conftest helper (by path,
    so it works as a script and under pytest alike)."""
    import importlib.util

    name = "repro_bench_results"
    module = sys.modules.get(name)
    if module is None:
        spec = importlib.util.spec_from_file_location(
            name, Path(__file__).resolve().with_name("conftest.py")
        )
        module = importlib.util.module_from_spec(spec)
        sys.modules[name] = module
        spec.loader.exec_module(module)
    module.write_bench_json(area, payload)


def build_records(total_nodes: int, chain_depth: int):
    """``total_nodes`` records in chains of ``chain_depth`` derivation steps."""
    chains = max(1, total_nodes // chain_depth)
    records = []
    roots = []
    for chain in range(chains):
        previous = None
        for position in range(chain_depth):
            record = ProvenanceRecord(
                {
                    "domain": "storage-bench",
                    "chain": chain,
                    "position": position,
                    "city": "london" if chain % 2 else "boston",
                },
                ancestors=[previous] if previous is not None else [],
            )
            previous = record.pname()
            if position == 0:
                roots.append(previous)
            records.append(record)
    return records, roots


def timed_ingest(backend, records) -> float:
    """Batched writes through put_batch; returns seconds."""
    payload = b"x" * 64
    started = time.perf_counter()
    for offset in range(0, len(records), BATCH_SIZE):
        batch = records[offset : offset + BATCH_SIZE]
        backend.put_batch([(record, payload) for record in batch])
    backend.flush()
    return time.perf_counter() - started


def timed_scans(backend, repeat: int = 3):
    """Full scans through scan_all; returns (seconds_per_scan, row_count)."""
    rows = 0
    started = time.perf_counter()
    for _ in range(repeat):
        rows = len(backend.scan_all())
    return (time.perf_counter() - started) / repeat, rows


def bench_backend(base_dir: Path, shards: int, records) -> dict:
    path = base_dir / f"bench-shards{shards:02d}" / "pass.db"
    path.parent.mkdir(parents=True, exist_ok=True)
    backend = make_backend("sqlite", path=str(path), shards=shards)
    ingest_seconds = timed_ingest(backend, records)
    scan_seconds, rows = timed_scans(backend)
    assert rows == len(records), f"scan saw {rows} of {len(records)} records"
    snapshot = backend.storage_stats()
    backend.close()
    shutil.rmtree(path.parent, ignore_errors=True)
    return {
        "shards": shards,
        "ingest_seconds": round(ingest_seconds, 3),
        "records_per_second": round(len(records) / ingest_seconds, 1),
        "scan_seconds": round(scan_seconds, 3),
        "group_commits": snapshot["group_commits"],
    }


def parity_gate(base_dir: Path, records, roots) -> None:
    """shards=1 and shards=4 must be indistinguishable to every query."""
    answers = {}
    for shards in (1, 4):
        path = base_dir / f"parity-shards{shards:02d}" / "pass.db"
        path.parent.mkdir(parents=True, exist_ok=True)
        store = PassStore(
            backend=make_backend("sqlite", path=str(path), shards=shards),
            closure="interval",
        )
        for record in records:
            store.ingest_record(record)
        ordered = store.query(
            Q.find(Q.attr("city") == "london").order_by("position").build()
        )
        unordered = store.query(Q.attr("domain") == "storage-bench")
        lineage = store.query(Q.derived_from(roots[0]))
        everything = [pname.digest for pname, _ in store.backend.scan_all()]
        answers[shards] = {
            # Ordered answers must match element for element ...
            "ordered": [pname.digest for pname in ordered],
            # ... unordered/lineage answers as digest-sorted sets (scan
            # order is an implementation detail the executor may change).
            "unordered": sorted(pname.digest for pname in unordered),
            "lineage": sorted(pname.digest for pname in lineage),
            "scan": sorted(everything),
        }
        store.backend.close()
        shutil.rmtree(path.parent, ignore_errors=True)
    for key in ("ordered", "unordered", "lineage", "scan"):
        assert answers[1][key] == answers[4][key], (
            f"shards=1 and shards=4 disagree on the {key} answer"
        )
    assert len(answers[1]["lineage"]) == len(records) // len(roots) - 1
    print("parity: shards=1 == shards=4 on ordered, unordered, lineage and scan answers")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI parity gate: small store")
    args = parser.parse_args(argv)

    total_nodes = 4_000 if args.quick else 1_000_000
    chain_depth = QUICK_CHAIN_DEPTH if args.quick else CHAIN_DEPTH
    records, roots = build_records(total_nodes, chain_depth)
    cores = os.cpu_count() or 1
    print(
        f"store: {len(records)} records in {len(roots)} chains of depth {chain_depth}"
        f" ({'quick' if args.quick else 'full'} mode, {cores} core(s))"
    )

    base_dir = Path(tempfile.mkdtemp(prefix="repro-bench-storage-"))
    try:
        parity_gate(base_dir, records, roots)

        sweep = (1, 4) if args.quick else FULL_SHARD_SWEEP
        results = [bench_backend(base_dir, shards, records) for shards in sweep]
        for row in results:
            print(
                f"shards={row['shards']:>2}: ingest {row['ingest_seconds']:8.2f}s"
                f" ({row['records_per_second']:>10.0f} rec/s),"
                f" scan {row['scan_seconds']:6.3f}s"
            )

        baseline = results[0]
        best = results[-1]
        ingest_speedup = baseline["ingest_seconds"] / max(best["ingest_seconds"], 1e-9)
        scan_speedup = baseline["scan_seconds"] / max(best["scan_seconds"], 1e-9)
        print(
            f"speedup at shards={best['shards']}: ingest {ingest_speedup:.2f}x,"
            f" scan {scan_speedup:.2f}x (gate: >= {REQUIRED_SPEEDUP}x ingest,"
            f" full mode on >= 4 cores)"
        )
        timing_asserted = not args.quick and cores >= 4
        if timing_asserted:
            assert ingest_speedup >= REQUIRED_SPEEDUP, (
                f"expected >= {REQUIRED_SPEEDUP}x batched-ingest speedup at "
                f"shards={best['shards']}, got {ingest_speedup:.2f}x"
            )
        elif not args.quick:
            print(f"(speedup gate skipped: {cores} core(s); honest numbers recorded)")

        _emit_bench_json(
            "storage",
            {
                "records": len(records),
                "chain_depth": chain_depth,
                "cores": cores,
                "sweep": results,
                "ingest_speedup": round(ingest_speedup, 2),
                "scan_speedup": round(scan_speedup, 2),
                "gates": {
                    "required_speedup": REQUIRED_SPEEDUP,
                    "parity_asserted": True,
                    "timing_asserted": timing_asserted,
                },
            },
        )
    finally:
        shutil.rmtree(base_dir, ignore_errors=True)
    print("bench_storage: ok")
    return 0


def test_storage_bench_quick():
    """Tier-1 entry point: the deterministic quick parity gate."""
    assert main(["--quick"]) == 0


if __name__ == "__main__":
    sys.exit(main())
