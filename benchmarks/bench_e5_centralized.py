"""Centralized warehouse: update saturation and dangling index links (Section IV-A).

Regenerates experiment E5 (see DESIGN.md section 3 and EXPERIMENTS.md).
Run with:  pytest benchmarks/bench_e5_centralized.py --benchmark-only
"""

from repro.eval.experiments_distributed import run_e5


def test_e5(run_experiment_benchmark):
    result = run_experiment_benchmark(run_e5)
    assert result.rows
    rows = result.row_dicts()
    latencies = [row["value"] for row in rows if row["measure"] == "publish latency (ms)"]
    assert latencies[-1] > latencies[0]
