"""Observability smoke: one real ``repro serve`` process, end to end.

Starts the daemon as a subprocess (``--log-level info --slow-query-ms 0``
so every query is "slow"), drives a traced workload over ``pass://``,
then asserts the whole introspection surface actually worked:

* the client-side span tree exports as valid Chrome trace-event JSON and
  every span of the request shares one trace id,
* the ``metrics`` wire op answers with the tenant's op counters,
  latency percentiles and the slow-query ring,
* the daemon's stderr carries structured access-log lines (op, tenant,
  duration, status) and a slow-query WARNING with the Explain tree --
  and its stdout carries *only* the banner (library code never prints).

A second section gates the background sampler's scrape overhead: two
in-process daemons (sampler off vs. the default 1 s tick) serve the same
query loop, and the sampled daemon's median latency must stay within
budget of the bare one -- while actually having produced time-series,
an OpenMetrics exposition and a health report.

Run with:  python benchmarks/bench_obs.py
      or:  pytest benchmarks/bench_obs.py -s
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
STARTUP_TIMEOUT_S = 30
SHUTDOWN_TIMEOUT_S = 10


def _start_daemon():
    """Launch ``repro serve`` on an ephemeral port; return (proc, url)."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-u",
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--log-level",
            "info",
            "--slow-query-ms",
            "0",
        ],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    # A watchdog readline: if the banner never comes, kill and fail loud.
    timer = threading.Timer(STARTUP_TIMEOUT_S, proc.kill)
    timer.start()
    try:
        banner = proc.stdout.readline()
    finally:
        timer.cancel()
    match = re.search(r"(pass://[\d.]+:\d+)", banner)
    if match is None:
        proc.kill()
        _, stderr = proc.communicate(timeout=SHUTDOWN_TIMEOUT_S)
        raise RuntimeError(f"no daemon banner (got {banner!r}); stderr:\n{stderr}")
    return proc, match.group(1)


def _traced_workload(url: str) -> tuple:
    """Publish + query + introspect over pass://; returns (doc, metrics, total)."""
    from repro.api import Q, connect
    from repro.obs import trace
    from repro.sensors.workloads import TrafficWorkload

    raw, derived = TrafficWorkload(seed=0).all_sets(hours=0.2)
    trace.enable()
    try:
        with trace.span("smoke.workload"):
            with connect(url) as client:
                client.publish_many(raw + derived)
                answer = client.query(Q.attr("city") == "london", limit=10)
                metrics = client.daemon_metrics()
        document = trace.chrome_trace()
    finally:
        trace.disable()
        trace.clear()
    return document, metrics, answer.total


def _check(condition: bool, message: str, failures: list) -> None:
    if not condition:
        failures.append(message)
        print(f"  FAILURE: {message}")


def run_smoke() -> int:
    proc, url = _start_daemon()
    print(f"[obs] daemon up at {url}")
    try:
        document, metrics, total = _traced_workload(url)
    finally:
        proc.terminate()
        try:
            stdout, stderr = proc.communicate(timeout=SHUTDOWN_TIMEOUT_S)
        except subprocess.TimeoutExpired:
            proc.kill()
            stdout, stderr = proc.communicate()

    failures: list = []

    # -- trace export ----------------------------------------------------
    text = json.dumps(document)
    parsed = json.loads(text)
    events = parsed.get("traceEvents", [])
    _check(total > 0, "query matched nothing", failures)
    _check(len(events) >= 3, f"expected >=3 spans, got {len(events)}", failures)
    _check(
        all({"name", "ph", "ts", "dur", "pid", "tid"} <= set(e) for e in events),
        "trace events missing required Chrome fields",
        failures,
    )
    trace_ids = {event["args"]["trace_id"] for event in events}
    _check(
        len(trace_ids) == 1,
        f"workload spans split across {len(trace_ids)} traces",
        failures,
    )
    rpc_spans = [e for e in events if e["name"].startswith("rpc.")]
    _check(bool(rpc_spans), "no rpc.* spans crossed the socket", failures)
    print(f"  trace: {len(events)} spans, one trace id, {len(rpc_spans)} rpc spans")

    # -- metrics op ------------------------------------------------------
    tenants = metrics.get("tenants", {})
    default = tenants.get("default", {})
    ops = default.get("ops", {})
    _check("query" in ops, f"metrics op missing query stats (got {sorted(ops)})", failures)
    if "query" in ops:
        _check(ops["query"]["count"] >= 1, "query count not recorded", failures)
        _check(ops["query"]["p95_ms"] is not None, "no query latency percentile", failures)
    _check(
        bool(metrics.get("slow_queries")),
        "slow-query ring empty despite --slow-query-ms 0",
        failures,
    )
    print(
        f"  metrics: {len(tenants)} tenant(s), query count "
        f"{ops.get('query', {}).get('count')}, "
        f"{len(metrics.get('slow_queries', []))} slow quer(ies)"
    )

    # -- daemon logs -----------------------------------------------------
    _check("op=query tenant=default" in stderr, "no query access-log line", failures)
    _check("op=metrics" in stderr, "no metrics access-log line", failures)
    _check("slow query" in stderr, "no slow-query WARNING", failures)
    banner_free = [line for line in stdout.splitlines() if line.strip()]
    _check(
        len(banner_free) <= 1,
        f"stdout carried more than the shutdown note: {banner_free}",
        failures,
    )
    access_lines = stderr.count("op=")
    print(f"  logs: {access_lines} access-log line(s) on stderr, stdout clean")
    return len(failures)


SCRAPE_OVERHEAD_BUDGET = 1.5  # sampled/bare median-latency ratio ceiling
SCRAPE_OPS = 600


def _median_query_ms(url: str, ops: int) -> float:
    from repro.api import connect

    with connect(url) as client:
        samples = []
        for _ in range(ops):
            started = time.perf_counter()
            client.query(None, limit=1)
            samples.append((time.perf_counter() - started) * 1000.0)
    samples.sort()
    return samples[len(samples) // 2]


def run_scrape_overhead() -> int:
    """The 1 s sampler tick must not tax the serving path."""
    import sys as _sys

    _sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.server import PassDaemon

    failures: list = []
    with PassDaemon(sample_interval_s=None) as daemon:
        bare_ms = _median_query_ms(daemon.address.url, SCRAPE_OPS)
    with PassDaemon(sample_interval_s=1.0) as daemon:
        sampled_ms = _median_query_ms(daemon.address.url, SCRAPE_OPS)
        # While we're here: the sampler must actually have sampled.
        # The query loop can finish inside the first 1 s interval, so
        # give the tick a moment to land before reading the store.
        deadline = time.time() + 5.0
        while not daemon.timeseries.names() and time.time() < deadline:
            time.sleep(0.05)
        names = daemon.timeseries.names()
        _check(
            "daemon.default.query.calls" in names,
            f"sampler produced no per-op series (got {names})",
            failures,
        )
        export = daemon._export_text(None)
        _check(
            "daemon_default_query_calls_total" in export
            and export.rstrip().endswith("# EOF"),
            "OpenMetrics exposition incomplete",
            failures,
        )
        health = daemon._health_report(None)
        _check(
            health["status"] == "ok",
            f"daemon unhealthy under benchmark load: {health}",
            failures,
        )
    ratio = sampled_ms / bare_ms if bare_ms > 0 else 1.0
    _check(
        ratio <= SCRAPE_OVERHEAD_BUDGET,
        f"sampler overhead {ratio:.2f}x exceeds {SCRAPE_OVERHEAD_BUDGET}x budget "
        f"(bare {bare_ms:.3f} ms, sampled {sampled_ms:.3f} ms)",
        failures,
    )
    print(
        f"  scrape overhead: bare {bare_ms:.3f} ms vs sampled {sampled_ms:.3f} ms "
        f"median ({ratio:.2f}x, budget {SCRAPE_OVERHEAD_BUDGET}x)"
    )
    return len(failures)


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_obs_smoke():
    """CI gate: serve + traced workload + access log + metrics op."""
    assert run_smoke() == 0


def test_scrape_overhead():
    """CI gate: the metrics sampler stays within its latency budget."""
    assert run_scrape_overhead() == 0


def main() -> int:
    started = time.perf_counter()
    failures = run_smoke()
    failures += run_scrape_overhead()
    elapsed = time.perf_counter() - started
    if failures:
        print(f"\n{failures} failure(s) in {elapsed:.1f}s")
        return 1
    print(f"\nok in {elapsed:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
