"""Ablation benchmarks for the local PASS design choices.

Two knobs DESIGN.md calls out get measured head-to-head here:

* the attribute index (queries fall back to full scans without it),
* the storage backend (in-memory vs durable SQLite).

Run with:  pytest benchmarks/bench_ablation_store.py --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.core import AttributeEquals, PassStore, Query
from repro.sensors.workloads import TrafficWorkload
from repro.storage import MemoryBackend, SQLiteBackend


@pytest.fixture(scope="module")
def workload_sets():
    workload = TrafficWorkload(seed=81, cities=("london", "boston"), stations_per_city=4)
    raw, derived = workload.all_sets(hours=3.0)
    return raw + derived


def _populate(store, tuple_sets):
    for tuple_set in tuple_sets:
        store.ingest(tuple_set)
    return store


@pytest.mark.parametrize("indexed", ["indexed", "scan-only"], ids=str)
def test_query_with_and_without_attribute_index(benchmark, workload_sets, indexed):
    """Equality query answered from the inverted index vs by scanning every record."""
    if indexed == "indexed":
        store = _populate(PassStore(), workload_sets)
    else:
        # Restrict the index to an attribute the query does not use, forcing
        # the store onto its scan path.
        store = _populate(PassStore(indexed_attributes=["never_used"]), workload_sets)
    query = Query(AttributeEquals("city", "london"))
    results = benchmark(store.query, query)
    assert results


@pytest.mark.parametrize("backend_kind", ["memory", "sqlite"], ids=str)
def test_ingest_backend_ablation(benchmark, workload_sets, backend_kind, tmp_path_factory):
    """Ingest cost on the volatile backend vs the durable SQLite backend."""

    def ingest_all():
        if backend_kind == "memory":
            backend = MemoryBackend()
        else:
            directory = tmp_path_factory.mktemp("ablation")
            backend = SQLiteBackend(directory / "store.db")
        store = _populate(PassStore(backend=backend), workload_sets)
        count = len(store)
        backend.close()
        return count

    count = benchmark.pedantic(ingest_all, rounds=3, iterations=1)
    assert count == len({ts.pname for ts in workload_sets})


@pytest.mark.parametrize("strategy", ["naive", "labelled"], ids=str)
def test_taint_query_closure_ablation(benchmark, workload_sets, strategy):
    """Descendant (taint) queries under the naive vs labelled closure strategy."""
    store = _populate(PassStore(closure=strategy), workload_sets)
    raw = [ts for ts in workload_sets if ts.provenance.is_raw()]

    def taint_all():
        total = 0
        for tuple_set in raw:
            total += len(store.descendants(tuple_set.pname))
        return total

    total = benchmark(taint_all)
    assert total > 0
