"""Benchmark: the repro.lineage reachability index vs. naive full scans.

The acceptance claim of the lineage engine rebuild: on a 10^5-node
provenance graph with derivation chains 10^3 deep, planner-served
deep-lineage queries (``Q.derived_from(root)``) through the interval
index are >= 10x faster than the ``NaiveClosure`` full-scan baseline
(a scan that re-tests reachability per stored record -- what a plain
relational name-to-value scheme would do), while returning identical
results.

Run with:  python benchmarks/bench_lineage.py          (10^5 nodes, depth 10^3)
      or:  python benchmarks/bench_lineage.py --quick  (CI smoke, 10^4 nodes)
      or:  pytest benchmarks/bench_lineage.py -s

The quick mode gates CI on plan *shape* (lineage queries must be served
by a lineage access path, never a full scan, and must match the forced
full-scan answer exactly) plus the strategy-equivalence of the interval
index; wall-clock speedups stay advisory there because shared runners
make timing thresholds flaky.  The full mode asserts the 10x claim.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.api.dsl import Q
from repro.core.pass_store import PassStore
from repro.core.provenance import ProvenanceRecord

CHAIN_DEPTH = 1_000
QUICK_CHAIN_DEPTH = 500
QUERY_CHAINS = 5  # how many chain roots the timed query set probes


def _emit_bench_json(area: str, payload: dict) -> None:
    """Persist headline numbers via the shared conftest helper (by path,
    so it works as a script and under pytest alike)."""
    import importlib.util
    from pathlib import Path

    name = "repro_bench_results"
    module = sys.modules.get(name)
    if module is None:
        spec = importlib.util.spec_from_file_location(
            name, Path(__file__).resolve().with_name("conftest.py")
        )
        module = importlib.util.module_from_spec(spec)
        sys.modules[name] = module
        spec.loader.exec_module(module)
    module.write_bench_json(area, payload)


def build_records(total_nodes: int, chain_depth: int):
    """``total_nodes`` records in chains of ``chain_depth`` derivation steps."""
    chains = max(1, total_nodes // chain_depth)
    records = []
    roots = []
    for chain in range(chains):
        previous = None
        for position in range(chain_depth):
            record = ProvenanceRecord(
                {
                    "domain": "lineage-bench",
                    "chain": chain,
                    "position": position,
                    "city": "london" if chain % 2 else "boston",
                },
                ancestors=[previous] if previous is not None else [],
            )
            previous = record.pname()
            if position == 0:
                roots.append(previous)
            records.append(record)
    return records, roots


def populate(closure: str, records) -> PassStore:
    store = PassStore(closure=closure)
    for record in records:
        store.ingest_record(record)
    return store


def timed_queries(store: PassStore, roots, force_full_scan: bool, count: int = QUERY_CHAINS):
    """Run one deep-lineage query per probed root; return (seconds, answers, explains)."""
    answers = []
    explains = []
    started = time.perf_counter()
    for root in roots[:count]:
        pairs, explain = store.query_explain(
            Q.find(Q.derived_from(root)).build(), force_full_scan=force_full_scan
        )
        answers.append(frozenset(pname for pname, _ in pairs))
        explains.append(explain)
    return time.perf_counter() - started, answers, explains


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke: smaller graph")
    args = parser.parse_args(argv)

    total_nodes = 10_000 if args.quick else 100_000
    chain_depth = QUICK_CHAIN_DEPTH if args.quick else CHAIN_DEPTH
    records, roots = build_records(total_nodes, chain_depth)
    print(
        f"graph: {len(records)} nodes in {len(roots)} chains of depth {chain_depth}"
        f" ({'quick' if args.quick else 'full'} mode)"
    )

    build_started = time.perf_counter()
    indexed = populate("interval", records)
    build_seconds = time.perf_counter() - build_started
    naive = populate("naive", records)
    print(f"interval store built in {build_seconds:.2f}s")

    # --- plan shape: the planner must serve lineage from a lineage path.
    indexed_seconds, indexed_answers, explains = timed_queries(indexed, roots, False)
    for explain in explains:
        assert explain.path_kind == "lineage-descendants", explain.path_kind
        assert explain.used_index, "lineage query must not fall back to a full scan"
    per_query_ms = 1000.0 * indexed_seconds / QUERY_CHAINS
    print(f"interval index:  {per_query_ms:8.2f} ms/query (planner: {explains[0].path_kind})")
    stats = indexed.closure.index_stats()
    print(
        f"index shape:     {stats['chains']} chains, {stats['label_entries']} label entries, "
        f"{stats['rebuilds']} rebuild(s)"
    )
    # Compressed labelling: label entries are O(V * touched chains), and on a
    # chain workload each node's maps only touch its own chain (<< V^2 sets).
    assert stats["label_entries"] <= 4 * len(records), stats["label_entries"]

    # --- parity: identical answers to the naive strategy under a forced scan.
    # The baseline is so slow at full scale (that is the finding) that one
    # timed query suffices there; quick mode checks parity on all of them.
    naive_count = QUERY_CHAINS if args.quick else 1
    naive_seconds, naive_answers, naive_explains = timed_queries(
        naive, roots, True, count=naive_count
    )
    assert all(e.path_kind == "full-scan" for e in naive_explains)
    assert indexed_answers[:naive_count] == naive_answers, (
        "index-served answers must match the scan"
    )
    expected = chain_depth - 1
    assert all(len(answer) == expected for answer in indexed_answers)
    naive_ms = 1000.0 * naive_seconds / naive_count
    print(f"naive full scan: {naive_ms:8.2f} ms/query")

    speedup = naive_ms / max(per_query_ms, 1e-9)
    print(f"speedup:         {speedup:8.1f}x (gate: >= 10x in full mode)")
    if not args.quick:
        assert speedup >= 10.0, f"expected >= 10x over the naive full scan, got {speedup:.1f}x"

    _emit_bench_json(
        "lineage",
        {
            "nodes": len(records),
            "chain_depth": chain_depth,
            "build_seconds": round(build_seconds, 3),
            "indexed_ms_per_query": round(per_query_ms, 3),
            "naive_ms_per_query": round(naive_ms, 3),
            "speedup": round(speedup, 2),
            "label_entries": stats["label_entries"],
            "gates": {"required_speedup": 10.0, "timing_asserted": not args.quick},
        },
    )
    print("bench_lineage: ok")
    return 0


def test_lineage_bench_quick():
    """Tier-1 entry point: the deterministic quick gate."""
    assert main(["--quick"]) == 0


if __name__ == "__main__":
    sys.exit(main())
