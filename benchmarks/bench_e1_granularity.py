"""Index granularity: per-tuple vs per-tuple-set indexing cost (Section II).

Regenerates experiment E1 (see DESIGN.md section 3 and EXPERIMENTS.md).
Run with:  pytest benchmarks/bench_e1_granularity.py --benchmark-only
"""

from repro.eval.experiments_core import run_e1


def test_e1(run_experiment_benchmark):
    result = run_experiment_benchmark(run_e1)
    assert result.rows
    rows = result.row_dicts()
    for row in rows:
        assert row["per_set_index_entries"] < row["per_tuple_index_entries"]
    ratios = [row["entry_ratio"] for row in rows]
    assert ratios == sorted(ratios)
