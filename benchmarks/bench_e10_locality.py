"""Storage near the sensors: locale-aware vs location-oblivious placement (Section III-D).

Regenerates experiment E10 (see DESIGN.md section 3 and EXPERIMENTS.md).
Run with:  pytest benchmarks/bench_e10_locality.py --benchmark-only
"""

from repro.eval.experiments_distributed import run_e10


def test_e10(run_experiment_benchmark):
    result = run_experiment_benchmark(run_e10)
    assert result.rows
    locale = result.find_row(model="locale-aware-pass")
    dht = result.find_row(model="dht")
    assert locale["local_query_ms"] < dht["local_query_ms"]
    assert locale["placement_km"] < dht["placement_km"]
