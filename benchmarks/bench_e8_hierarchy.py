"""Hierarchical namespaces: the significance-ordering penalty (Section IV-B).

Regenerates experiment E8 (see DESIGN.md section 3 and EXPERIMENTS.md).
Run with:  pytest benchmarks/bench_e8_hierarchy.py --benchmark-only
"""

from repro.eval.experiments_distributed import run_e8


def test_e8(run_experiment_benchmark):
    result = run_experiment_benchmark(run_e8)
    assert result.rows
    rows = result.row_dicts()
    primary = [r for r in rows if r["servers_contacted"] == 1]
    broadcast = [r for r in rows if r["servers_contacted"] > 1]
    assert primary and broadcast
