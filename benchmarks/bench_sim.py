"""Benchmark: discrete-event kernel throughput + queueing the old layer couldn't see.

Two claims gate here:

1. **Kernel throughput** -- the event loop (heap scheduling, hop
   delivery, FIFO server accounting) sustains >= 100,000 events/second
   of wall-clock time, so simulating millions of messages is practical.

2. **Concurrency separation** (fully deterministic, virtual-time): under
   64 concurrent publishers the centralized warehouse saturates -- its
   p99 publish latency degrades >= 5x versus a single client -- while
   the DHT, which spreads the same load across the ring, degrades < 2x.
   The old message-counting simulator composed per-operation latencies
   in isolation and was structurally incapable of expressing this.

Run with:  python benchmarks/bench_sim.py          (64 clients x 16 ops each)
      or:  python benchmarks/bench_sim.py --quick  (CI smoke, 64 x 4)
      or:  pytest benchmarks/bench_sim.py -s
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.core.attributes import GeoPoint, Timestamp
from repro.core.provenance import ProvenanceRecord
from repro.core.tupleset import TupleSet
from repro.distributed import CentralizedWarehouse, DistributedHashTable
from repro.net import Site, Topology
from repro.sim import Hop, OpTrace, SimConfig, SimKernel, simulate_publish_workload

CLIENTS = 64
FULL_OPS_PER_CLIENT, QUICK_OPS_PER_CLIENT = 16, 4
FULL_KERNEL_EVENTS, QUICK_KERNEL_EVENTS = 400_000, 100_000
REQUIRED_EVENTS_PER_SECOND = 100_000.0

#: per-message service and per-update indexing costs of the separation
#: scenario (a metro deployment, where wire latency doesn't dwarf them)
SERVICE_MS = 0.2
INDEXING_MS = 2.0


# ----------------------------------------------------------------------
# Phase 1: kernel throughput
# ----------------------------------------------------------------------
def kernel_events_per_second(total_events: int) -> float:
    """Drive hop-delivery traces through servers; return events/s of wall time."""
    sites = [f"s{i}" for i in range(16)]
    chain_hops = 4
    traces = []
    for index in range(max(1, total_events // chain_hops)):
        steps = [
            Hop(
                sites[(index + hop) % len(sites)],
                sites[(index + hop + 1) % len(sites)],
                128,
                "bench",
                1.0,
            )
            for hop in range(chain_hops)
        ]
        traces.append(OpTrace(kind="bench", origin=steps[0].source, steps=steps))

    kernel = SimKernel(SimConfig(service_ms_per_message=0.01))
    began = time.perf_counter()
    for offset, trace in enumerate(traces):
        kernel.schedule_trace(trace, offset * 0.1, lambda end, ok: None)
    kernel.run()
    elapsed = time.perf_counter() - began
    return kernel.events_processed / elapsed if elapsed > 0 else float("inf")


# ----------------------------------------------------------------------
# Phase 2: concurrency separation (deterministic)
# ----------------------------------------------------------------------
def _metro_topology(storage_sites: int = 32) -> Topology:
    """A metro-scale deployment: sites within ~300 km plus a central warehouse.

    Short wires matter: here per-message service and indexing time are
    comparable to propagation latency, which is exactly the regime where
    a single shared warehouse becomes the bottleneck.
    """
    topology = Topology()
    for index in range(storage_sites):
        latitude = 44.0 + 2.0 * ((index * 0.381966011) % 1.0)
        longitude = -1.0 + 2.0 * ((index * 0.618033988) % 1.0)
        topology.add_site(Site(f"metro-{index:02d}", GeoPoint(latitude, longitude), kind="storage"))
    topology.add_site(Site("warehouse", GeoPoint(45.0, 0.0), kind="warehouse"))
    return topology


def _tuple_sets(count: int):
    sets = []
    for index in range(count):
        record = ProvenanceRecord(
            {
                "domain": "traffic",
                "city": f"metro-{index % 32:02d}",
                "sequence": index,
                "window_start": Timestamp(60.0 * index),
                "window_end": Timestamp(60.0 * index + 59.0),
            }
        )
        sets.append(TupleSet([], record))
    return sets


def _p99_under(model_builder, tuple_sets, clients: int):
    model = model_builder()
    report = simulate_publish_workload(
        model,
        tuple_sets,
        clients=clients,
        config=SimConfig(service_ms_per_message=SERVICE_MS),
    )
    assert report.failed() == 0, "separation runs publish over a healthy network"
    busiest = max(report.sites.values(), key=lambda facts: facts["utilization"])
    return report.summary()["p99"], busiest["utilization"]


def separation(ops_per_client: int):
    topology = _metro_topology()
    tuple_sets = _tuple_sets(CLIENTS * ops_per_client)

    def centralized():
        return CentralizedWarehouse(
            _metro_topology(), warehouse_site="warehouse", indexing_ms_per_update=INDEXING_MS
        )

    def dht():
        return DistributedHashTable(_metro_topology())

    results = {}
    for name, builder in (("centralized", centralized), ("dht", dht)):
        solo_p99, solo_util = _p99_under(builder, tuple_sets, clients=1)
        crowd_p99, crowd_util = _p99_under(builder, tuple_sets, clients=CLIENTS)
        results[name] = {
            "solo_p99": solo_p99,
            "crowd_p99": crowd_p99,
            "ratio": crowd_p99 / solo_p99 if solo_p99 > 0 else float("inf"),
            "crowd_util": crowd_util,
        }
    del topology
    return results


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def run_benchmark(ops_per_client: int, kernel_events: int, assert_timing: bool) -> int:
    failures = 0

    rate = kernel_events_per_second(kernel_events)
    print(f"\n[sim kernel] ~{kernel_events:,} hop-delivery events")
    print(f"  throughput:           {rate:>12,.0f} events/s (gate: {REQUIRED_EVENTS_PER_SECOND:,.0f})")
    if assert_timing and rate < REQUIRED_EVENTS_PER_SECOND:
        print(f"  THROUGHPUT FAILURE: {rate:,.0f} < {REQUIRED_EVENTS_PER_SECOND:,.0f} events/s")
        failures += 1

    results = separation(ops_per_client)
    print(f"\n[concurrency separation] 1 vs {CLIENTS} publishers, {CLIENTS * ops_per_client} publishes")
    for name, facts in results.items():
        print(
            f"  {name:<12} p99 {facts['solo_p99']:9.2f} ms -> {facts['crowd_p99']:9.2f} ms "
            f"({facts['ratio']:5.2f}x), busiest site {facts['crowd_util'] * 100:5.1f}% busy"
        )
    central_ratio = results["centralized"]["ratio"]
    dht_ratio = results["dht"]["ratio"]
    if central_ratio < 5.0:
        print(f"  SATURATION FAILURE: centralized p99 degraded {central_ratio:.2f}x < 5x")
        failures += 1
    if dht_ratio >= 2.0:
        print(f"  SPREAD FAILURE: dht p99 degraded {dht_ratio:.2f}x >= 2x")
        failures += 1
    if results["centralized"]["crowd_util"] < results["dht"]["crowd_util"]:
        print("  UTILIZATION FAILURE: the warehouse should be the hottest server")
        failures += 1
    _emit_bench_json(
        "sim",
        {
            "kernel_events": kernel_events,
            "events_per_second": round(rate, 1),
            "separation": {
                name: {key: round(value, 4) for key, value in facts.items()}
                for name, facts in results.items()
            },
            "gates": {
                "required_events_per_second": REQUIRED_EVENTS_PER_SECOND,
                "failures": failures,
            },
        },
    )
    return failures


def _emit_bench_json(area: str, payload: dict) -> None:
    """Persist headline numbers via the shared conftest helper (by path,
    so it works as a script and under pytest alike)."""
    import importlib.util
    from pathlib import Path

    name = "repro_bench_results"
    module = sys.modules.get(name)
    if module is None:
        spec = importlib.util.spec_from_file_location(
            name, Path(__file__).resolve().with_name("conftest.py")
        )
        module = importlib.util.module_from_spec(spec)
        sys.modules[name] = module
        spec.loader.exec_module(module)
    module.write_bench_json(area, payload)


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_sim_kernel_quick():
    """CI smoke: throughput gate + deterministic concurrency separation."""
    assert_timing = os.environ.get("BENCH_ASSERT_TIMING", "1") != "0"
    assert run_benchmark(QUICK_OPS_PER_CLIENT, QUICK_KERNEL_EVENTS, assert_timing) == 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"CI smoke size ({CLIENTS} clients x {QUICK_OPS_PER_CLIENT} ops)",
    )
    parser.add_argument("--ops", type=int, default=None, help="override ops per client")
    parser.add_argument("--events", type=int, default=None, help="override kernel event count")
    args = parser.parse_args(argv)
    ops = args.ops if args.ops is not None else (
        QUICK_OPS_PER_CLIENT if args.quick else FULL_OPS_PER_CLIENT
    )
    events = args.events if args.events is not None else (
        QUICK_KERNEL_EVENTS if args.quick else FULL_KERNEL_EVENTS
    )
    assert_timing = os.environ.get("BENCH_ASSERT_TIMING", "1") != "0"
    failures = run_benchmark(ops, events, assert_timing)
    if failures:
        print(f"\n{failures} failure(s)")
        return 1
    print("\nok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
