"""Benchmark: hundreds of concurrent clients against one provenance daemon.

The acceptance claim of ``repro.server``: one :class:`PassDaemon` serves
>= 200 genuinely concurrent client connections -- real sockets, real
threads, a real process boundary inside this process's daemon thread --
with full-protocol operations (publish + planned query + lineage) and
reports throughput and p50/p95/p99 per-operation latency.  The parity
gate runs in every mode: a fixed workload driven over ``pass://`` must
produce results *byte-identical* (canonical wire JSON) to the same
workload against ``memory://`` in-process.

Run with:  python benchmarks/bench_server.py          (200 connections)
      or:  python benchmarks/bench_server.py --quick  (CI smoke, 40 connections)
      or:  pytest benchmarks/bench_server.py -s

Parity and operation-success always gate; wall-clock throughput is
reported but never gated (shared runners make timing thresholds flaky).
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import threading
import time

from repro.api import connect
from repro.api.dsl import Q
from repro.core.attributes import GeoPoint, Timestamp
from repro.core.provenance import ProvenanceRecord
from repro.core.tupleset import SensorReading, TupleSet
from repro.obs import trace
from repro.server import PassDaemon, protocol

FULL_CLIENTS, FULL_OPS = 200, 12
QUICK_CLIENTS, QUICK_OPS = 40, 8
PARITY_SETS = 60

_CITIES = ("london", "boston", "tokyo", "geneva")


def _emit_bench_json(area: str, payload: dict) -> None:
    """Persist headline numbers via the shared conftest helper (by path,
    so it works as a script and under pytest alike)."""
    import importlib.util
    from pathlib import Path

    name = "repro_bench_results"
    module = sys.modules.get(name)
    if module is None:
        spec = importlib.util.spec_from_file_location(
            name, Path(__file__).resolve().with_name("conftest.py")
        )
        module = importlib.util.module_from_spec(spec)
        sys.modules[name] = module
        spec.loader.exec_module(module)
    module.write_bench_json(area, payload)


def _percentiles(samples, points=(50.0, 95.0, 99.0)) -> dict:
    if not samples:
        return {f"p{point:g}": None for point in points}
    ordered = sorted(samples)
    facts = {}
    for point in points:
        rank = max(0, min(len(ordered) - 1, round(point / 100.0 * len(ordered)) - 1))
        facts[f"p{point:g}"] = ordered[rank]
    return facts


# ----------------------------------------------------------------------
# Fixed parity workload
# ----------------------------------------------------------------------
def _parity_sets(count: int = PARITY_SETS):
    """A deterministic workload with attributes, locations and lineage."""
    sets = []
    previous = None
    for index in range(count):
        ancestors = [previous] if previous is not None and index % 3 == 0 else []
        record = ProvenanceRecord(
            {
                "domain": "traffic",
                "city": _CITIES[index % len(_CITIES)],
                "sequence": index,
                "window_start": Timestamp(300.0 * index),
                "window_end": Timestamp(300.0 * (index + 1)),
                "location": GeoPoint(51.5 + 0.01 * index, -0.12),
            }
        , ancestors=ancestors)
        readings = [
            SensorReading(
                f"cam-{index:04d}-{i}",
                Timestamp(300.0 * index + i),
                {"vehicle_count": 5 + i, "mean_speed_kph": 30.0 + index},
                GeoPoint(51.5, -0.12),
            )
            for i in range(2)
        ]
        sets.append(TupleSet(readings, record))
        previous = record.pname()
    return sets


def _parity_queries(sets):
    return [
        ("city-eq", Q.attr("city") == "london"),
        ("seq-range", Q.attr("sequence").between(10, 40)),
        ("near", Q.near(GeoPoint(51.6, -0.12), 25.0)),
        ("descendants", Q.derived_from(sets[0].pname)),
        ("ordered", Q.find(Q.attr("domain") == "traffic").order_by("sequence").build()),
    ]


def _canonical(payload) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


def _drive_parity(client, sets) -> bytes:
    """Publish the fixed workload and serialize every answer canonically."""
    transcript = []
    published = client.publish_many(sets)
    transcript.append(("publish_many", protocol.result_to_wire(published)))
    for label, query in _parity_queries(sets):
        result = client.query(query, limit=25)
        transcript.append((label, protocol.result_to_wire(result)))
    explain_wire = protocol.explain_to_wire(client.explain(Q.attr("city") == "boston"))
    # duration_ms is wall time, the one legitimately nondeterministic
    # Explain field; everything else stays in the byte-parity gate.
    explain_wire.pop("duration_ms", None)
    transcript.append(("explain", explain_wire))
    tail = sets[-1]
    transcript.append(
        ("ancestors", protocol.result_to_wire(client.ancestors(tail, limit=10)))
    )
    transcript.append(
        ("locate", protocol.result_to_wire(client.locate(sets[0].pname)))
    )
    return _canonical(transcript)


def parity_gate(address) -> int:
    """Remote answers must be byte-identical to the in-process ones."""
    sets = _parity_sets()
    with connect("memory://") as local:
        expected = _drive_parity(local, sets)
    with connect(f"{address.url}?tenant=parity") as remote:
        actual = _drive_parity(remote, sets)
    if expected != actual:
        print("  PARITY FAILURE: pass:// transcript differs from memory://")
        return 1
    print(f"  parity: {len(expected)} canonical bytes, remote == local")
    return 0


# ----------------------------------------------------------------------
# Tracing overhead gate
# ----------------------------------------------------------------------
def _overhead_pass(address, tenant: str, publishes: int, queries: int, lookups: int) -> dict:
    """One interleaved overhead measurement against a fresh tenant.

    Methodology: every individual operation alternates untraced/traced
    against one shared tenant (a representative 120-record-set store --
    on a near-empty store the fixed per-span cost reads as a far larger
    fraction than any production workload would see), and per-op-kind
    medians are compared.  Interleaving at op granularity means both
    populations sample the *same* ambient noise -- multi-second load
    bursts on shared runners poison whole rounds, which is why
    round-level comparisons proved unstable.  The headline ratio weights
    the per-kind medians by the workload's op mix.
    """
    kinds = ("publish", "query", "ancestors")
    samples = {(kind, mode): [] for kind in kinds for mode in "ut"}
    spans_seen = 0

    with connect(f"{address.url}?tenant={tenant}") as client:
        # A chained seed store: attribute queries scan real candidates
        # and the ancestors anchor walks a 120-deep derivation chain.
        seed_sets = _client_sets(0, 120, chain=True)
        client.publish_many(seed_sets)
        for _ in range(10):  # warm plan caches, lazy imports, allocator
            client.query(Q.attr("city") == "london", limit=10)
        gc.collect()

        def timed(kind: str, mode: str, operation) -> None:
            nonlocal spans_seen
            if mode == "t":
                trace.enable()
            started = time.perf_counter()
            operation()
            elapsed = time.perf_counter() - started
            if mode == "t":
                trace.disable()
                spans_seen += len(trace.drain())
            samples[(kind, mode)].append(elapsed)

        for index in range(publishes):
            batch = _client_sets(index + 1, 5)
            timed("publish", "ut"[index % 2], lambda b=batch: client.publish_many(b))
        for index in range(queries):
            timed(
                "query",
                "ut"[index % 2],
                lambda: client.query(Q.attr("city") == "london", limit=10),
            )
        anchor = seed_sets[-1]
        for index in range(lookups):
            timed("ancestors", "ut"[index % 2], lambda: client.ancestors(anchor, limit=10))

    weights = {"publish": publishes, "query": queries, "ancestors": lookups}
    medians = {
        key: sorted(values)[len(values) // 2] for key, values in samples.items()
    }
    untraced_ms = sum(weights[k] * medians[(k, "u")] for k in kinds) * 1e3
    traced_ms = sum(weights[k] * medians[(k, "t")] for k in kinds) * 1e3
    ratio = traced_ms / untraced_ms if untraced_ms > 0 else float("inf")
    per_kind = {k: round(medians[(k, "t")] / medians[(k, "u")], 4) for k in kinds}
    return {
        "untraced_ms": round(untraced_ms, 2),
        "traced_ms": round(traced_ms, 2),
        "ratio": round(ratio, 4),
        "per_kind": per_kind,
        "spans_traced_total": spans_seen,
    }


def tracing_overhead_gate(address, quick: bool) -> tuple:
    """Traced ops must stay within 10% of untraced (full mode gates).

    Runs one interleaved pass (see :func:`_overhead_pass`); if that pass
    exceeds the limit, a second pass on a fresh tenant decides -- the
    better of the two counts.  A real regression fails both passes; a
    noise burst on a shared runner rarely survives two.  Quick mode runs
    a shorter mix and gates loosely -- CI runners make tight timing
    thresholds flaky.
    """
    # Publish batches are individually slow (~2-3 ms) and carry much of
    # the weighted total, so they need as many samples as the cheap ops
    # or one unlucky batch swings the headline median.
    publishes, queries, lookups = (6, 40, 10) if quick else (24, 160, 40)
    limit = 1.5 if quick else 1.10
    facts = _overhead_pass(address, "overhead", publishes, queries, lookups)
    passes = 1
    if facts["ratio"] > limit:
        retry = _overhead_pass(address, "overhead-retry", publishes, queries, lookups)
        retry["spans_traced_total"] += facts["spans_traced_total"]
        if retry["ratio"] < facts["ratio"]:
            facts = retry
        passes = 2
    ratio = facts["ratio"]
    per_kind = facts["per_kind"]
    spans_seen = facts["spans_traced_total"]
    print(
        f"  tracing overhead: untraced {facts['untraced_ms']:.1f} ms, "
        f"traced {facts['traced_ms']:.1f} ms "
        f"(ratio {ratio:.3f}, limit {limit:.2f}, {spans_seen} spans, "
        f"{passes} pass(es); per-kind "
        + " ".join(f"{k}={per_kind[k]:.3f}" for k in per_kind)
        + ")"
    )
    failures = 0
    if ratio > limit:
        print(f"  TRACING OVERHEAD FAILURE: ratio {ratio:.3f} > {limit:.2f}")
        failures = 1
    if spans_seen == 0:
        print("  TRACING FAILURE: traced ops produced no spans")
        failures += 1
    facts["limit"] = limit
    facts["measurement_passes"] = passes
    return failures, facts


# ----------------------------------------------------------------------
# Concurrency benchmark
# ----------------------------------------------------------------------
def _client_sets(client_index: int, ops: int, chain: bool = False):
    """Per-client unique tuple sets (identical provenance would be refused).

    With ``chain=True`` each set derives from the previous one, so
    lineage ops against the tail walk a real derivation chain.
    """
    sets = []
    previous = None
    for op in range(ops):
        record = ProvenanceRecord(
            {
                "domain": "bench",
                "city": _CITIES[(client_index + op) % len(_CITIES)],
                "client": client_index,
                "sequence": op,
                "window_start": Timestamp(60.0 * op),
                "window_end": Timestamp(60.0 * (op + 1)),
            },
            ancestors=[previous] if chain and previous is not None else [],
        )
        readings = [
            SensorReading(
                f"c{client_index:03d}-s{op:03d}", Timestamp(60.0 * op), {"v": float(op)}
            )
        ]
        sets.append(TupleSet(readings, record))
        previous = record.pname()
    return sets


def _worker(url, client_index, ops, barrier, latencies, errors):
    try:
        client = connect(url)
    except Exception as error:
        errors.append(f"client {client_index} failed to connect: {error}")
        barrier.wait()
        return
    try:
        sets = _client_sets(client_index, ops)
        # Everyone holds an open connection before anyone starts: the
        # daemon genuinely has all N sockets live at once.
        barrier.wait()
        for op, tuple_set in enumerate(sets):
            started = time.perf_counter()
            if op % 4 == 3:
                client.query(Q.attr("client") == client_index, limit=5)
            else:
                client.publish(tuple_set)
            latencies.append((time.perf_counter() - started) * 1e3)
    except Exception as error:
        errors.append(f"client {client_index}: {error}")
    finally:
        client.close()


def run_concurrency(clients: int, ops: int, quick: bool = False) -> tuple:
    daemon = PassDaemon()
    address = daemon.start()
    failures = parity_gate(address)
    overhead_failures, overhead = tracing_overhead_gate(address, quick)
    failures += overhead_failures

    latencies = []
    errors = []
    barrier = threading.Barrier(clients + 1)
    url = f"{address.url}?tenant=bench"
    threads = [
        threading.Thread(
            target=_worker,
            args=(url, index, ops, barrier, latencies, errors),
            daemon=True,
        )
        for index in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()  # all connections are up; the clock starts now
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    daemon.stop()

    total_ops = len(latencies)
    throughput = total_ops / elapsed if elapsed > 0 else float("inf")
    stats = _percentiles(latencies)
    print(f"\n[server] {clients} concurrent connections x {ops} ops each")
    print(f"  operations:  {total_ops:,} in {elapsed:.2f}s  ({throughput:,.0f} ops/s)")
    print(
        f"  latency ms:  p50 {stats['p50']:.2f}  p95 {stats['p95']:.2f}  "
        f"p99 {stats['p99']:.2f}"
    )
    if errors:
        print(f"  OPERATION FAILURES ({len(errors)}):")
        for line in errors[:10]:
            print(f"    {line}")
        failures += 1
    if total_ops != clients * ops:
        print(f"  COUNT FAILURE: expected {clients * ops} ops, saw {total_ops}")
        failures += 1
    return failures, {
        "connections": clients,
        "ops_per_client": ops,
        "operations": total_ops,
        "elapsed_s": round(elapsed, 3),
        "throughput_ops_per_s": round(throughput, 1),
        "latency_ms": {key: round(value, 3) for key, value in stats.items()},
        "tracing_overhead": overhead,
    }


def run_benchmark(clients: int, ops: int, quick: bool = False) -> int:
    failures, facts = run_concurrency(clients, ops, quick)
    _emit_bench_json(
        "server",
        {
            **facts,
            "gates": {
                "parity": "byte-identical pass:// vs memory://",
                "tracing_overhead": "traced workload within limit of untraced",
                "min_connections_full_mode": FULL_CLIENTS,
                "failures": failures,
            },
        },
    )
    return failures


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_server_bench_quick():
    """CI smoke: parity gate + concurrent-connection success; timing advisory."""
    assert run_benchmark(QUICK_CLIENTS, QUICK_OPS, quick=True) == 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"CI smoke size ({QUICK_CLIENTS} connections x {QUICK_OPS} ops)",
    )
    parser.add_argument("--clients", type=int, default=None, help="override connection count")
    parser.add_argument("--ops", type=int, default=None, help="override ops per client")
    args = parser.parse_args(argv)
    clients = args.clients if args.clients is not None else (
        QUICK_CLIENTS if args.quick else FULL_CLIENTS
    )
    ops = args.ops if args.ops is not None else (QUICK_OPS if args.quick else FULL_OPS)
    failures = run_benchmark(clients, ops, quick=args.quick)
    if failures:
        print(f"\n{failures} failure(s)")
        return 1
    print("\nok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
