"""Microbenchmark: batched ``publish_many`` vs looped ``publish`` on the façade.

The first hot-path win of the PassClient API: ``publish_many`` hands the
local store's backend the whole batch (one SQLite transaction instead of
one commit per record) and ships one simulated round trip per batch on
the centralized model.  This benchmark sweeps batch sizes on the local
targets and prints per-tuple-set timings; the assertions pin the claim
that the batched path is measurably cheaper per tuple set.

Run with:  pytest benchmarks/bench_api_facade.py -s
      or:  python benchmarks/bench_api_facade.py
"""

from __future__ import annotations

import os
import time

from repro.api import connect
from repro.core import GeoPoint, ProvenanceRecord, SensorReading, Timestamp, TupleSet

BATCH_SIZES = (50, 200, 800)


def _tuple_sets(count: int):
    """Small deterministic tuple sets (no workload machinery in the timed path)."""
    sets = []
    for index in range(count):
        record = ProvenanceRecord(
            {
                "domain": "traffic",
                "city": "london" if index % 2 == 0 else "boston",
                "sequence": index,
                "window_start": Timestamp(300.0 * index),
                "window_end": Timestamp(300.0 * (index + 1)),
                "location": GeoPoint(51.5, -0.12),
            }
        )
        readings = [
            SensorReading(f"cam-{index:04d}-{i}", Timestamp(300.0 * index + i), {"v": float(i)})
            for i in range(3)
        ]
        sets.append(TupleSet(readings, record))
    return sets


REPEATS = 3  # best-of-N absorbs one-off pauses (GC, disk cache) on shared runners


def _time_looped(url: str, sets) -> float:
    with connect(url) as client:
        start = time.perf_counter()
        for tuple_set in sets:
            client.publish(tuple_set)
        return time.perf_counter() - start


def _time_batched(url: str, sets) -> float:
    with connect(url) as client:
        start = time.perf_counter()
        client.publish_many(sets)
        return time.perf_counter() - start


def _sweep(url_for):
    """``url_for(tag, size)`` must name a *fresh* target per measurement."""
    rows = []
    for size in BATCH_SIZES:
        sets = _tuple_sets(size)
        looped = min(
            _time_looped(url_for(f"looped-{rep}", size), sets) for rep in range(REPEATS)
        )
        batched = min(
            _time_batched(url_for(f"batched-{rep}", size), sets) for rep in range(REPEATS)
        )
        rows.append((size, looped / size * 1e6, batched / size * 1e6, looped / batched))
    return rows


def _print_table(url: str, rows) -> None:
    print(f"\n[{url}] publish cost per tuple set")
    print(f"  {'batch':>6} {'looped us/set':>14} {'batched us/set':>15} {'speedup':>8}")
    for size, looped_us, batched_us, speedup in rows:
        print(f"  {size:>6} {looped_us:>14.1f} {batched_us:>15.1f} {speedup:>7.2f}x")
    _emit_bench_json(url, rows)


def _emit_bench_json(url: str, rows) -> None:
    """Merge this sweep into BENCH_api_facade.json via the shared helper."""
    import importlib.util
    import json
    import sys
    from pathlib import Path

    name = "repro_bench_results"
    module = sys.modules.get(name)
    if module is None:
        spec = importlib.util.spec_from_file_location(
            name, Path(__file__).resolve().with_name("conftest.py")
        )
        module = importlib.util.module_from_spec(spec)
        sys.modules[name] = module
        spec.loader.exec_module(module)
    path = Path(__file__).resolve().parent / "results" / "BENCH_api_facade.json"
    document = {}
    if path.exists():
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except ValueError:
            document = {}
    sweeps = document.get("sweeps") or {}
    sweeps[url] = [
        {
            "batch": size,
            "looped_us_per_set": round(looped_us, 2),
            "batched_us_per_set": round(batched_us, 2),
            "speedup": round(speedup, 3),
        }
        for size, looped_us, batched_us, speedup in rows
    ]
    module.write_bench_json("api_facade", {"sweeps": sweeps})


def test_publish_many_is_cheaper_on_sqlite(tmp_path):
    """On the durable backend the batch commits once, so the win is large."""
    rows = _sweep(lambda tag, size: f"sqlite:///{tmp_path}/bench-{tag}-{size}.db")
    _print_table("sqlite:///...", rows)
    # Wall-clock thresholds are advisory on shared CI runners (set
    # BENCH_ASSERT_TIMING=0 there); locally they gate, on the larger
    # batches where the one-commit-per-batch win dominates timer noise.
    if os.environ.get("BENCH_ASSERT_TIMING", "1") != "0":
        for size, _, _, speedup in rows:
            if size >= 200:
                assert speedup > 1.2, f"batch of {size} not measurably cheaper ({speedup:.2f}x)"


def test_publish_many_not_slower_in_memory():
    """In memory the batch mainly saves per-call bookkeeping; it must not regress."""
    rows = _sweep(lambda tag, size: "memory://")
    _print_table("memory://", rows)
    if os.environ.get("BENCH_ASSERT_TIMING", "1") != "0":
        assert max(speedup for *_, speedup in rows) > 0.9


def test_centralized_batch_single_round_trip_cost():
    """On the centralized model the batch pays wide-area latency once per site."""
    sets = _tuple_sets(200)
    looped = connect("centralized://")
    looped_cost = None
    for tuple_set in sets:
        result = looped.publish(tuple_set)
        looped_cost = result if looped_cost is None else looped_cost.merge(result)
    batched = connect("centralized://").publish_many(sets)
    print(
        f"\n[centralized://] looped: {looped_cost.cost.messages} msgs "
        f"{looped_cost.cost.latency_ms:.0f} ms; batched: {batched.cost.messages} msgs "
        f"{batched.cost.latency_ms:.0f} ms"
    )
    assert batched.cost.messages < looped_cost.cost.messages / 10
    assert batched.cost.latency_ms < looped_cost.cost.latency_ms / 10


if __name__ == "__main__":  # pragma: no cover - manual convenience
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        _print_table(
            "sqlite:///...", _sweep(lambda tag, size: f"sqlite:///{tmp}/bench-{tag}-{size}.db")
        )
    _print_table("memory://", _sweep(lambda tag, size: "memory://"))
    test_centralized_batch_single_round_trip_cost()
