"""Benchmark: planner-chosen index paths vs. forced full scans.

The acceptance claim of the ``repro.query`` subsystem: on a 10^5 tuple
set store, planner-chosen time-window, geo-radius and attribute-range
queries are >= 10x faster than the forced full-scan baseline, and every
query class returns *identical* results either way (access paths only
generate candidates; the full predicate always runs on them).

Run with:  python benchmarks/bench_query_planner.py          (10^5 records)
      or:  python benchmarks/bench_query_planner.py --quick  (CI smoke, 5x10^3)
      or:  pytest benchmarks/bench_query_planner.py -s

The quick mode gates CI on plan *shape* (the planner must pick the index
path and return scan-parity results) and keeps the wall-clock speedup
advisory, because shared runners make timing thresholds flaky; the full
mode asserts the 10x claim.
"""

from __future__ import annotations

import argparse
import os
import random
import sys
import time

from repro.api.client import LocalClient
from repro.api.dsl import Q
from repro.core.attributes import GeoPoint, Timestamp
from repro.core.pass_store import PassStore
from repro.core.provenance import ProvenanceRecord
from repro.core.tupleset import TupleSet

FULL_SIZE = 100_000
QUICK_SIZE = 5_000
REPEATS = 3  # best-of-N absorbs one-off pauses on shared machines

#: roughly 1% selectivity per query class, at any store size
WINDOW_SECONDS = 60.0


def _build_store(count: int) -> PassStore:
    """A store of ``count`` synthetic tuple sets spread over time and space.

    Windows tile the timeline (one per minute); locations spread over a
    ~30x40 degree area so the spatial grid actually discriminates.
    """
    rng = random.Random(20260730)
    store = PassStore()
    sets = []
    for index in range(count):
        record = ProvenanceRecord(
            {
                "domain": "traffic",
                "city": f"city-{index % 100:03d}",
                "sequence": index,
                "window_start": Timestamp(WINDOW_SECONDS * index),
                "window_end": Timestamp(WINDOW_SECONDS * index + WINDOW_SECONDS - 1.0),
                "location": GeoPoint(
                    rng.uniform(30.0, 60.0), rng.uniform(-20.0, 20.0)
                ),
            }
        )
        sets.append(TupleSet([], record))
        if len(sets) >= 2000:
            store.ingest_many(sets)
            sets = []
    if sets:
        store.ingest_many(sets)
    return store


def _query_suite(count: int):
    """(label, predicate) pairs; each touches ~1% of the store."""
    span = WINDOW_SECONDS * count
    window = (span * 0.45, span * 0.45 + span * 0.01)
    return [
        ("time-window", Q.between(window[0], window[1])),
        ("geo-radius", Q.near(GeoPoint(45.0, 0.0), 100.0)),
        (
            "attr-range",
            Q.attr("sequence").between(int(count * 0.3), int(count * 0.3) + count // 100),
        ),
        ("attr-equality", Q.attr("city") == "city-042"),
    ]


def _time_query(store: PassStore, predicate, force_full_scan: bool) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        store.query_explain(predicate, force_full_scan=force_full_scan)
        best = min(best, time.perf_counter() - start)
    return best


def _emit_bench_json(area: str, payload: dict) -> None:
    """Persist headline numbers via the shared conftest helper (by path,
    so it works as a script and under pytest alike)."""
    import importlib.util
    from pathlib import Path

    name = "repro_bench_results"
    module = sys.modules.get(name)
    if module is None:
        spec = importlib.util.spec_from_file_location(
            name, Path(__file__).resolve().with_name("conftest.py")
        )
        module = importlib.util.module_from_spec(spec)
        sys.modules[name] = module
        spec.loader.exec_module(module)
    module.write_bench_json(area, payload)


def run_benchmark(count: int, assert_timing: bool, required_speedup: float) -> int:
    store = _build_store(count)
    client = LocalClient(store, owns_store=False)
    print(f"\n[planner vs full scan] {count} tuple sets")
    print(f"  {'query':>14} {'path':>18} {'rows':>6} {'scan ms':>9} {'plan ms':>9} {'speedup':>8}")
    failures = 0
    queries = {}
    for label, predicate in _query_suite(count):
        planned_pairs, explain = store.query_explain(predicate)
        scanned_pairs, _ = store.query_explain(predicate, force_full_scan=True)
        # Unordered queries may come back in path-dependent order
        # (index paths answer in digest order, scans in ingest order);
        # the matched *sets* must be identical.
        if {p for p, _ in planned_pairs} != {p for p, _ in scanned_pairs}:
            print(f"  PARITY FAILURE on {label}: planner and scan answers differ")
            failures += 1
            continue
        if explain.path_kind == "full-scan":
            print(f"  PLAN FAILURE on {label}: planner fell back to a full scan")
            failures += 1
            continue
        # client.explain must surface the same plan with estimate + actuals.
        facade = client.explain(predicate)
        if not facade.used_index or facade.actual_rows != len(planned_pairs):
            print(f"  EXPLAIN FAILURE on {label}: façade explain disagrees with execution")
            failures += 1
            continue
        scan_s = _time_query(store, predicate, force_full_scan=True)
        plan_s = _time_query(store, predicate, force_full_scan=False)
        speedup = scan_s / plan_s if plan_s > 0 else float("inf")
        print(
            f"  {label:>14} {explain.path_kind:>18} {len(planned_pairs):>6}"
            f" {scan_s * 1e3:>9.2f} {plan_s * 1e3:>9.2f} {speedup:>7.1f}x"
        )
        queries[label] = {
            "path": explain.path_kind,
            "rows": len(planned_pairs),
            "scan_ms": round(scan_s * 1e3, 3),
            "plan_ms": round(plan_s * 1e3, 3),
            "speedup": round(speedup, 2),
        }
        if assert_timing and speedup < required_speedup:
            print(
                f"  TIMING FAILURE on {label}: {speedup:.1f}x < required {required_speedup}x"
            )
            failures += 1
    _emit_bench_json(
        "query_planner",
        {
            "tuple_sets": count,
            "queries": queries,
            "gates": {"required_speedup": required_speedup, "failures": failures},
        },
    )
    return failures


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_planner_parity_and_paths_quick():
    """CI smoke: index plans chosen, scan parity holds; timing advisory."""
    assert_timing = os.environ.get("BENCH_ASSERT_TIMING", "0") != "0"
    assert run_benchmark(QUICK_SIZE, assert_timing, required_speedup=2.0) == 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help=f"CI smoke size ({QUICK_SIZE} records)"
    )
    parser.add_argument("--size", type=int, default=None, help="override the record count")
    args = parser.parse_args(argv)
    count = args.size if args.size is not None else (QUICK_SIZE if args.quick else FULL_SIZE)
    # Plan shape and parity always gate; wall-clock gates outside --quick
    # (or when BENCH_ASSERT_TIMING=1 forces it).
    assert_timing = (
        not args.quick or os.environ.get("BENCH_ASSERT_TIMING", "0") != "0"
    )
    required = 10.0 if count >= FULL_SIZE else 2.0
    failures = run_benchmark(count, assert_timing, required)
    if failures:
        print(f"\n{failures} failure(s)")
        return 1
    print("\nok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
