"""Distributed and federated databases on recursive queries (Section IV-B).

Regenerates experiment E6 (see DESIGN.md section 3 and EXPERIMENTS.md).
Run with:  pytest benchmarks/bench_e6_dbs.py --benchmark-only
"""

from repro.eval.experiments_distributed import run_e6


def test_e6(run_experiment_benchmark):
    result = run_experiment_benchmark(run_e6)
    assert result.rows
    rows = result.row_dicts()
    closure_rows = [r for r in rows if r["operation"] == "ancestor closure" and r["model"] != "centralized"]
    assert all(int(r["closure_rounds"]) >= 2 for r in closure_rows)
