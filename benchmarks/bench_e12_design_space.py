"""The full design-space matrix: every architecture against every criterion (Section IV).

Regenerates experiment E12 (see DESIGN.md section 3 and EXPERIMENTS.md).
Run with:  pytest benchmarks/bench_e12_design_space.py --benchmark-only
"""

from repro.eval.experiments_distributed import run_e12


def test_e12(run_experiment_benchmark):
    result = run_experiment_benchmark(run_e12)
    assert result.rows
    rows = {row["model"]: row for row in result.row_dicts()}
    assert len(rows) == 7
    assert rows["soft-state"]["closure_ms"] == "unsupported"
