"""Micro-benchmarks of the local PASS hot paths.

These are the operations every experiment leans on: ingest, indexed
attribute lookup, temporal lookup, transitive closure and taint
analysis.  Unlike the ``bench_eN`` macro-benchmarks they use
pytest-benchmark's normal repeated-measurement mode, so they are the
numbers to watch when optimising the store itself.

Run with:  pytest benchmarks/bench_core_microbenchmarks.py --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.core import AttributeEquals, PassStore, Query, Timestamp
from repro.core.closure import make_closure
from repro.sensors.workloads import TrafficWorkload


@pytest.fixture(scope="module")
def workload_sets():
    workload = TrafficWorkload(seed=71, cities=("london", "boston"), stations_per_city=4)
    raw, derived = workload.all_sets(hours=3.0)
    return raw + derived


@pytest.fixture(scope="module")
def populated(workload_sets):
    store = PassStore()
    for tuple_set in workload_sets:
        store.ingest(tuple_set)
    return store


def test_ingest_throughput(benchmark, workload_sets):
    """Tuple sets ingested per benchmark round (fresh store each round)."""

    def ingest_all():
        store = PassStore()
        for tuple_set in workload_sets:
            store.ingest(tuple_set)
        return len(store)

    count = benchmark(ingest_all)
    assert count == len({ts.pname for ts in workload_sets})


def test_attribute_query_latency(benchmark, populated):
    """Indexed equality query over the whole store."""
    query = Query(AttributeEquals("city", "london"))
    results = benchmark(populated.query, query)
    assert results


def test_temporal_index_lookup(benchmark, populated):
    """Window-overlap lookup on the temporal index."""
    results = benchmark(
        populated.temporal_index.overlapping, Timestamp(0.0), Timestamp(1800.0)
    )
    assert results


def test_ancestor_closure_latency(benchmark, populated, workload_sets):
    """Full ancestor set of the most derived data set."""
    derived = [ts for ts in workload_sets if not ts.provenance.is_raw()]
    target = derived[-1].pname
    ancestors = benchmark(populated.ancestors, target)
    assert ancestors


def test_descendant_taint_latency(benchmark, populated, workload_sets):
    """Taint query: all data derived from one raw window."""
    raw = [ts for ts in workload_sets if ts.provenance.is_raw()]
    target = raw[0].pname
    descendants = benchmark(populated.descendants, target)
    assert descendants


@pytest.mark.parametrize("strategy", ["naive", "memoized", "labelled"])
def test_closure_strategy_query_cost(benchmark, strategy):
    """Ancestor queries over a 64-deep chain, per closure strategy (E3 ablation)."""
    from repro.core import ProvenanceRecord

    closure = make_closure(strategy)
    nodes = [ProvenanceRecord({"n": i}).pname() for i in range(65)]
    for node in nodes:
        closure.add_node(node)
    for index in range(64):
        closure.add_edge(nodes[index + 1], nodes[index])

    def query_all():
        total = 0
        for node in nodes:
            total += len(closure.ancestors(node))
        return total

    total = benchmark(query_all)
    assert total == 64 * 65 // 2
