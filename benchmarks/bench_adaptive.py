"""Benchmark: adaptive recovery from a mid-run selectivity shift.

The acceptance claim of the ``repro.query.feedback`` loop: when the data
distribution shifts under a cached plan -- here, one city's attribute
bucket ballooning from ~2% of the store to ~45% of it -- the adaptive
engine must notice the estimated-vs-actual drift, re-rank the shape, and
settle back to within 20% of the statically-optimal latency (a planner
that re-ranks every query from fresh statistics).  A static engine
(feedback disabled) keeps the stale single-probe plan and scans the
bloated bucket forever.

Run with:  python benchmarks/bench_adaptive.py          (10^4 base records)
      or:  python benchmarks/bench_adaptive.py --quick  (CI smoke, 2x10^3)
      or:  pytest benchmarks/bench_adaptive.py -s

Answer parity (adaptive vs. static, every probe) and drift firing always
gate; the 20% wall-clock gate applies in full mode (shared CI runners
make timing thresholds flaky, so --quick keeps it advisory unless
BENCH_ASSERT_TIMING=1).
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.api.dsl import Q
from repro.core.pass_store import PassStore
from repro.core.provenance import ProvenanceRecord
from repro.core.tupleset import TupleSet
from repro.query.planner import QueryPlanner

FULL_SIZE = 10_000
QUICK_SIZE = 2_000
#: flood this fraction of the base size into one city (under the 4x
#: staleness factor, so only the feedback loop can notice the shift)
FLOOD_FACTOR = 0.8
CITIES = 50
HOT_CITY = "city-007"
#: probes after the shift; drift needs 4 misestimating cache hits, so
#: this leaves a long steady-state tail to time
SHIFT_PROBES = 24
#: trailing probes used for the steady-state timing comparison
STEADY_TAIL = 12
RECOVERY_HEADROOM = 1.2


def _build_store(base: int, flood: int) -> PassStore:
    """``base`` records spread evenly over cities, then ``flood`` more
    all in HOT_CITY -- the mid-run distribution shift, pre-applied for
    engines built after the shift."""
    store = PassStore()
    _ingest_uniform(store, base)
    _ingest_flood(store, base, flood)
    return store


def _ingest_uniform(store: PassStore, base: int) -> None:
    sets = []
    for index in range(base):
        record = ProvenanceRecord(
            {"domain": "traffic", "city": f"city-{index % CITIES:03d}", "sequence": index}
        )
        sets.append(TupleSet([], record))
        if len(sets) >= 2000:
            store.ingest_many(sets)
            sets = []
    if sets:
        store.ingest_many(sets)


def _ingest_flood(store: PassStore, base: int, flood: int) -> None:
    sets = []
    for index in range(base, base + flood):
        record = ProvenanceRecord(
            {"domain": "traffic", "city": HOT_CITY, "sequence": index}
        )
        sets.append(TupleSet([], record))
        if len(sets) >= 2000:
            store.ingest_many(sets)
            sets = []
    if sets:
        store.ingest_many(sets)


def _warm_predicate(base: int, flood: int):
    """HOT_CITY with a range spanning everything: the range conjunct is
    unselective, so the planner caches the single equality probe."""
    return (Q.attr("city") == HOT_CITY) & Q.attr("sequence").between(
        0, (base + flood) * 10
    )


def _shift_predicate(base: int, probe: int):
    """Same shape, narrow sliding range over the *original* region,
    where HOT_CITY holds ~2% of rows: the cached equality probe now
    scans the flooded bucket to find a handful of matches."""
    width = max(10, base // 100)
    low = (base // 10 + probe * width) % (base - width)
    return (Q.attr("city") == HOT_CITY) & Q.attr("sequence").between(low, low + width)


def _timed_query(store: PassStore, predicate):
    start = time.perf_counter()
    pairs, explain = store.query_explain(predicate)
    return (time.perf_counter() - start) * 1e3, pairs, explain


def _emit_bench_json(area: str, payload: dict) -> None:
    """Persist headline numbers via the shared conftest helper (by path,
    so it works as a script and under pytest alike)."""
    import importlib.util
    from pathlib import Path

    name = "repro_bench_results"
    module = sys.modules.get(name)
    if module is None:
        spec = importlib.util.spec_from_file_location(
            name, Path(__file__).resolve().with_name("conftest.py")
        )
        module = importlib.util.module_from_spec(spec)
        sys.modules[name] = module
        spec.loader.exec_module(module)
    module.write_bench_json(area, payload)


def run_benchmark(base: int, assert_timing: bool) -> int:
    flood = int(base * FLOOD_FACTOR)
    failures = 0

    # Three engines over identical data.  The adaptive store lives
    # through the shift (warm -> flood -> probes); static and optimal
    # are built post-shift, then static warms its plan cache on the
    # pre-shift query so it carries the same stale selection.
    adaptive = PassStore()
    _ingest_uniform(adaptive, base)
    static = _build_store(base, flood)
    static.feedback.enabled = False
    optimal = _build_store(base, flood)
    optimal.feedback.enabled = False

    warm = _warm_predicate(base, flood)
    for _ in range(4):
        adaptive.query_explain(warm)
        static.query_explain(warm)
    _ingest_flood(adaptive, base, flood)

    print(f"\n[adaptive recovery] {base} base + {flood} flooded into {HOT_CITY}")
    print(f"  {'probe':>5} {'adaptive ms':>12} {'static ms':>10} {'optimal ms':>11}  note")
    adaptive_ms, static_ms, optimal_ms = [], [], []
    adapted_at = None
    adapted_reason = None
    for probe in range(SHIFT_PROBES):
        predicate = _shift_predicate(base, probe)
        a_ms, a_pairs, a_explain = _timed_query(adaptive, predicate)
        s_ms, s_pairs, _ = _timed_query(static, predicate)
        # Statically optimal: fresh ranking every query, no feedback.
        optimal.planner = QueryPlanner(optimal)
        o_ms, o_pairs, _ = _timed_query(optimal, predicate)
        adaptive_ms.append(a_ms)
        static_ms.append(s_ms)
        optimal_ms.append(o_ms)
        note = ""
        if a_explain.adapted and adapted_at is None:
            adapted_at = probe
            adapted_reason = a_explain.adapted
            note = a_explain.adapted
        print(f"  {probe:>5} {a_ms:>12.3f} {s_ms:>10.3f} {o_ms:>11.3f}  {note}")
        # Answers must be identical across engines on every probe: the
        # feedback loop may only change *how* candidates are generated.
        digests = {p.digest for p, _ in a_pairs}
        if digests != {p.digest for p, _ in s_pairs} or digests != {
            p.digest for p, _ in o_pairs
        }:
            print(f"  PARITY FAILURE on probe {probe}: engines disagree")
            failures += 1

    if adapted_at is None:
        print("  DRIFT FAILURE: the adaptive engine never re-ranked the shape")
        failures += 1

    tail = slice(-STEADY_TAIL, None)
    steady_adaptive = sum(adaptive_ms[tail]) / STEADY_TAIL
    steady_static = sum(static_ms[tail]) / STEADY_TAIL
    steady_optimal = sum(optimal_ms[tail]) / STEADY_TAIL
    ratio = steady_adaptive / steady_optimal if steady_optimal > 0 else float("inf")
    print(
        f"\n  steady state: adaptive {steady_adaptive:.3f} ms,"
        f" optimal {steady_optimal:.3f} ms, stale static {steady_static:.3f} ms"
        f" (adaptive/optimal = {ratio:.2f}x, gate {RECOVERY_HEADROOM}x)"
    )
    if assert_timing and ratio > RECOVERY_HEADROOM:
        print(
            f"  RECOVERY FAILURE: {ratio:.2f}x > allowed {RECOVERY_HEADROOM}x"
            " of statically-optimal latency"
        )
        failures += 1

    if base != FULL_SIZE:
        # The headline ratio is only comparable at the canonical size;
        # a --quick / --size run must not clobber the committed artifact
        # (and would spuriously trip the conftest regression warning).
        print(f"  (artifact not written: {base} != canonical {FULL_SIZE} records)")
        return failures
    _emit_bench_json(
        "adaptive",
        {
            "tuple_sets": base,
            "flooded": flood,
            "recovery": {
                "queries_to_adapt": adapted_at,
                "reason": adapted_reason,
            },
            "steady_state_ms": {
                "adaptive": round(steady_adaptive, 3),
                "optimal": round(steady_optimal, 3),
                "static": round(steady_static, 3),
            },
            "feedback": adaptive.feedback.snapshot(),
            "gates": {
                "recovery_headroom": RECOVERY_HEADROOM,
                "timing_asserted": assert_timing,
                "failures": failures,
            },
            "headline": {
                "metric": "steady_state_vs_optimal_ratio",
                "value": round(ratio, 3),
                "higher_is_better": False,
            },
        },
    )
    return failures


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_adaptive_recovery_quick():
    """CI smoke: parity + drift re-rank must fire; timing advisory."""
    assert_timing = os.environ.get("BENCH_ASSERT_TIMING", "0") != "0"
    assert run_benchmark(QUICK_SIZE, assert_timing) == 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help=f"CI smoke size ({QUICK_SIZE} records)"
    )
    parser.add_argument("--size", type=int, default=None, help="override the record count")
    args = parser.parse_args(argv)
    base = args.size if args.size is not None else (QUICK_SIZE if args.quick else FULL_SIZE)
    # Parity and drift always gate; wall-clock gates outside --quick
    # (or when BENCH_ASSERT_TIMING=1 forces it).
    assert_timing = not args.quick or os.environ.get("BENCH_ASSERT_TIMING", "0") != "0"
    failures = run_benchmark(base, assert_timing)
    if failures:
        print(f"\n{failures} failure(s)")
        return 1
    print("\nok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
