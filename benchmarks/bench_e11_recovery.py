"""Crash recovery of provenance metadata (Section IV reliability criterion).

Regenerates experiment E11 (see DESIGN.md section 3 and EXPERIMENTS.md).
Run with:  pytest benchmarks/bench_e11_recovery.py --benchmark-only
"""

from repro.eval.experiments_distributed import run_e11


def test_e11(run_experiment_benchmark):
    result = run_experiment_benchmark(run_e11)
    assert result.rows
    assert all(row["consistent"] for row in result.row_dicts())
