"""DHTs: update fan-out, updater scaling and placement blindness (Section IV-C).

Regenerates experiment E9 (see DESIGN.md section 3 and EXPERIMENTS.md).
Run with:  pytest benchmarks/bench_e9_dht.py --benchmark-only
"""

from repro.eval.experiments_distributed import run_e9


def test_e9(run_experiment_benchmark):
    result = run_experiment_benchmark(run_e9)
    assert result.rows
    rows = result.row_dicts()
    dht_km = next(r["value"] for r in rows if r["measure"].startswith("placement") and r["setting"] == "dht")
    locale_km = next(r["value"] for r in rows if r["measure"].startswith("placement") and r["setting"] == "locale-aware-pass")
    assert dht_km > locale_km
