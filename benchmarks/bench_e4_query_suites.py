"""The Section III query suites (versioning, science, EMT) on a local PASS.

Regenerates experiment E4 (see DESIGN.md section 3 and EXPERIMENTS.md).
Run with:  pytest benchmarks/bench_e4_query_suites.py --benchmark-only
"""

from repro.eval.experiments_core import run_e4


def test_e4(run_experiment_benchmark):
    result = run_experiment_benchmark(run_e4)
    assert result.rows
    suites = {row["suite"] for row in result.row_dicts()}
    assert suites == {"versioning", "science", "sensor/EMT"}
