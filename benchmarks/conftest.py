"""Shared fixtures and helpers for the benchmark suite.

Each ``bench_eN_*.py`` file regenerates one experiment table from
DESIGN.md / EXPERIMENTS.md.  The ``run_experiment_benchmark`` fixture
times the experiment once (they are macro-benchmarks, not
micro-benchmarks), writes a machine-readable result under
``benchmarks/results/`` and checks the claim-level assertions passed in
by the caller.

:func:`write_bench_json` is the one write path for benchmark artifacts:
every bench -- experiment tables and the subsystem benches
(``bench_stream``, ``bench_lineage``, ``bench_server``, ...) -- persists
its numbers as ``results/BENCH_<area>.json`` so the perf trajectory is
diffable across PRs instead of living in scrollback.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
from pathlib import Path

import pytest

from repro.eval.report import format_experiment

RESULTS_DIR = Path(__file__).parent / "results"


def _git_sha() -> str:
    """The short commit SHA of the benched tree, or "unknown" outside git."""
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=5,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def host_environment() -> dict:
    """The host stamp embedded in every benchmark artifact.

    Enough to tell a code regression apart from an interpreter, OS or
    hardware change when diffing ``BENCH_*.json`` across PRs.
    """
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "git_sha": _git_sha(),
    }


def write_bench_json(area: str, payload: dict) -> Path:
    """Persist one benchmark's numbers as ``results/BENCH_<area>.json``.

    ``payload`` should carry the bench's headline metrics (throughput,
    p50/p95/p99, gate ratios); the :func:`host_environment` stamp is
    added so a regression can be told apart from a host change.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    document = dict(payload)
    document.setdefault("area", area)
    document.setdefault("environment", host_environment())
    path = RESULTS_DIR / f"BENCH_{area}.json"
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def percentiles(samples, points=(50.0, 95.0, 99.0)) -> dict:
    """``{"p50": ..., "p95": ..., "p99": ...}`` by nearest-rank (no numpy)."""
    if not samples:
        return {f"p{point:g}": None for point in points}
    ordered = sorted(samples)
    facts = {}
    for point in points:
        rank = max(0, min(len(ordered) - 1, round(point / 100.0 * len(ordered)) - 1))
        facts[f"p{point:g}"] = ordered[rank]
    return facts


@pytest.fixture
def run_experiment_benchmark(benchmark):
    """Run an experiment function once under pytest-benchmark and save its result."""

    def runner(experiment_fn, *args, **kwargs):
        result = benchmark.pedantic(
            experiment_fn, args=args, kwargs=kwargs, rounds=1, iterations=1
        )
        table = format_experiment(result)
        write_bench_json(
            result.experiment_id,
            {
                "experiment": result.experiment_id,
                "title": result.title,
                "table": table.splitlines(),
            },
        )
        print()
        print(table)
        return result

    return runner
