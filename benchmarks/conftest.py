"""Shared fixtures and helpers for the benchmark suite.

Each ``bench_eN_*.py`` file regenerates one experiment table from
DESIGN.md / EXPERIMENTS.md.  The ``run_experiment_benchmark`` fixture
times the experiment once (they are macro-benchmarks, not
micro-benchmarks), writes a machine-readable result under
``benchmarks/results/`` and checks the claim-level assertions passed in
by the caller.

:func:`write_bench_json` is the one write path for benchmark artifacts:
every bench -- experiment tables and the subsystem benches
(``bench_stream``, ``bench_lineage``, ``bench_server``, ...) -- persists
its numbers as ``results/BENCH_<area>.json`` so the perf trajectory is
diffable across PRs instead of living in scrollback.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
from pathlib import Path

import pytest

from repro.eval.report import format_experiment

RESULTS_DIR = Path(__file__).parent / "results"


def _git_sha() -> str:
    """The short commit SHA of the benched tree, or "unknown" outside git."""
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=5,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def host_environment() -> dict:
    """The host stamp embedded in every benchmark artifact.

    Enough to tell a code regression apart from an interpreter, OS or
    hardware change when diffing ``BENCH_*.json`` across PRs.
    """
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "git_sha": _git_sha(),
    }


#: Warn when a bench's committed headline metric moves this much in the
#: wrong direction -- advisory, because timing on shared machines is
#: noisy; the point is to make the regression visible in the run output
#: before the new artifact silently overwrites the old number.
_HEADLINE_REGRESSION_FACTOR = 0.25


def _check_headline_regression(area: str, path: Path, document: dict) -> None:
    """Compare the new headline metric against the committed artifact."""
    new = document.get("headline")
    if not isinstance(new, dict) or not path.exists():
        return
    try:
        old = json.loads(path.read_text(encoding="utf-8")).get("headline")
    except (OSError, json.JSONDecodeError):
        return
    if not isinstance(old, dict) or old.get("metric") != new.get("metric"):
        return
    try:
        old_value, new_value = float(old["value"]), float(new["value"])
    except (KeyError, TypeError, ValueError):
        return
    if old_value <= 0:
        return
    higher_is_better = bool(new.get("higher_is_better"))
    change = (new_value - old_value) / old_value
    regressed = (
        change < -_HEADLINE_REGRESSION_FACTOR
        if higher_is_better
        else change > _HEADLINE_REGRESSION_FACTOR
    )
    if regressed:
        print(
            f"\nWARNING: BENCH_{area}.json headline {new['metric']!r} regressed"
            f" {abs(change) * 100.0:.0f}% vs the committed artifact"
            f" ({old_value:g} -> {new_value:g}); code regression or host change?",
            file=sys.stderr,
        )


def write_bench_json(area: str, payload: dict) -> Path:
    """Persist one benchmark's numbers as ``results/BENCH_<area>.json``.

    ``payload`` should carry the bench's headline metrics (throughput,
    p50/p95/p99, gate ratios); the :func:`host_environment` stamp is
    added so a regression can be told apart from a host change.  A
    payload with a ``headline`` block (``{"metric", "value",
    "higher_is_better"}``) is first diffed against the committed
    artifact, warning when the metric moved >25% the wrong way.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    document = dict(payload)
    document.setdefault("area", area)
    document.setdefault("environment", host_environment())
    path = RESULTS_DIR / f"BENCH_{area}.json"
    _check_headline_regression(area, path, document)
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def percentiles(samples, points=(50.0, 95.0, 99.0)) -> dict:
    """``{"p50": ..., "p95": ..., "p99": ...}`` by nearest-rank (no numpy)."""
    if not samples:
        return {f"p{point:g}": None for point in points}
    ordered = sorted(samples)
    facts = {}
    for point in points:
        rank = max(0, min(len(ordered) - 1, round(point / 100.0 * len(ordered)) - 1))
        facts[f"p{point:g}"] = ordered[rank]
    return facts


@pytest.fixture
def run_experiment_benchmark(benchmark):
    """Run an experiment function once under pytest-benchmark and save its result."""

    def runner(experiment_fn, *args, **kwargs):
        result = benchmark.pedantic(
            experiment_fn, args=args, kwargs=kwargs, rounds=1, iterations=1
        )
        table = format_experiment(result)
        write_bench_json(
            result.experiment_id,
            {
                "experiment": result.experiment_id,
                "title": result.title,
                "table": table.splitlines(),
            },
        )
        print()
        print(table)
        return result

    return runner
