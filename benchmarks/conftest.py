"""Shared fixtures for the benchmark suite.

Each ``bench_eN_*.py`` file regenerates one experiment table from
DESIGN.md / EXPERIMENTS.md.  The ``run_experiment_benchmark`` fixture
times the experiment once (they are macro-benchmarks, not
micro-benchmarks), writes the regenerated table under
``benchmarks/results/`` and checks the claim-level assertions passed in
by the caller.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.eval.report import format_experiment

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def run_experiment_benchmark(benchmark):
    """Run an experiment function once under pytest-benchmark and save its table."""

    def runner(experiment_fn, *args, **kwargs):
        result = benchmark.pedantic(
            experiment_fn, args=args, kwargs=kwargs, rounds=1, iterations=1
        )
        RESULTS_DIR.mkdir(exist_ok=True)
        table = format_experiment(result)
        (RESULTS_DIR / f"{result.experiment_id}.txt").write_text(table + "\n", encoding="utf-8")
        print()
        print(table)
        return result

    return runner
