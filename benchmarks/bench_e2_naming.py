"""Naming: conventional filenames vs structured provenance names (Section II-A).

Regenerates experiment E2 (see DESIGN.md section 3 and EXPERIMENTS.md).
Run with:  pytest benchmarks/bench_e2_naming.py --benchmark-only
"""

from repro.eval.experiments_core import run_e2


def test_e2(run_experiment_benchmark):
    result = run_experiment_benchmark(run_e2)
    assert result.rows
    filename_rows = [row for row in result.row_dicts() if row["scheme"] == "filename"]
    assert any(row["recall"] == 0.0 for row in filename_rows)
    provenance_rows = [row for row in result.row_dicts() if row["scheme"] == "provenance"]
    assert all(row["recall"] == 1.0 for row in provenance_rows)
