"""The four PASS properties under a removal storm (Section V).

Regenerates experiment E13 (see DESIGN.md section 3 and EXPERIMENTS.md).
Run with:  pytest benchmarks/bench_e13_pass_properties.py --benchmark-only
"""

from repro.eval.experiments_core import run_e13


def test_e13(run_experiment_benchmark):
    result = run_experiment_benchmark(run_e13)
    assert result.rows
    assert all(row["violations"] == 0 for row in result.row_dicts())
