"""Soft-state Grid index: refresh interval vs precision/recall (Section IV-B).

Regenerates experiment E7 (see DESIGN.md section 3 and EXPERIMENTS.md).
Run with:  pytest benchmarks/bench_e7_softstate.py --benchmark-only
"""

from repro.eval.experiments_distributed import run_e7


def test_e7(run_experiment_benchmark):
    result = run_experiment_benchmark(run_e7)
    assert result.rows
    recalls = result.column("recall")
    assert recalls[0] >= recalls[-1]
    assert all(row["closure_supported"] is False for row in result.row_dicts())
