"""Transitive-closure strategies vs derivation depth (Section II-B).

Regenerates experiment E3 (see DESIGN.md section 3 and EXPERIMENTS.md).
Run with:  pytest benchmarks/bench_e3_closure.py --benchmark-only
"""

from repro.eval.experiments_core import run_e3


def test_e3(run_experiment_benchmark):
    result = run_experiment_benchmark(run_e3)
    assert result.rows
    rows = result.row_dicts()
    deepest = max(row["depth"] for row in rows)
    naive = next(r for r in rows if r["depth"] == deepest and r["strategy"] == "naive")
    labelled = next(r for r in rows if r["depth"] == deepest and r["strategy"] == "labelled")
    assert labelled["node_visits"] < naive["node_visits"]
