"""Benchmark: dispatch-index subscription matching vs. naive evaluation.

The acceptance claim of the ``repro.stream`` subsystem: with ~1,000
standing queries registered, matching one ingested record through the
attribute-keyed dispatch index costs O(candidate subscriptions) -- not
O(all subscriptions) -- making ingest-path dispatch >= 10x faster than
evaluating every predicate per record, while delivering *identical*
events (the index only prunes; the full predicate always runs on the
candidates).

Run with:  python benchmarks/bench_stream.py          (1,000 subs, 20,000 records)
      or:  python benchmarks/bench_stream.py --quick  (CI smoke, 400 subs, 2,000 records)
      or:  pytest benchmarks/bench_stream.py -s

Quick mode gates CI on the deterministic facts -- event parity between
the two dispatch modes and the candidate-pruning ratio (work actually
avoided) -- and keeps the wall-clock speedup advisory, because shared
runners make timing thresholds flaky; the full mode asserts the 10x
wall-clock claim too.
"""

from __future__ import annotations

import argparse
import os
import random
import sys
import time

from repro.api.dsl import Q
from repro.core.attributes import GeoPoint, Timestamp
from repro.core.provenance import ProvenanceRecord
from repro.stream.engine import StreamEngine

FULL_SUBS, FULL_RECORDS = 1_000, 20_000
QUICK_SUBS, QUICK_RECORDS = 400, 2_000


def _emit_bench_json(area: str, payload: dict) -> None:
    """Persist headline numbers via the shared conftest helper.

    Loaded by path so it works both as a script and under pytest
    (where the name ``conftest`` may already be another directory's).
    """
    import importlib.util
    from pathlib import Path

    name = "repro_bench_results"
    module = sys.modules.get(name)
    if module is None:
        spec = importlib.util.spec_from_file_location(
            name, Path(__file__).resolve().with_name("conftest.py")
        )
        module = importlib.util.module_from_spec(spec)
        sys.modules[name] = module
        spec.loader.exec_module(module)
    module.write_bench_json(area, payload)

_CITIES = [f"city-{i:03d}" for i in range(100)]
_DOMAINS = ["traffic", "weather", "medical", "volcano", "structural"]


def _build_subscriptions(engine: StreamEngine, count: int, collector) -> None:
    """Standing queries shaped like the paper's consumers.

    96% anchor on an attribute equality (a specific city's congestion
    monitor, one patient's alert, one domain's dashboard); the rest are
    range/geo predicates that only anchor on attribute presence and so
    are evaluated for every record carrying the attribute.  Every
    subscription shares one collector callback so parity checks see
    every delivered event.
    """
    rng = random.Random(20260730)
    for index in range(count):
        roll = rng.random()
        if roll < 0.60:
            predicate = Q.attr("city") == rng.choice(_CITIES)
        elif roll < 0.96:
            predicate = (Q.attr("domain") == rng.choice(_DOMAINS)) & (
                Q.attr("city") == rng.choice(_CITIES)
            )
        elif roll < 0.99:
            threshold = rng.randrange(0, 10_000)
            predicate = Q.attr("sequence").between(threshold, threshold + 50)
        else:
            predicate = Q.near(GeoPoint(45.0, 0.0), rng.uniform(50.0, 200.0))
        engine.subscribe(predicate, callback=collector, name=f"standing-{index}")


def _build_records(count: int):
    rng = random.Random(7)
    records = []
    for index in range(count):
        records.append(
            ProvenanceRecord(
                {
                    "domain": _DOMAINS[index % len(_DOMAINS)],
                    "city": rng.choice(_CITIES),
                    "sequence": index,
                    "window_start": Timestamp(60.0 * index),
                    "window_end": Timestamp(60.0 * index + 59.0),
                    "location": GeoPoint(rng.uniform(30.0, 60.0), rng.uniform(-20.0, 20.0)),
                }
            )
        )
    return [(record.pname(), record) for record in records]


def _drive(engine: StreamEngine, pairs) -> float:
    start = time.perf_counter()
    for pname, record in pairs:
        engine.on_ingest(pname, record)
    return time.perf_counter() - start


def run_benchmark(subs: int, records: int, assert_timing: bool, required_speedup: float) -> int:
    pairs = _build_records(records)
    failures = 0

    naive_events = []
    naive = StreamEngine(use_index=False)
    _build_subscriptions(naive, subs, naive_events.append)
    naive_s = _drive(naive, pairs)

    indexed_events = []
    indexed = StreamEngine(use_index=True)
    _build_subscriptions(indexed, subs, indexed_events.append)
    indexed_s = _drive(indexed, pairs)

    speedup = naive_s / indexed_s if indexed_s > 0 else float("inf")
    checked = indexed.candidates_checked
    pruning = indexed.naive_checks / checked if checked else float("inf")

    print(f"\n[stream dispatch] {subs} standing queries x {records} ingested records")
    print(f"  naive evaluations:    {naive.candidates_checked:>12,}  in {naive_s * 1e3:9.1f} ms")
    print(f"  indexed evaluations:  {checked:>12,}  in {indexed_s * 1e3:9.1f} ms")
    print(f"  candidate pruning:    {pruning:11.1f}x fewer predicate evaluations")
    print(f"  wall-clock speedup:   {speedup:11.1f}x")

    # Parity: both modes must deliver the same events to the same subscriptions.
    naive_keys = sorted((e.subscription_id, e.pname.digest) for e in naive_events)
    indexed_keys = sorted((e.subscription_id, e.pname.digest) for e in indexed_events)
    if naive_keys != indexed_keys:
        print(
            f"  PARITY FAILURE: naive delivered {len(naive_keys)} event(s), "
            f"indexed delivered {len(indexed_keys)}; the sets differ"
        )
        failures += 1
    if not naive_events:
        print("  SETUP FAILURE: the workload produced no matches at all")
        failures += 1

    # The pruning ratio is deterministic (no clocks involved): the index
    # must discard the overwhelming majority of per-record evaluations.
    if pruning < required_speedup:
        print(
            f"  PRUNING FAILURE: {pruning:.1f}x < required {required_speedup}x "
            "fewer evaluations"
        )
        failures += 1
    if assert_timing and speedup < required_speedup:
        print(f"  TIMING FAILURE: {speedup:.1f}x < required {required_speedup}x")
        failures += 1
    _emit_bench_json(
        "stream",
        {
            "subscriptions": subs,
            "records": records,
            "naive_ms": round(naive_s * 1e3, 3),
            "indexed_ms": round(indexed_s * 1e3, 3),
            "wall_clock_speedup": round(speedup, 2),
            "pruning_ratio": round(pruning, 2),
            "events_delivered": len(indexed_events),
            "gates": {"required_speedup": required_speedup, "failures": failures},
        },
    )
    return failures


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_stream_dispatch_quick():
    """CI smoke: event parity + pruning ratio gate; timing advisory."""
    assert_timing = os.environ.get("BENCH_ASSERT_TIMING", "0") != "0"
    assert run_benchmark(QUICK_SUBS, QUICK_RECORDS, assert_timing, required_speedup=10.0) == 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"CI smoke size ({QUICK_SUBS} subscriptions, {QUICK_RECORDS} records)",
    )
    parser.add_argument("--subs", type=int, default=None, help="override the subscription count")
    parser.add_argument("--records", type=int, default=None, help="override the record count")
    args = parser.parse_args(argv)
    subs = args.subs if args.subs is not None else (QUICK_SUBS if args.quick else FULL_SUBS)
    records = (
        args.records if args.records is not None else (QUICK_RECORDS if args.quick else FULL_RECORDS)
    )
    # Parity and pruning always gate; wall-clock gates outside --quick
    # (or when BENCH_ASSERT_TIMING=1 forces it).
    assert_timing = not args.quick or os.environ.get("BENCH_ASSERT_TIMING", "0") != "0"
    failures = run_benchmark(subs, records, assert_timing, required_speedup=10.0)
    if failures:
        print(f"\n{failures} failure(s)")
        return 1
    print("\nok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
