"""Provenance abstraction of tool lineage (Section V).

Regenerates experiment E14 (see DESIGN.md section 3 and EXPERIMENTS.md).
Run with:  pytest benchmarks/bench_e14_abstraction.py --benchmark-only
"""

from repro.eval.experiments_core import run_e14


def test_e14(run_experiment_benchmark):
    result = run_experiment_benchmark(run_e14)
    assert result.rows
    compressions = result.column("compression")
    assert max(compressions) > 1.0
