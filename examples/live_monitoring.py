#!/usr/bin/env python3
"""Live monitoring: standing queries over a streaming sensor workload.

The paper's consumers are *triggers*: a medical alert fires the moment a
worrying reading lands, a congestion dashboard wants per-window
aggregates, an auditor wants to know whenever anything is derived from a
suspect capture.  This example drives one emergency-medical workload
through four standing subscriptions instead of polling queries:

1. an **alert callback** on one patient's tuple sets (delivered
   synchronously, post-commit, as each set is published),
2. a **window aggregation** counting case records per 10-minute window,
3. a **lineage trigger** watching a raw capture for new descendants,
4. the same alert subscription on a **centralized architecture model**,
   where every delivery is charged as a simulated ``notify`` message --
   dissemination cost becomes part of the Section IV comparison.

Run with:  python examples/live_monitoring.py
"""

from repro import Q, WindowSpec, connect
from repro.sensors.workloads import MedicalWorkload


def main() -> None:
    workload = MedicalWorkload(seed=13, patients=4, emts=2)
    raw, derived = workload.all_sets(hours=2.0)
    stream = raw + derived
    print(f"streaming {len(stream)} tuple sets from {workload.describe()['domain']!r}")

    # ------------------------------------------------------------------
    # Local PASS: subscribe first, then let the data stream in.
    # ------------------------------------------------------------------
    client = connect("memory://")

    patient = raw[0].provenance.get("patient")
    alerts = []
    client.subscribe(
        Q.attr("patient") == patient,
        callback=lambda event: alerts.append(event),
        name=f"alert:{patient}",
    )

    caseload = client.subscribe(
        Q.attr("domain") == "medical",
        window=WindowSpec(size_seconds=600.0, aggregate="count"),
        name="caseload-per-10min",
    )

    watched = raw[0]
    audit = client.subscribe_descendants(watched, name="taint-watch")

    client.publish_many(stream)
    client.flush_windows()  # close the trailing partial window

    print(f"[alert]   {len(alerts)} tuple set(s) for patient {patient!r} "
          "delivered the moment they were published")
    windows = caseload.drain()
    busiest = max(windows, key=lambda w: w.count)
    print(f"[windows] {len(windows)} ten-minute windows; busiest held "
          f"{busiest.count} case records "
          f"[{busiest.window_start:.0f}s, {busiest.window_end:.0f}s)")
    descendants = audit.drain()
    print(f"[lineage] {len(descendants)} descendant(s) of the watched capture "
          f"{watched.pname.short} announced incrementally")

    stats = client.stats()["stream"]
    print(f"[engine]  {stats['records_seen']} records dispatched against "
          f"{stats['subscriptions']} standing queries: "
          f"{stats['candidates_checked']} candidate evaluations instead of "
          f"{stats['naive_checks']} naive ones")

    # ------------------------------------------------------------------
    # The same subscription on an architecture model: dissemination as
    # measurable network traffic.
    # ------------------------------------------------------------------
    warehouse = connect("centralized://")
    site = warehouse.topology.site_names[0]
    warehouse.subscribe(Q.attr("patient") == patient, origin=site, name="remote-alert")
    warehouse.publish_many(stream)
    traffic = warehouse.stats()["traffic"]["by_kind"]["notify"]
    print(f"[notify]  centralized target pushed {traffic['messages']} notification(s) "
          f"({traffic['bytes']} bytes) to the consumer at {site!r}")


if __name__ == "__main__":
    main()
