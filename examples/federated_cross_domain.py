#!/usr/bin/env python3
"""Section III-D / IV: communities that federate after the fact.

The traffic and weather communities never agreed on a schema -- one says
``city`` and ``owner``, the other ``region`` and ``agency`` -- yet they
want to query across each other's archives.  The example runs the same
cross-domain question over three architectures (federated database,
soft-state Grid index, locale-aware PASS) and reports answer quality and
cost, echoing the design-space comparison of Section IV.

Run with:  python examples/federated_cross_domain.py
"""

from repro import Q, wrap
from repro.distributed import FederatedDatabase, LocaleAwarePass, SoftStateIndex
from repro.errors import UnsupportedQueryError
from repro.eval import ground_truth_store, precision_recall
from repro.eval.scenario import standard_topology
from repro.sensors.workloads import TrafficWorkload, WeatherWorkload


def main() -> None:
    topology = standard_topology()
    traffic = TrafficWorkload(seed=31, cities=("london", "boston"), stations_per_city=3)
    weather = WeatherWorkload(seed=31, regions=("london", "boston"), stations_per_region=2)
    traffic_sets = sum(traffic.all_sets(hours=2.0), [])
    weather_sets = sum(weather.all_sets(hours=2.0), [])
    everything = traffic_sets + weather_sets
    truth = ground_truth_store(everything)
    print(f"two communities published {len(traffic_sets)} traffic and {len(weather_sets)} weather data sets")

    # The cross-domain question: everything about London, from either community.
    question = (Q.attr("city") == "london") | (Q.attr("region") == "london")
    expected = truth.query(question)
    print(f"ground truth: {len(expected)} data sets concern London across both domains")

    storage_sites = [site.name for site in topology.sites(kind="storage")]
    models = {
        "federated": FederatedDatabase(
            topology,
            site_schemas={
                "london-site": {"city": "municipality"},
                "boston-site": {"window_start": "period_begin"},
            },
            translation_ms=2.0,
        ),
        "soft-state": SoftStateIndex(
            topology,
            zones={"eu": (storage_sites[0], storage_sites[:2]),
                   "us": (storage_sites[2], storage_sites[2:])},
            refresh_interval_seconds=600.0,
        ),
        "locale-aware-pass": LocaleAwarePass(topology),
    }

    # Every architecture behind the same PassClient façade: publish, query
    # and lineage code below is identical for all three.
    clients = {name: wrap(model) for name, model in models.items()}

    lineage_target = traffic_sets[0].pname
    for name, client in clients.items():
        client.publish_many(everything)
        if isinstance(client.model, SoftStateIndex):
            # Query once *before* the periodic refresh to show the staleness,
            # then refresh and query again.
            stale = client.query(question, origin="london-site")
            p, r = precision_recall(stale.records, expected)
            print(f"[{name}] before refresh: recall={r:.2f} (soft state has not heard yet)")
            client.refresh()
        answer = client.query(question, origin="london-site")
        precision, recall = precision_recall(answer.records, expected)
        try:
            closure = client.descendants(lineage_target, origin="london-site")
            closure_text = f"{len(closure)} descendants in {closure.cost.latency_ms:.1f} ms"
        except UnsupportedQueryError:
            closure_text = "refused (no transitive closure)"
        print(f"[{name}] London query: {len(answer)} results, "
              f"precision={precision:.2f} recall={recall:.2f}, "
              f"{answer.cost.latency_ms:.1f} ms, {answer.cost.messages} messages; "
              f"taint query: {closure_text}")

    print("\nThe federation answers correctly but pays translation and fan-out on every "
          "query; the soft-state index is cheap but stale and cannot follow lineage; the "
          "locale-aware PASS answers from the sites that own the data and follows lineage "
          "wherever it leads -- the architecture the paper's research agenda calls for.")


if __name__ == "__main__":
    main()
