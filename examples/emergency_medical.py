#!/usr/bin/env python3
"""Section III-C: the sensor-enabled ambulance team.

EMTs place pulse oximeters and EKGs on casualties at a mass-casualty
incident; the data streams through a triage filter, per-patient
summaries and an automatic diagnostic tool.  The example runs both query
families from the paper (about a patient, and about the system), then
shows the Section V privacy machinery: access-control policies and a
k-anonymous aggregate whose provenance still reaches the raw vitals.

Run with:  python examples/emergency_medical.py
"""

from repro import Q, connect
from repro.core import AttributeEquals
from repro.security import AccessRule, PolicyEngine, Principal, PrivacyAggregator
from repro.sensors.workloads import MedicalWorkload


def main() -> None:
    workload = MedicalWorkload(seed=5, patients=6, emts=3)
    raw, derived = workload.all_sets(hours=0.5)
    client = connect("memory://")
    client.publish_many(raw + derived)
    store = client.store  # the privacy/lineage helpers below use the store directly
    print(f"ingested {len(raw)} raw vitals windows and {len(derived)} derived sets "
          f"for {workload.patients} patients")

    # ------------------------------------------------------------------
    # Queries about an individual patient.
    # ------------------------------------------------------------------
    patient = "patient-000"
    everything = client.query(Q.attr("patient") == patient)
    print(f"[patient] everything we've done for {patient}: {len(everything)} data sets")

    diagnosis = client.query(
        (Q.attr("patient") == patient) & (Q.attr("stage") == "diagnosis")
    ).first()
    destination = client.describe_record(diagnosis).get("suggested_destination")
    print(f"[patient] diagnostic tool suggests: {destination}")
    print(f"[patient] the suggestion traces back to {len(store.raw_sources(diagnosis))} raw vitals windows")

    # ------------------------------------------------------------------
    # Queries about the system.
    # ------------------------------------------------------------------
    emt = workload.emt_for(patient)
    handled = client.query(Q.attr("emt") == emt)
    print(f"[system]  data sets handled by {emt}: {len(handled)}")
    filtered = client.query(Q.agent("abnormal-vitals-filter", kind="program"))
    print(f"[system]  outputs of the triage filter program: {len(filtered)}")

    # ------------------------------------------------------------------
    # Privacy: policies and aggregation (Section V).
    # ------------------------------------------------------------------
    engine = PolicyEngine(
        rules=[
            AccessRule(
                "treating-clinicians",
                applies_to=AttributeEquals("domain", "medical"),
                allowed_roles={"doctor", "emt"},
            ),
            AccessRule(
                "public-health",
                applies_to=AttributeEquals("domain", "medical"),
                allowed_roles={"researcher"},
                aggregate_only=True,
            ),
        ],
        protected_domains={"medical"},
    )
    target = raw[0]
    record = store.get_record(target.pname)
    for who in (Principal("dr-wu", "doctor"), Principal("epidemiologist", "researcher"),
                Principal("reporter", "press")):
        decision = engine.check(who, target.pname, record)
        mode = "aggregate-only" if decision.aggregate_only else ("raw" if decision.allowed else "denied")
        print(f"[policy]  {who.name:15s} ({who.role:10s}) -> {mode}")

    aggregator = PrivacyAggregator(
        group_by=["incident"], identifying_attributes=["patient", "emt"], k=3
    )
    report = aggregator.aggregate(raw)
    aggregate = report.aggregates[0]
    client.publish(aggregate)
    summary = aggregate.readings[0]
    print(f"[privacy] published {report.groups_published} k={aggregator.k} aggregate "
          f"(suppressed {report.suppressed_groups} small groups)")
    print(f"[privacy] population={aggregate.provenance.get('population')}, "
          f"mean heart rate={summary.value('heart_rate_mean'):.1f}")
    print(f"[privacy] aggregate names no patients but its lineage reaches "
          f"{len(client.ancestors(aggregate))} identified inputs (for authorised audit)")
    print(f"[audit]   policy decisions recorded: {len(engine.audit_log())}, denials: {engine.denials()}")


if __name__ == "__main__":
    main()
