#!/usr/bin/env python3
"""Section III-B: experimental data in the sciences.

A volcano-monitoring array produces raw seismo-acoustic windows; event
extraction, calibration and analysis steps derive new data sets; and the
provenance answers the paper's research queries: "find all the raw data
from which this data set was derived", "show me what I need to reproduce
this result", taint analysis when a tool turns out to be buggy, and the
"report it as gcc 3.3.3" abstraction of tool lineage.

Run with:  python examples/scientific_derivation.py
"""

from repro import Q, connect
from repro.core import Agent, ProvenanceRecord
from repro.core.abstraction import AgentAbstractionRule
from repro.pipeline import CalibrationOperator, Pipeline, RollupOperator, TaintAnalysis
from repro.sensors.workloads import VolcanoWorkload


def main() -> None:
    workload = VolcanoWorkload(seed=3, stations=10)
    raw, events = workload.all_sets(hours=6.0)
    client = connect("memory://")
    client.publish_many(raw + events)
    store = client.store  # the pipeline and abstraction machinery run on the store
    print(f"array produced {len(raw)} raw windows; {len(events)} eruption events extracted")

    # An analysis pipeline over the extracted events: calibrate, then roll up
    # into a per-day catalogue entry.
    pipeline = Pipeline(
        [
            CalibrationOperator("geophone-response-correction", quantity="rsam", gain=0.93),
            RollupOperator("daily-catalogue", version="2.0"),
        ],
        store=store,
        fan_in_stages={"daily-catalogue"},
    )
    result = pipeline.run(events)
    catalogue = result.final_outputs()[0]
    print(f"analysis pipeline produced catalogue entry {catalogue.pname}")

    # Q1: find all the raw data from which this data set was derived.
    sources = store.raw_sources(catalogue.pname)
    print(f"[lineage] the catalogue entry derives from {len(sources)} raw windows")

    # Q2: show me what I need to reproduce this result.
    ancestry = client.ancestors(catalogue).pname_set()
    agents = set()
    for pname in ancestry | {catalogue.pname}:
        for agent in store.get_record(pname).agents:
            agents.add(agent.describe())
    print(f"[repro]   reproducing it needs {len(ancestry)} input data sets and the tools: "
          f"{', '.join(sorted(agents))}")

    # Q3: a problem is found with the calibration tool -- what is tainted?
    taint = TaintAnalysis(store)
    tainted = taint.tainted_by_agent("geophone-response-correction", kind="program")
    print(f"[taint]   the buggy calibration taints {len(tainted)} downstream data sets")

    # Q4: abstraction -- report the compiler as 'gcc 3.3.3', not its history.
    toolchain = None
    for revision in range(6):
        attributes = {"kind": "toolchain", "tool": "gcc", "tool_version": f"3.3.{revision}",
                      "domain": "software"}
        toolchain = (ProvenanceRecord(attributes) if toolchain is None
                     else toolchain.derive(attributes))
        store.ingest_record(toolchain)
    analysis_binary = toolchain.derive(
        {"kind": "binary", "name": "catalogue-builder", "domain": "software"},
        agent=Agent("compiler", "gcc", "3.3.3"),
    )
    store.ingest_record(analysis_binary)
    final_result = analysis_binary.derive(
        {"kind": "analysis-result", "domain": "volcanology", "study": "eruption-frequency"},
        agent=Agent("program", "catalogue-builder", "1.0"),
    )
    store.ingest_record(final_result)

    plain = store.report_lineage(final_result.pname())
    store.add_abstraction_rule(AgentAbstractionRule(agent_kind="compiler"))
    abstracted = store.report_lineage(final_result.pname())
    print(f"[abstract] full lineage has {plain.full_size()} entries; with the compiler rule the "
          f"report shows {abstracted.reported_size()} "
          f"(summary: {list(abstracted.summaries.values())})")

    # Cross-check: the instrument's data is still findable by attribute.
    from_array = client.query(Q.attr("volcano") == "reventador")
    print(f"[index]   {len(from_array)} data sets findable by volcano=reventador")


if __name__ == "__main__":
    main()
