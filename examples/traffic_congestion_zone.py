#!/usr/bin/env python3
"""The introduction's scenario: London Congestion Zone traffic data.

The same data serves three audiences:

1. the zone operator, ticketing in near-real time (local attribute and
   time queries against the locale-aware store),
2. planners aggregating over time to study the effect of changing the
   zone size (historical aggregation + derivation lineage),
3. analysts combining London with Boston and with weather data
   (cross-city and cross-domain queries over the distributed archive).

All storage access goes through the PassClient façade, so the local
analysis store and the two distributed architectures are driven by the
same query code.

Run with:  python examples/traffic_congestion_zone.py
"""

from repro import Q, Timestamp, connect, wrap
from repro.distributed import CentralizedWarehouse, LocaleAwarePass
from repro.eval.scenario import standard_topology
from repro.pipeline import MergeOperator, TaintAnalysis
from repro.sensors.workloads import CITY_CENTRES, TrafficWorkload, WeatherWorkload


def main() -> None:
    hours = 4.0
    traffic = TrafficWorkload(seed=21, cities=("london", "boston"), stations_per_city=4)
    weather = WeatherWorkload(seed=21, regions=("london",), stations_per_region=3)
    traffic_raw, traffic_derived = traffic.all_sets(hours=hours)
    weather_raw, weather_derived = weather.all_sets(hours=hours)
    everything = traffic_raw + traffic_derived + weather_raw + weather_derived
    print(f"simulated {hours:.0f}h: {len(traffic_raw)} traffic windows, "
          f"{len(weather_raw)} weather windows, {len(traffic_derived) + len(weather_derived)} derived sets")

    # ------------------------------------------------------------------
    # A single local PASS for the analysis queries.
    # ------------------------------------------------------------------
    client = connect("memory://")
    client.publish_many(everything)
    store = client.store  # lineage helpers below use the store directly

    # (1) The operator: what happened near the zone centre in the last hour?
    recent_near_centre = client.query(
        (Q.attr("domain") == "traffic")
        & Q.attr("location").near(CITY_CENTRES["london"], radius_km=5.0)
        & (Q.attr("window_start") >= Timestamp((hours - 1.0) * 3600.0))
    )
    print(f"[operator]   {len(recent_near_centre)} windows near the zone centre in the last hour")

    # (2) The planners: hourly aggregates across the whole period.
    aggregates = client.query((Q.attr("city") == "london") & (Q.attr("stage") == "aggregated"))
    print(f"[planning]   {len(aggregates)} hourly aggregates available for zone-size analysis")
    sample = aggregates.first()
    print(f"[planning]   one aggregate derives from {len(store.raw_sources(sample))} raw windows "
          f"via {len(client.ancestors(sample))} intermediate data sets")

    # (3) The analysts: join London traffic with London weather.
    join = MergeOperator("traffic-weather-join", carry_attributes=("city", "region"))
    joined = join.apply_many([traffic_derived[0], weather_derived[0]])
    client.publish(joined)
    domains = {store.get_record(p).get("domain") for p in store.raw_sources(joined.pname)}
    print(f"[analysts]   cross-domain join {joined.pname} reaches raw data in domains {sorted(domains)}")

    # A camera firmware bug is discovered: which downstream products are tainted?
    suspect = traffic_raw[0]
    tainted = TaintAnalysis(store).tainted_by_data(suspect.pname)
    print(f"[audit]      a suspect window taints {len(tainted)} of {len(store)} stored data sets")

    # ------------------------------------------------------------------
    # The same workload over two architectures: locale-aware vs centralized.
    # ------------------------------------------------------------------
    topology = standard_topology()
    locale_aware = wrap(LocaleAwarePass(topology))
    centralized = wrap(CentralizedWarehouse(topology, warehouse_site="warehouse"))
    for model_client in (locale_aware, centralized):
        model_client.publish_many(everything)

    london_query = (Q.attr("city") == "london") & (Q.attr("stage") == "aggregated")
    for label, model_client, consumer in (
        ("locale-aware, London consumer", locale_aware, "london-site"),
        ("centralized,  London consumer", centralized, "london-site"),
        ("locale-aware, Tokyo consumer ", locale_aware, "tokyo-site"),
        ("centralized,  Tokyo consumer ", centralized, "tokyo-site"),
    ):
        answer = model_client.query(london_query, origin=consumer)
        print(f"[distributed] {label}: {len(answer)} results in {answer.cost.latency_ms:7.1f} ms "
              f"({answer.cost.messages} messages)")
    print("[distributed] publish WAN bytes:",
          f"locale-aware={locale_aware.model.network.stats.bytes}",
          f"centralized={centralized.model.network.stats.bytes}")


if __name__ == "__main__":
    main()
