#!/usr/bin/env python3
"""Quickstart: a provenance-aware store behind the PassClient façade.

Creates a small traffic sensor deployment, windows its readings into
provenance-named tuple sets, derives an hourly aggregate, and runs the
three query classes the paper cares about -- attribute lookup, time-range
lookup and lineage (transitive closure) -- through ``connect()``.

The point of the façade: swap ``memory://`` below for
``sqlite:///pass.db`` (a durable local store) or ``dht://?sites=32``
(a simulated Chord ring) and the same operations keep working.

Run with:  python examples/quickstart.py
"""

from repro import Q, Timestamp, connect
from repro.pipeline import AggregateOperator
from repro.sensors.workloads import TrafficWorkload


def main() -> None:
    # 1. Simulate one hour of a London congestion-zone deployment.
    workload = TrafficWorkload(seed=7, cities=("london",), stations_per_city=4)
    raw_windows = workload.tuple_sets(hours=1.0)
    print(f"collected {len(raw_windows)} five-minute tuple sets "
          f"({sum(len(ts) for ts in raw_windows)} readings)")

    # 2. Publish them -- batched -- into a local PASS; the provenance
    #    record *is* the name.
    client = connect("memory://")
    client.publish_many(raw_windows)
    first = raw_windows[0]
    print(f"first window is named {first.pname} and carries "
          f"{len(first.provenance.attributes)} provenance attributes")

    # 3. Derive an hourly aggregate; its provenance lists every input window.
    aggregate = AggregateOperator("hourly-aggregator", carry_attributes=("city",)).apply_many(
        raw_windows
    )
    client.publish(aggregate)
    print(f"derived {aggregate.pname} from {len(aggregate.provenance.ancestors)} windows")

    # 4a. Attribute query: everything recorded in London.
    in_london = client.query(Q.attr("city") == "london")
    print(f"attribute query: {len(in_london)} data sets tagged city=london")

    # 4b. Time-range query: the first half hour.
    early = client.query(
        (Q.attr("domain") == "traffic")
        & Q.attr("window_start").between(Timestamp(0.0), Timestamp(1800.0))
    )
    print(f"time-range query: {len(early)} windows started in the first 30 minutes")

    # 4c. Lineage query: which raw data does the aggregate depend on?
    sources = client.query(Q.ancestor_of(aggregate) & Q.raw())
    print(f"lineage query: the aggregate was derived from {len(sources)} raw windows")

    # 5. Remove a raw window's readings -- its provenance must survive (P4).
    #    Data removal is a store-level capability; local clients expose the
    #    underlying PassStore as the escape hatch.
    store = client.store
    store.remove_data(first.pname)
    still_there = (
        len(client.locate(first)) > 0
        and first.pname in client.ancestors(aggregate).pname_set()
    )
    print(f"after deleting its data, the window's provenance survives: {still_there}")
    print(f"store invariants violated: {store.verify_invariants() or 'none'}")


if __name__ == "__main__":
    main()
