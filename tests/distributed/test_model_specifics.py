"""Model-specific behaviour: the weaknesses Section IV attributes to each."""

from __future__ import annotations

import random

import pytest

from repro.core import AttributeEquals, AttributeRange, GeoPoint, Query, Timestamp
from repro.distributed import (
    CentralizedWarehouse,
    DistributedDatabase,
    DistributedHashTable,
    FederatedDatabase,
    HierarchicalNamespace,
    LocaleAwarePass,
    SoftStateIndex,
)
from repro.distributed.federated import _rename_predicate, _rename_record
from repro.errors import ConfigurationError, UnknownEntityError, UnsupportedQueryError
from repro.eval.scenario import origin_site_for, publish_all, standard_topology
from repro.sensors.workloads import TrafficWorkload


@pytest.fixture(scope="module")
def topology():
    return standard_topology()


@pytest.fixture(scope="module")
def traffic():
    workload = TrafficWorkload(seed=51, cities=("london", "boston"), stations_per_city=2)
    raw, derived = workload.all_sets(hours=1.0)
    return raw, derived


class TestCentralized:
    def test_unknown_warehouse_site_rejected(self, topology):
        with pytest.raises(UnknownEntityError):
            CentralizedWarehouse(topology, warehouse_site="nowhere")

    def test_publish_latency_grows_past_capacity(self, topology, traffic):
        raw, derived = traffic
        below = CentralizedWarehouse(topology, "warehouse", max_updates_per_second=1000.0)
        below.set_offered_update_rate(500.0)
        above = CentralizedWarehouse(topology, "warehouse", max_updates_per_second=1000.0)
        above.set_offered_update_rate(4000.0)
        slow = [below.publish(ts, "london-site").latency_ms for ts in raw]
        fast = [above.publish(ts, "london-site").latency_ms for ts in raw]
        assert sum(fast) > sum(slow)
        # And the overload latency keeps growing as the backlog builds.
        assert fast[-1] > fast[0]

    def test_break_links_creates_dangling_locates(self, topology, traffic):
        raw, derived = traffic
        model = CentralizedWarehouse(topology, "warehouse")
        publish_all(model, raw, topology)
        assert model.dangling_fraction() == 0.0
        broken = model.break_links(0.5, rng=random.Random(1))
        assert broken > 0
        dangles = sum(
            1
            for ts in raw
            if "dangling link" in model.locate(ts.pname, "boston-site").notes
        )
        assert dangles == broken

    def test_locate_unknown_pname(self, topology, traffic):
        raw, _ = traffic
        model = CentralizedWarehouse(topology, "warehouse")
        answer = model.locate(raw[0].pname, "boston-site")
        assert "unknown pname" in answer.notes


class TestDistributedDatabase:
    def test_publish_uses_two_phase_commit_fanout(self, topology, traffic):
        raw, derived = traffic
        model = DistributedDatabase(topology)
        raw_cost = model.publish(raw[0], "london-site")
        # Derived sets have ancestors on other partitions -> more participants.
        publish_all(model, raw[1:], topology)
        derived_cost = model.publish(derived[0], "london-site")
        assert raw_cost.messages >= 3
        assert derived_cost.messages >= raw_cost.messages

    def test_partitioning_is_deterministic(self, topology, traffic):
        raw, _ = traffic
        model = DistributedDatabase(topology)
        assert model.partition_for(raw[0].pname) == model.partition_for(raw[0].pname)

    def test_closure_rounds_grow_with_depth(self, topology, traffic):
        raw, derived = traffic
        model = DistributedDatabase(topology)
        publish_all(model, raw + derived, topology)
        shallow = model.ancestors(derived[0].pname, "london-site")
        deep = model.ancestors(derived[-1].pname, "london-site")

        def rounds(result):
            return int(next(n.split(":")[1] for n in result.notes if "rounds" in n))

        assert rounds(deep) >= rounds(shallow) >= 1


class TestFederated:
    def test_schema_translation_helpers(self):
        mapping = {"city": "municipality", "window_start": "period_begin"}
        predicate = AttributeEquals("city", "london") & AttributeRange(
            "window_start", low=Timestamp(0.0)
        )
        renamed = _rename_predicate(predicate, mapping)
        names = renamed.attributes_referenced()
        assert "municipality" in names and "period_begin" in names
        assert "city" not in names

    def test_record_translation(self, traffic):
        raw, _ = traffic
        mapping = {"city": "municipality"}
        renamed = _rename_record(raw[0].provenance, mapping)
        assert renamed.get("municipality") == raw[0].provenance.get("city")
        assert renamed.get("city") is None

    def test_query_pays_translation_overhead(self, topology, traffic):
        raw, derived = traffic
        fast = FederatedDatabase(topology, translation_ms=0.0)
        slow = FederatedDatabase(topology, translation_ms=10.0)
        for model in (fast, slow):
            publish_all(model, raw + derived, topology)
        query = Query(AttributeEquals("city", "london"))
        assert (
            slow.query(query, "london-site").latency_ms
            > fast.query(query, "london-site").latency_ms
        )

    def test_publish_is_local(self, topology, traffic):
        raw, _ = traffic
        model = FederatedDatabase(topology)
        cost = model.publish(raw[0], "london-site")
        assert cost.sites_contacted == ["london-site"]

    def test_schema_for_unknown_site(self, topology):
        model = FederatedDatabase(topology)
        with pytest.raises(UnknownEntityError):
            model.schema_for("nowhere")


class TestSoftState:
    def _zones(self, topology):
        sites = [s.name for s in topology.sites(kind="storage")]
        return {"a": (sites[0], sites[:2]), "b": (sites[2], sites[2:])}

    def test_configuration_validation(self, topology):
        with pytest.raises(ConfigurationError):
            SoftStateIndex(topology, zones=self._zones(topology), refresh_interval_seconds=0.0)
        with pytest.raises(UnknownEntityError):
            SoftStateIndex(topology, zones={"a": ("nowhere", ["london-site"])})

    def test_unrefreshed_publishes_are_invisible(self, topology, traffic):
        raw, _ = traffic
        model = SoftStateIndex(topology, zones=self._zones(topology), refresh_interval_seconds=600.0)
        for tuple_set in raw:
            model.publish(tuple_set, origin_site_for(tuple_set, topology))
        query = Query(AttributeEquals("domain", "traffic"))
        assert model.query(query, "london-site").pnames == []
        assert model.pending_count() == len(raw)
        model.force_refresh()
        assert len(model.query(query, "london-site").pnames) == len(raw)

    def test_advance_time_triggers_refresh(self, topology, traffic):
        raw, _ = traffic
        model = SoftStateIndex(topology, zones=self._zones(topology), refresh_interval_seconds=300.0)
        for tuple_set in raw[:4]:
            model.publish(tuple_set, origin_site_for(tuple_set, topology))
        pushed = model.advance_time(10_000.0)
        assert pushed == 4
        assert model.pending_count() == 0

    def test_removed_data_still_advertised_until_refresh(self, topology, traffic):
        raw, _ = traffic
        model = SoftStateIndex(topology, zones=self._zones(topology), refresh_interval_seconds=300.0)
        for tuple_set in raw:
            model.publish(tuple_set, origin_site_for(tuple_set, topology))
        model.force_refresh()
        victim = raw[0]
        model.remove(victim.pname)
        located = model.locate(victim.pname, "london-site")
        assert any("stale" in note for note in located.notes)

    def test_closure_refused(self, topology, traffic):
        raw, _ = traffic
        model = SoftStateIndex(topology, zones=self._zones(topology))
        with pytest.raises(UnsupportedQueryError):
            model.ancestors(raw[0].pname, "london-site")

    def test_zone_membership(self, topology):
        model = SoftStateIndex(topology, zones=self._zones(topology))
        assert model.zone_of("london-site") in ("a", "b")
        with pytest.raises(UnknownEntityError):
            model.zone_of("warehouse")


class TestHierarchical:
    def test_requires_significance_order(self, topology):
        with pytest.raises(ConfigurationError):
            HierarchicalNamespace(topology, significance_order=[])

    def test_primary_attribute_routes_to_one_server(self, topology, traffic):
        raw, derived = traffic
        model = HierarchicalNamespace(topology, significance_order=["city", "domain"])
        publish_all(model, raw + derived, topology)
        primary = model.query(Query(AttributeEquals("city", "london")), "london-site")
        secondary = model.query(Query(AttributeEquals("domain", "traffic")), "london-site")
        assert len(primary.sites_contacted) == 1
        assert len(secondary.sites_contacted) == len(topology)
        assert any("broadcast" in note for note in secondary.notes)

    def test_paths_follow_significance_order(self, topology, traffic):
        raw, _ = traffic
        model = HierarchicalNamespace(topology, significance_order=["city", "domain"])
        path = model.path_for(raw[0])
        city = raw[0].provenance.get("city")
        assert path.startswith(f"/{city}/traffic/")
        assert path.endswith(raw[0].pname.short)

    def test_same_component_same_server(self, topology):
        model = HierarchicalNamespace(topology, significance_order=["city"])
        assert model.server_for_component("s:london") == model.server_for_component("s:london")

    def test_locate_unknown(self, topology, traffic):
        raw, _ = traffic
        model = HierarchicalNamespace(topology, significance_order=["city"])
        assert "unknown pname" in model.locate(raw[0].pname, "london-site").notes


class TestDHT:
    def test_needs_at_least_two_sites(self):
        from repro.net import Site, Topology

        lonely = Topology()
        lonely.add_site(Site("only", GeoPoint(0.0, 0.0)))
        with pytest.raises(ConfigurationError):
            DistributedHashTable(lonely)

    def test_successor_is_consistent(self, topology):
        model = DistributedHashTable(topology)
        assert model.successor(12345) == model.successor(12345)

    def test_publish_fanout_counts_attribute_entries(self, topology, traffic):
        raw, _ = traffic
        model = DistributedHashTable(topology, indexed_attributes=["domain", "city"])
        assert model.updates_per_publish() == 3
        cost = model.publish(raw[0], "london-site")
        hops = model.route_hops("london-site")
        assert cost.messages == 3 * hops

    def test_query_on_unindexed_attribute_floods(self, topology, traffic):
        raw, derived = traffic
        model = DistributedHashTable(topology, indexed_attributes=["domain"])
        publish_all(model, raw + derived, topology)
        routed = model.query(Query(AttributeEquals("domain", "traffic")), "london-site")
        flooded = model.query(
            Query(AttributeRange("window_start", low=Timestamp(0.0), high=Timestamp(600.0))),
            "london-site",
        )
        assert any("flooded" in note for note in flooded.notes)
        assert not any("flooded" in note for note in routed.notes)

    def test_placement_ignores_locality(self, topology, traffic):
        raw, _ = traffic
        model = DistributedHashTable(topology)
        publish_all(model, raw, topology)
        distances = [
            model.placement_distance_km(ts.pname, origin_site_for(ts, topology)) for ts in raw
        ]
        assert max(distances) > 1000.0

    def test_updater_scaling_math(self, topology):
        model = DistributedHashTable(topology, per_node_updates_per_second=50.0)
        capacity = model.ring_update_capacity()
        assert capacity == 50.0 * len(topology.site_names)
        assert model.max_supported_updaters(1.0) == int(capacity / model.updates_per_publish())
        with pytest.raises(ConfigurationError):
            model.max_supported_updaters(0.0)


    def test_hot_key_locates_cache_owner_location(self, topology, traffic):
        """Repeated locates of one digest from one origin cache the
        owner's location there: later locates skip the O(log n) overlay
        routing and go direct (one round trip)."""
        raw, _ = traffic
        model = DistributedHashTable(topology)
        publish_all(model, raw, topology)
        target = raw[0]
        hops = model.route_hops("tokyo-site")
        costs = [model.locate(target.pname, "tokyo-site").messages for _ in range(5)]
        assert costs[:3] == [hops, hops, hops]
        assert costs[3] == 2 and costs[4] == 2
        located = model.locate(target.pname, "tokyo-site")
        assert "hot-key hint: routed directly to owner" in located.notes
        stats = model.hot_key_stats()
        assert stats["hints_placed"] == 1 and stats["hint_hits"] == 3
        # The hint is per-origin: another site still pays full routing.
        assert model.locate(target.pname, "london-site").messages == model.route_hops(
            "london-site"
        )

    def test_unknown_digests_never_earn_hints(self, topology, traffic):
        raw, _ = traffic
        model = DistributedHashTable(topology)
        for _ in range(5):
            assert "unknown pname" in model.locate(raw[0].pname, "london-site").notes
        assert model.hot_key_stats()["hints_placed"] == 0


class TestLocaleAware:
    def test_data_placed_at_nearest_site(self, topology, traffic):
        raw, _ = traffic
        model = LocaleAwarePass(topology)
        publish_all(model, raw, topology)
        for tuple_set in raw:
            origin = origin_site_for(tuple_set, topology)
            assert model.home_of(tuple_set.pname) == origin
            assert model.placement_distance_km(tuple_set.pname, origin) == 0.0

    def test_local_query_stays_local(self, topology, traffic):
        raw, derived = traffic
        model = LocaleAwarePass(topology)
        london_only = [ts for ts in raw + derived if ts.provenance.get("city") == "london"]
        publish_all(model, london_only, topology)
        answer = model.query(Query(AttributeEquals("city", "london")), "london-site")
        assert answer.sites_contacted == ["london-site"]

    def test_query_routed_only_to_catalogued_sites(self, topology, traffic):
        raw, derived = traffic
        model = LocaleAwarePass(topology)
        publish_all(model, raw + derived, topology)
        answer = model.query(Query(AttributeEquals("city", "boston")), "boston-site")
        assert set(answer.sites_contacted).issubset({"london-site", "boston-site"})

    def test_unknown_attribute_query_checks_local_site_only(self, topology, traffic):
        raw, _ = traffic
        model = LocaleAwarePass(topology)
        publish_all(model, raw, topology)
        answer = model.query(Query(AttributeEquals("never_seen", 1)), "tokyo-site")
        assert answer.pnames == []
        assert answer.sites_contacted == ["tokyo-site"]

    def test_home_of_unknown_raises(self, topology, traffic):
        raw, _ = traffic
        model = LocaleAwarePass(topology)
        with pytest.raises(UnknownEntityError):
            model.home_of(raw[0].pname)

    def test_cross_site_lineage_complete(self, topology):
        """Derived data homed at one site still reports ancestors homed at another."""
        from repro.core import Agent, ProvenanceRecord, TupleSet
        from repro.pipeline import MergeOperator

        workload = TrafficWorkload(seed=77, cities=("london", "boston"), stations_per_city=2)
        raw = workload.tuple_sets(hours=0.5)
        london = [ts for ts in raw if ts.provenance.get("city") == "london"]
        boston = [ts for ts in raw if ts.provenance.get("city") == "boston"]
        cross = MergeOperator("cross-city-merge", carry_attributes=("city",)).apply_many(
            [london[0], boston[0]]
        )
        model = LocaleAwarePass(topology)
        publish_all(model, raw + [cross], topology)
        ancestors = model.ancestors(cross.pname, "tokyo-site")
        assert {london[0].pname, boston[0].pname}.issubset(ancestors.pname_set())
        descendants = model.descendants(boston[0].pname, "tokyo-site")
        assert cross.pname in descendants.pname_set()

    def test_hot_key_locates_replicate_metadata_to_origin(self, topology, traffic):
        """Three locates of the same digest from the same remote origin
        cross the hot-key threshold: the home pushes a metadata replica
        and further locates never leave the origin site."""
        raw, _ = traffic
        model = LocaleAwarePass(topology)
        publish_all(model, raw, topology)
        target = raw[0]
        home = model.home_of(target.pname)
        origin = "tokyo-site" if home != "tokyo-site" else "boston-site"
        costs = [model.locate(target.pname, origin).messages for _ in range(5)]
        # Two cold round trips, one round trip + replica push, then local.
        assert costs[0] == 2 and costs[1] == 2 and costs[2] == 3
        assert costs[3] == 1 and costs[4] == 1
        located = model.locate(target.pname, origin)
        assert located.sites_contacted == [origin]
        assert "hot-key replica: answered locally" in located.notes
        stats = model.hot_key_stats()
        assert stats["replicas_placed"] == 1
        assert stats["replica_hits"] == 3
        assert stats["replicas"][target.pname.digest] == [origin]
        assert target.pname in model.store_at(origin)

    def test_one_off_locates_never_replicate(self, topology, traffic):
        raw, _ = traffic
        model = LocaleAwarePass(topology)
        publish_all(model, raw, topology)
        for tuple_set in raw:
            model.locate(tuple_set.pname, "tokyo-site")
        stats = model.hot_key_stats()
        assert stats["replicas_placed"] == 0 and stats["replicas"] == {}
