"""Cross-cutting tests: every architecture model behind the common interface.

Model-specific behaviour (saturation, staleness, routing, placement) has
its own test modules; these tests pin down the contract every model must
satisfy so the evaluation harness can drive them interchangeably.
"""

from __future__ import annotations

import pytest

from repro.core import AttributeEquals, Query
from repro.distributed import SoftStateIndex
from repro.errors import UnsupportedQueryError
from repro.eval.scenario import (
    MODEL_NAMES,
    ground_truth_store,
    origin_site_for,
    publish_all,
)
from repro.sensors.workloads import TrafficWorkload


@pytest.fixture(scope="module")
def workload_sets():
    workload = TrafficWorkload(seed=33, cities=("london", "boston"), stations_per_city=2)
    raw, derived = workload.all_sets(hours=1.0)
    return raw, derived


@pytest.fixture(scope="module")
def truth(workload_sets):
    raw, derived = workload_sets
    return ground_truth_store(raw + derived)


@pytest.fixture(params=MODEL_NAMES)
def published_model(request, topology, all_models, workload_sets):
    model = all_models[request.param]
    raw, derived = workload_sets
    publish_all(model, raw + derived, topology)
    if isinstance(model, SoftStateIndex):
        model.force_refresh()
    return model


class TestCommonContract:
    def test_publish_counts_and_costs(self, published_model, workload_sets):
        raw, derived = workload_sets
        assert published_model.published == len(raw) + len(derived)

    def test_attribute_query_matches_ground_truth(self, published_model, truth, topology):
        query = Query(AttributeEquals("city", "london"))
        answer = published_model.query(query, "london-site")
        expected = set(truth.query(query))
        assert answer.pname_set() == expected
        assert answer.latency_ms >= 0.0
        assert answer.messages >= 1

    def test_unmatched_query_returns_empty(self, published_model):
        query = Query(AttributeEquals("city", "atlantis"))
        assert published_model.query(query, "london-site").pnames == []

    def test_locate_finds_known_data(self, published_model, workload_sets):
        raw, _ = workload_sets
        target = raw[0]
        located = published_model.locate(target.pname, "tokyo-site")
        assert located.sites_contacted, f"{published_model.name} returned no location"

    def test_lineage_matches_ground_truth_or_is_refused(
        self, published_model, workload_sets, truth, topology
    ):
        raw, derived = workload_sets
        target = derived[-1] if derived else raw[0]
        if not published_model.supports_lineage:
            with pytest.raises(UnsupportedQueryError):
                published_model.ancestors(target.pname, "london-site")
            return
        answer = published_model.ancestors(target.pname, "london-site")
        assert answer.pname_set() == truth.ancestors(target.pname)

    def test_descendants_matches_ground_truth_or_is_refused(
        self, published_model, workload_sets, truth
    ):
        raw, derived = workload_sets
        target = raw[0]
        if not published_model.supports_lineage:
            with pytest.raises(UnsupportedQueryError):
                published_model.descendants(target.pname, "london-site")
            return
        answer = published_model.descendants(target.pname, "london-site")
        assert answer.pname_set() == truth.descendants(target.pname)

    def test_traffic_snapshot_and_describe(self, published_model):
        snapshot = published_model.traffic_snapshot()
        assert snapshot["messages"] > 0
        facts = published_model.describe()
        assert facts["name"] == published_model.name
        assert facts["published"] > 0
