"""Tests for OperationResult cost accounting: add_site, merge, publish_batch."""

from __future__ import annotations

from repro.core.provenance import PName
from repro.distributed import CentralizedWarehouse, DistributedDatabase, OperationResult
from repro.eval.scenario import origin_site_for, standard_topology
from repro.sensors.workloads import TrafficWorkload


def _pname(label: str) -> PName:
    return PName(label * 64)


class TestAddSiteAndMerge:
    def test_add_site_deduplicates_preserving_order(self):
        result = OperationResult()
        for site in ("b-site", "a-site", "b-site", "c-site", "a-site"):
            result.add_site(site)
        assert result.sites_contacted == ["b-site", "a-site", "c-site"]

    def test_merge_sums_costs_and_concatenates_answers(self):
        first = OperationResult(
            pnames=[_pname("a")], latency_ms=2.0, messages=3, bytes=100,
            sites_contacted=["x"], notes=["one"],
        )
        second = OperationResult(
            pnames=[_pname("b")], latency_ms=1.5, messages=1, bytes=50,
            sites_contacted=["x", "y"], notes=["two"],
        )
        merged = first.merge(second)
        assert merged is first
        assert merged.pnames == [_pname("a"), _pname("b")]
        assert merged.latency_ms == 3.5
        assert merged.messages == 4
        assert merged.bytes == 150
        assert merged.sites_contacted == ["x", "y"]
        assert merged.notes == ["one", "two"]


class TestPublishBatch:
    def _sets(self):
        workload = TrafficWorkload(seed=9, cities=("london",), stations_per_city=2)
        raw, derived = workload.all_sets(hours=0.5)
        return raw + derived

    def test_default_batch_equals_looped_publishes(self):
        sets = self._sets()
        topology = standard_topology()
        looped_model = DistributedDatabase(topology)
        combined = OperationResult()
        for tuple_set in sets:
            combined.merge(looped_model.publish(tuple_set, "london-site"))
        batched_model = DistributedDatabase(topology)
        batch = batched_model.publish_batch(sets, "london-site")
        assert batch.pnames == combined.pnames
        assert batch.messages == combined.messages
        assert batch.latency_ms == combined.latency_ms

    def test_centralized_batch_single_round_trip(self):
        sets = self._sets()
        topology = standard_topology()
        model = CentralizedWarehouse(topology, warehouse_site="warehouse")
        batch = model.publish_batch(sets, "london-site")
        # One request + one ack for the whole batch.
        assert batch.messages == 2
        assert batch.pname_set() == {ts.pname for ts in sets}
        assert model.published == len(sets)
        # Everything is queryable and locatable afterwards.
        located = model.locate(sets[0].pname, "london-site")
        assert located.sites_contacted[-1] == "london-site"

    def test_centralized_batch_cheaper_than_looped(self):
        sets = self._sets()
        topology = standard_topology()
        looped_model = CentralizedWarehouse(topology, warehouse_site="warehouse")
        looped = OperationResult()
        for tuple_set in sets:
            looped.merge(looped_model.publish(tuple_set, "london-site"))
        batched_model = CentralizedWarehouse(topology, warehouse_site="warehouse")
        batch = batched_model.publish_batch(sets, "london-site")
        assert batch.latency_ms < looped.latency_ms
        assert batch.messages < looped.messages

    def test_empty_batch_is_free(self):
        model = CentralizedWarehouse(standard_topology(), warehouse_site="warehouse")
        batch = model.publish_batch([], "london-site")
        assert batch.pnames == [] and batch.messages == 0 and batch.latency_ms == 0.0
