"""Mid-run partition/heal across every architecture model (one contract each).

A consumer site drops off the network while publishing continues.  Two
contracts are possible, and each model must honour exactly one per
operation:

* the publish path itself crosses the partitioned site (DHT routing, a
  2PC participant, a namespace server hashed there): the publish
  **raises** :class:`~repro.errors.NetworkError` and commits nothing;
* the publish path avoids it: the publish succeeds and only the
  subscriber's notification is **suppressed** (counted, noted, nothing
  delivered).

After a heal, publishing and delivery work again and the suppression
counters stay consistent (exactly the partition-era losses, no more).
"""

from __future__ import annotations

import pytest

from repro.api import Q, wrap
from repro.core import ProvenanceRecord, Timestamp, TupleSet
from repro.errors import NetworkError
from repro.eval.scenario import MODEL_NAMES, build_all_models, standard_topology

SUBSCRIBER = "tokyo-site"
PUBLISHER = "london-site"


def _tuple_set(sequence: int) -> TupleSet:
    record = ProvenanceRecord(
        {
            "domain": "traffic",
            "city": "london",
            "sequence": sequence,
            "window_start": Timestamp(60.0 * sequence),
            "window_end": Timestamp(60.0 * sequence + 59.0),
        }
    )
    return TupleSet([], record)


@pytest.mark.parametrize("model_name", MODEL_NAMES)
class TestMidRunPartitionHeal:
    def test_publish_during_partition_then_heal(self, model_name):
        model = build_all_models(standard_topology())[model_name]
        client = wrap(model)
        delivered = []
        client.subscribe(Q.attr("city") == "london", callback=delivered.append, origin=SUBSCRIBER)

        model.network.partition(SUBSCRIBER)
        try:
            result = model.publish(_tuple_set(0), PUBLISHER)
        except NetworkError:
            # Contract A: the publish path crossed the cut-off site, so
            # nothing committed and nothing was (or needed to be) suppressed.
            publish_blocked = True
            assert model.published == 0
            assert model.notifications_sent == 0
            assert model.notifications_suppressed == 0
            assert delivered == []
        else:
            # Contract B: the publish succeeded; only delivery was lost.
            publish_blocked = False
            assert model.published == 1
            assert delivered == []
            assert model.notifications_sent == 0
            assert model.notifications_suppressed == 1
            assert any("dropped" in note for note in result.notes)

        suppressed_during_partition = model.notifications_suppressed

        model.network.heal(SUBSCRIBER)
        healed = model.publish(_tuple_set(1), PUBLISHER)
        assert healed.pnames, f"{model_name}: publish after heal returned nothing"

        # Delivery is restored...
        assert len(delivered) == 1
        assert delivered[0].record.get("sequence") == 1
        assert model.notifications_sent == 1
        # ...and the counters stay consistent: only the partition-era
        # loss is recorded, nothing retroactive.
        assert model.notifications_suppressed == suppressed_during_partition
        expected_published = 1 if publish_blocked else 2
        assert model.published == expected_published

    def test_subscriber_partition_never_blocks_local_progress(self, model_name):
        """Queries from healthy sites keep working while a consumer is away."""
        model = build_all_models(standard_topology())[model_name]
        wrap(model)  # attaches nothing; just mirrors production wiring
        model.publish(_tuple_set(0), PUBLISHER)
        if hasattr(model, "force_refresh"):
            model.force_refresh()  # soft state: push the zone-index summary
        model.network.partition(SUBSCRIBER)
        try:
            answer = model.query(Q.attr("city") == "london", PUBLISHER)
        except NetworkError:
            # Models whose query plane spans every site (scatter/gather,
            # flooding, ring routing) legitimately fail while a member
            # is down -- but they must recover after the heal.
            pass
        else:
            assert [p.digest for p in answer.pnames]
        model.network.heal(SUBSCRIBER)
        answer = model.query(Q.attr("city") == "london", PUBLISHER)
        assert answer.pnames, f"{model_name}: query after heal found nothing"
