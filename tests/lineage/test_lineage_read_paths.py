"""Every read path serves lineage from the reachability index.

The acceptance bar of the lineage engine rebuild: ``Q.derived_from(x)``
/ ``Q.ancestor_of(x)`` must plan as lineage access paths -- never full
scans -- on the local stores (memory and SQLite) and on every
architecture model that supports transitive closure, with honest
estimated-vs-actual rows in the explain tree; ``client.ancestors`` /
``client.descendants`` must page deterministically like ``query`` does.
"""

from __future__ import annotations

import pytest

from repro.api import Q, connect
from repro.core import ProvenanceRecord, TupleSet
from repro.errors import UnsupportedQueryError

#: every distributed target; soft-state is the paper-mandated refusal
LINEAGE_MODEL_URLS = [
    "centralized://",
    "distributed-db://",
    "federated://",
    "hierarchical://",
    "dht://",
    "locale://",
]


def _tuple_set(i: int, parents=(), city: str = "london") -> TupleSet:
    record = ProvenanceRecord(
        {"domain": "traffic", "city": city, "sequence": i}, ancestors=tuple(parents)
    )
    return TupleSet([], record)


@pytest.fixture
def chainload():
    """A root, a chain of derived sets, and one unrelated record."""
    root = _tuple_set(0)
    chain = [root]
    for i in range(1, 6):
        chain.append(_tuple_set(i, parents=[chain[-1].pname]))
    unrelated = _tuple_set(99, city="boston")
    return chain, unrelated


def _lineage_kinds(explain) -> set:
    kinds = set()

    def walk(node):
        kinds.add(node.path_kind)
        for child in node.children:
            walk(child)

    walk(explain)
    return {kind for kind in kinds if kind.startswith("lineage")}


class TestLocalExplain:
    @pytest.mark.parametrize("url", ["memory://", "memory://?closure=interval"])
    def test_derived_from_plans_as_lineage_probe(self, url, chainload):
        chain, unrelated = chainload
        with connect(url) as client:
            client.publish_many(chain + [unrelated])
            explain = client.explain(Q.find(Q.derived_from(chain[0])))
            assert explain.path_kind == "lineage-descendants"
            assert explain.used_index
            assert explain.actual_rows == len(chain) - 1
            assert explain.estimated_rows == explain.actual_rows  # closure counts exactly
            # Candidates were the closure, not the whole store.
            assert explain.rows_scanned < len(chain) + 1

    def test_ancestor_of_plans_as_lineage_probe(self, chainload):
        chain, unrelated = chainload
        with connect("memory://") as client:
            client.publish_many(chain + [unrelated])
            explain = client.explain(Q.find(Q.ancestor_of(chain[-1])))
            assert explain.path_kind == "lineage-ancestors"
            assert explain.actual_rows == len(chain) - 1

    def test_sqlite_serves_lineage_from_the_index(self, tmp_path, chainload):
        chain, unrelated = chainload
        url = f"sqlite:///{tmp_path}/pass.db?closure=interval"
        with connect(url) as client:
            client.publish_many(chain + [unrelated])
            explain = client.explain(Q.find(Q.derived_from(chain[0])))
            assert explain.path_kind == "lineage-descendants"
            assert explain.actual_rows == len(chain) - 1

    def test_sqlite_reopen_restores_the_persisted_labelling(self, tmp_path, chainload):
        chain, unrelated = chainload
        url = f"sqlite:///{tmp_path}/pass.db?closure=interval"
        with connect(url) as client:
            client.publish_many(chain + [unrelated])
            client.descendants(chain[0])  # force the index build before close()
        with connect(url) as client:
            assert client.store.closure.rebuilds == 0  # snapshot adopted, no re-walk
            taint = client.descendants(chain[0])
            assert taint.total == len(chain) - 1
            assert client.store.closure.rebuilds == 0

    def test_lineage_and_attribute_conjunction_uses_index_intersection(self):
        root = _tuple_set(0)
        sets = [root]
        for i in range(1, 6):
            sets.append(_tuple_set(i, parents=[sets[-1].pname]))
        # Bulk of the store: unrelated records, mostly elsewhere, so the
        # city probe is selective enough to pay for its intersection.
        for i in range(100, 140):
            sets.append(_tuple_set(i, city="london" if i % 4 == 0 else "boston"))
        with connect("memory://") as client:
            client.publish_many(sets)
            explain = client.explain(
                Q.find(Q.derived_from(root) & (Q.attr("city") == "london"))
            )
            assert explain.path_kind == "index-intersection"
            assert "lineage" in explain.path
            assert explain.actual_rows == 5  # the whole chain is london

    def test_residual_semantics_survive_the_exact_probe(self, chainload):
        """limit / order_by / include_self still apply after conjunct removal."""
        chain, unrelated = chainload
        with connect("memory://") as client:
            client.publish_many(chain + [unrelated])
            with_self = client.query(Q.derived_from(chain[0], include_self=True))
            assert with_self.total == len(chain)
            limited = client.query(
                Q.find(Q.derived_from(chain[0])).order_by("sequence").limit(2)
            )
            assert [client.describe_record(p).get("sequence") for p in limited] == [1, 2]

    def test_probe_for_unknown_focus_matches_nothing(self, chainload):
        chain, unrelated = chainload
        ghost = _tuple_set(12345)  # never published
        with connect("memory://") as client:
            client.publish_many(chain)
            assert client.query(Q.derived_from(ghost)).total == 0
            explain = client.explain(Q.find(Q.derived_from(ghost)))
            assert explain.path_kind == "lineage-descendants"
            assert explain.actual_rows == 0


class TestDistributedExplain:
    @pytest.mark.parametrize("url", LINEAGE_MODEL_URLS)
    def test_models_report_a_lineage_access_path(self, url, chainload):
        chain, unrelated = chainload
        with connect(url) as client:
            client.publish_many(chain + [unrelated])
            explain = client.explain(Q.find(Q.derived_from(chain[0])))
            assert explain.path_kind == "distributed"
            assert _lineage_kinds(explain), f"{url} fell back to scans: {explain.format()}"
            assert explain.used_index
            assert explain.actual_rows == len(chain) - 1

    @pytest.mark.parametrize("url", LINEAGE_MODEL_URLS)
    def test_model_answers_match_local_truth(self, url, chainload):
        chain, unrelated = chainload
        question = Q.derived_from(chain[0]) & (Q.attr("city") == "london")
        with connect("memory://") as truth:
            truth.publish_many(chain + [unrelated])
            expected = truth.query(question).pname_set()
        with connect(url) as client:
            client.publish_many(chain + [unrelated])
            assert client.query(question).pname_set() == expected

    def test_soft_state_still_refuses_transitive_closure(self, chainload):
        chain, unrelated = chainload
        with connect("soft-state://") as client:
            client.publish_many(chain + [unrelated])
            with pytest.raises(UnsupportedQueryError):
                client.query(Q.derived_from(chain[0]))

    def test_dht_charges_the_routed_walk(self, chainload):
        """Lineage on the ring costs per-edge routed lookups, visibly."""
        chain, unrelated = chainload
        with connect("dht://") as client:
            client.publish_many(chain + [unrelated])
            plain = client.query(Q.attr("city") == "london")
            lineage = client.query(Q.derived_from(chain[0]))
            assert lineage.pname_set() == {ts.pname for ts in chain[1:]}
            assert lineage.cost.messages > plain.cost.messages


class TestLineagePagination:
    """Satellite: ancestors/descendants behave like query() pagination."""

    @pytest.mark.parametrize("url", ["memory://", "centralized://"])
    def test_deterministic_order_and_paging(self, url, chainload):
        chain, unrelated = chainload
        with connect(url) as client:
            client.publish_many(chain + [unrelated])
            full = client.descendants(chain[0])
            assert full.total == len(chain) - 1
            assert full.records == sorted(full.records, key=lambda p: p.digest)
            page = client.descendants(chain[0], limit=2, offset=1)
            assert page.records == full.records[1:3]
            assert page.total == full.total
            assert page.has_more
            # Same paging contract on the backward closure.
            ancestors_page = client.ancestors(chain[-1], limit=3)
            assert ancestors_page.total == len(chain) - 1
            assert len(ancestors_page) == 3

    def test_repeated_calls_are_stable(self, chainload):
        chain, unrelated = chainload
        with connect("memory://") as client:
            client.publish_many(chain + [unrelated])
            first = client.descendants(chain[0]).records
            for _ in range(3):
                assert client.descendants(chain[0]).records == first


class TestDepthSatellite:
    """Satellite: deep chains no longer blow the recursion limit."""

    def test_depth_is_iterative_on_1500_deep_chains(self):
        from repro.core.graph import ProvenanceGraph

        depth = 1_500  # far beyond the default recursion limit
        names = [ProvenanceRecord({"i": i}).pname() for i in range(depth)]
        graph = ProvenanceGraph()
        graph.add_node(names[0])
        for i in range(1, depth):
            graph.add_node(names[i])
            # Bypass the O(depth) cycle check per edge: build adjacency
            # directly, as a backend rebuild of a known-acyclic graph would.
            graph._parents[names[i].digest].add(names[i - 1].digest)
            graph._children[names[i - 1].digest].add(names[i].digest)
        assert graph.depth(names[-1]) == depth - 1
        histogram = graph.ancestry_depth_distribution()
        assert histogram == {d: 1 for d in range(depth)}


class TestWalIndexBlobs:
    """Satellite: the labelling participates in WAL-based recovery."""

    def test_replay_restores_index_blobs(self, tmp_path):
        from repro.storage.memory import MemoryBackend
        from repro.storage.wal import WriteAheadLog

        wal = WriteAheadLog(tmp_path / "pass.wal")
        wal.log_put_index_blob("closure:interval", b'{"format":1}')
        backend = MemoryBackend()
        report = wal.replay(backend)
        assert report.applied == 1
        assert backend.get_index_blob("closure:interval") == b'{"format":1}'
        # Replaying again is a no-op: the effect is already present.
        assert wal.replay(backend).skipped_duplicate == 1

    def test_torn_blob_entry_is_discarded(self, tmp_path):
        from repro.storage.memory import MemoryBackend
        from repro.storage.wal import WriteAheadLog

        wal = WriteAheadLog(tmp_path / "pass.wal")
        wal.inject_torn_write()
        wal.log_put_index_blob("closure:interval", b"x" * 64)
        backend = MemoryBackend()
        report = wal.replay(backend)
        assert report.applied == 0
        assert report.skipped_corrupt == 1
        assert backend.get_index_blob("closure:interval") is None
