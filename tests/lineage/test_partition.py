"""Tests for the partitioned closure checkpoint (repro.lineage.partition)."""

from __future__ import annotations

import os

import pytest

from repro.core import PassStore, ProvenanceRecord, SensorReading, Timestamp, TupleSet
from repro.lineage.partition import (
    boundary_blob_name,
    restore_partitioned,
    shard_blob_name,
    shard_fingerprints,
)
from repro.storage import make_backend
from repro.storage.sharded import shard_file_name


def _tuple_set(index: int, ancestors=()):
    record = ProvenanceRecord(
        {"seq": index, "window_start": Timestamp(index), "window_end": Timestamp(index + 1)},
        ancestors=tuple(ancestors),
    )
    return TupleSet([SensorReading("s1", Timestamp(index), {"v": float(index)})], record)


def _chain_store(path, shards=4, length=30):
    """A sharded interval store holding one derivation chain."""
    store = PassStore(
        backend=make_backend("sqlite", path=str(path), shards=shards),
        closure="interval",
    )
    pnames = []
    for index in range(length):
        ancestors = [pnames[-1]] if pnames else []
        pnames.append(store.ingest(_tuple_set(index, ancestors)))
    return store, pnames


class TestShardFingerprints:
    def test_xor_of_shard_crcs_is_the_global_crc(self, tmp_path):
        store, _ = _chain_store(tmp_path / "pass.db")
        crcs = shard_fingerprints(store.graph, 4)
        combined = 0
        for crc in crcs:
            combined ^= crc
        assert combined == store.graph.fingerprint()["crc"]
        store.backend.close()

    def test_untouched_shards_keep_their_crc(self, tmp_path):
        store, pnames = _chain_store(tmp_path / "pass.db")
        before = shard_fingerprints(store.graph, 4)
        extra = store.ingest(_tuple_set(999, [pnames[-1]]))
        after = shard_fingerprints(store.graph, 4)
        changed = {i for i in range(4) if before[i] != after[i]}
        # Only the new record's home shard changed (the new edge hangs off
        # the child digest, which is the new record's).
        assert changed == {store.backend.shard_of(extra.digest)}
        store.backend.close()


class TestPersist:
    def test_persist_writes_boundary_and_per_shard_blobs(self, tmp_path):
        store, pnames = _chain_store(tmp_path / "pass.db")
        store.ancestors(pnames[-1])  # force the labelling to build
        assert store.persist_closure_index() is True
        backend = store.backend
        assert backend.get_index_blob(boundary_blob_name("interval")) is not None
        for shard in range(backend.shard_count()):
            assert (
                backend.get_shard_index_blob(shard, shard_blob_name("interval"))
                is not None
            )
        store.backend.close()

    def test_unsharded_store_keeps_the_single_blob_format(self, tmp_path):
        store = PassStore(
            backend=make_backend("sqlite", path=str(tmp_path / "plain.db")),
            closure="interval",
        )
        pname = store.ingest(_tuple_set(0))
        child = store.ingest(_tuple_set(1, [pname]))
        store.ancestors(child)  # force the labelling to build
        assert store.persist_closure_index() is True
        assert store.backend.get_index_blob("closure:interval") is not None
        assert store.backend.get_index_blob(boundary_blob_name("interval")) is None
        store.backend.close()


class TestRestore:
    def test_clean_reopen_adopts_every_shard(self, tmp_path):
        path = tmp_path / "pass.db"
        store, pnames = _chain_store(path)
        expected = store.ancestors(pnames[-1])
        store.persist_closure_index()
        store.backend.close()

        reopened = PassStore(
            backend=make_backend("sqlite", path=str(path), shards=4),
            closure="interval",
        )
        report = reopened._closure_restore_report
        assert report["mode"] == "full"
        assert report["adopted"] == 4 and report["stale"] == []
        assert reopened.ancestors(pnames[-1]) == expected
        reopened.backend.close()

    def test_additions_only_drift_adopts_and_catches_up(self, tmp_path):
        path = tmp_path / "pass.db"
        store, pnames = _chain_store(path)
        expected = store.ancestors(pnames[-1])
        store.persist_closure_index()
        # Post-checkpoint writes dirty only the new records' home shards.
        extra = store.ingest(_tuple_set(500, [pnames[-1]]))
        store.backend.close()

        reopened = PassStore(
            backend=make_backend("sqlite", path=str(path), shards=4),
            closure="interval",
        )
        report = reopened._closure_restore_report
        assert report["mode"] == "partial"
        assert report["stale"] == [reopened.backend.shard_of(extra.digest)]
        assert report["adopted"] == 4 - len(report["stale"])
        # The caught-up labelling answers exactly like a fresh build.
        assert reopened.ancestors(extra) == expected | {pnames[-1]}
        assert reopened.descendants(pnames[0]) == set(pnames[1:]) | {extra}
        reopened.backend.close()

    def test_missing_shard_label_blob_forces_rebuild(self, tmp_path):
        path = tmp_path / "pass.db"
        store, pnames = _chain_store(path)
        expected = store.ancestors(pnames[-1])
        store.persist_closure_index()
        store.backend.delete_shard_index_blob(2, shard_blob_name("interval"))
        store.backend.close()

        reopened = PassStore(
            backend=make_backend("sqlite", path=str(path), shards=4),
            closure="interval",
        )
        report = reopened._closure_restore_report
        assert report["mode"] == "rebuild"
        assert "shard 2" in report["reason"]
        # The lazy rebuild still answers correctly.
        assert reopened.ancestors(pnames[-1]) == expected
        reopened.backend.close()

    def test_record_loss_forces_rebuild(self, tmp_path):
        path = tmp_path / "pass.db"
        store, pnames = _chain_store(path)
        store.ancestors(pnames[-1])  # force the labelling to build
        store.persist_closure_index()
        store.backend.close()
        # Lose one shard's database file entirely: its records are gone,
        # so adopting the old labels would assert reachability through
        # data that no longer exists.
        os.remove(shard_file_name(str(path), 2))

        reopened = PassStore(
            backend=make_backend("sqlite", path=str(path), shards=4),
            closure="interval",
        )
        report = reopened._closure_restore_report
        assert report["mode"] == "rebuild"
        assert "no longer present" in report["reason"]
        reopened.backend.close()

    def test_no_checkpoint_reports_rebuild(self, tmp_path):
        path = tmp_path / "pass.db"
        store, _ = _chain_store(path)
        store.backend.close()  # never persisted

        reopened = PassStore(
            backend=make_backend("sqlite", path=str(path), shards=4),
            closure="interval",
        )
        report = reopened._closure_restore_report
        assert report["mode"] == "rebuild"
        assert report["reason"] == "no boundary index"
        reopened.backend.close()

    def test_restore_partitioned_is_importable_from_the_package(self):
        from repro.lineage import persist_partitioned as pp
        from repro.lineage import restore_partitioned as rp

        assert pp is not None and rp is restore_partitioned


class TestStorageSnapshot:
    def test_snapshot_carries_the_restore_report(self, tmp_path):
        path = tmp_path / "pass.db"
        store, pnames = _chain_store(path)
        store.ancestors(pnames[-1])
        store.persist_closure_index()
        store.backend.close()

        reopened = PassStore(
            backend=make_backend("sqlite", path=str(path), shards=4),
            closure="interval",
        )
        snapshot = reopened.storage_snapshot()
        assert snapshot["kind"] == "sharded"
        assert snapshot["shards"] == 4
        assert snapshot["closure_restore"]["mode"] == "full"
        reopened.backend.close()

    def test_unsharded_snapshot_reports_one_shard(self):
        store = PassStore()
        snapshot = store.storage_snapshot()
        assert snapshot["kind"] == "memory"
        assert snapshot["shards"] == 1
        assert snapshot["closure_restore"]["mode"] == "none"
