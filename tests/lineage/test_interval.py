"""Unit tests for the interval/chain reachability index (repro.lineage)."""

from __future__ import annotations

import random

import pytest

from repro.core import ProvenanceGraph, ProvenanceRecord
from repro.core.closure import make_closure
from repro.errors import UnknownEntityError
from repro.lineage import IntervalClosure
from repro.storage.memory import MemoryBackend


def _pname(label: str):
    return ProvenanceRecord({"label": label}).pname()


def _build(edges):
    closure = make_closure("interval")
    nodes = set()
    for child, parent in edges:
        nodes.add(child)
        nodes.add(parent)
    for node in sorted(nodes, key=lambda p: p.digest):
        closure.add_node(node)
    for child, parent in edges:
        closure.add_edge(child, parent)
    return closure


@pytest.fixture
def diamond():
    """raw -> left/right -> top (a reconvergent diamond)."""
    names = {label: _pname(label) for label in ("raw", "left", "right", "top")}
    edges = [
        (names["left"], names["raw"]),
        (names["right"], names["raw"]),
        (names["top"], names["left"]),
        (names["top"], names["right"]),
    ]
    return names, edges


class TestFactoryAndRegistry:
    def test_registered_as_interval(self):
        assert isinstance(make_closure("interval"), IntervalClosure)

    def test_store_accepts_interval_by_name(self):
        from repro.core.pass_store import PassStore

        assert PassStore(closure="interval").closure.name == "interval"


class TestCorrectness:
    def test_diamond_closure(self, diamond):
        names, edges = diamond
        closure = _build(edges)
        assert closure.ancestors(names["top"]) == {names["raw"], names["left"], names["right"]}
        assert closure.descendants(names["raw"]) == {names["left"], names["right"], names["top"]}
        assert closure.reachable(names["raw"], names["top"])
        assert not closure.reachable(names["top"], names["raw"])
        assert not closure.reachable(names["left"], names["right"])

    def test_self_is_never_its_own_ancestor(self, diamond):
        names, edges = diamond
        closure = _build(edges)
        assert not closure.reachable(names["raw"], names["raw"])
        assert names["raw"] not in closure.ancestors(names["raw"])

    def test_unknown_node_raises(self, diamond):
        _, edges = diamond
        closure = _build(edges)
        with pytest.raises(UnknownEntityError):
            closure.ancestors(_pname("missing"))
        with pytest.raises(UnknownEntityError):
            closure.reachable(_pname("missing"), edges[0][0])

    def test_isolated_node_has_empty_closure(self):
        closure = make_closure("interval")
        lonely = _pname("lonely")
        closure.add_node(lonely)
        assert closure.ancestors(lonely) == set()
        assert closure.descendants(lonely) == set()

    def test_incremental_edges_after_first_query(self, diamond):
        """Queries between insertions exercise the dirty-set merge path."""
        names, edges = diamond
        closure = _build(edges)
        assert closure.descendants(names["raw"])  # forces the initial build
        assert closure.rebuilds == 1
        late = _pname("late")
        closure.add_node(late)
        closure.add_edge(late, names["top"])
        # Small dirty batch: merged incrementally, not rebuilt.
        assert names["raw"] in closure.ancestors(late)
        assert late in closure.descendants(names["raw"])
        assert closure.rebuilds == 1
        assert closure.incremental_merges >= 1

    def test_matches_naive_on_random_dag_with_interleaved_queries(self):
        rng = random.Random(11)
        nodes = [_pname(f"n{i}") for i in range(40)]
        edges = []
        for index in range(1, len(nodes)):
            for parent_index in rng.sample(range(index), k=min(index, 2)):
                edges.append((nodes[index], nodes[parent_index]))
        subject = make_closure("interval")
        reference = make_closure("naive")
        for node in nodes:
            subject.add_node(node)
            reference.add_node(node)
        for count, (child, parent) in enumerate(edges):
            subject.add_edge(child, parent)
            reference.add_edge(child, parent)
            if count % 7 == 0:  # query mid-stream: dirty merges, not rebuilds
                assert subject.ancestors(child) == reference.ancestors(child)
        for node in nodes:
            assert subject.ancestors(node) == reference.ancestors(node)
            assert subject.descendants(node) == reference.descendants(node)

    def test_operations_counter_is_monotone(self, diamond):
        names, edges = diamond
        closure = _build(edges)
        seen = closure.operations
        for _ in range(3):
            closure.ancestors(names["top"])
            closure.descendants(names["raw"])
            closure.reachable(names["raw"], names["top"])
            assert closure.operations >= seen
            seen = closure.operations


class TestEstimates:
    def test_estimates_are_exact(self, diamond):
        names, edges = diamond
        closure = _build(edges)
        for node in names.values():
            assert closure.estimate_ancestors(node) == len(closure.ancestors(node))
            assert closure.estimate_descendants(node) == len(closure.descendants(node))


class TestPersistence:
    def _chain_closure(self, depth=20):
        nodes = [_pname(f"c{i}") for i in range(depth)]
        edges = [(nodes[i + 1], nodes[i]) for i in range(depth - 1)]
        return _build(edges), nodes

    def test_unbuilt_index_has_nothing_to_snapshot(self):
        """No query ever ran -> nothing worth persisting (next open rebuilds lazily)."""
        closure, _ = self._chain_closure()
        assert closure.snapshot(closure.graph.fingerprint()) is None

    def test_snapshot_round_trip(self):
        closure, nodes = self._chain_closure()
        closure.descendants(nodes[0])  # force the labelling to exist
        fingerprint = closure.graph.fingerprint()
        state = closure.snapshot(fingerprint)
        assert state is not None

        twin = IntervalClosure(closure.graph)
        assert twin.restore(state, fingerprint)
        assert twin.rebuilds == 0  # restored, not rebuilt
        assert twin.ancestors(nodes[-1]) == closure.ancestors(nodes[-1])
        assert twin.descendants(nodes[0]) == closure.descendants(nodes[0])
        assert twin.rebuilds == 0

    def test_restore_refuses_stale_fingerprint(self):
        closure, nodes = self._chain_closure()
        closure.descendants(nodes[0])  # force the labelling to exist
        state = closure.snapshot(closure.graph.fingerprint())
        grown = ProvenanceGraph()
        for child, parent in [(nodes[i + 1], nodes[i]) for i in range(len(nodes) - 1)]:
            grown.add_edge(child, parent)
        extra = _pname("extra")
        grown.add_edge(extra, nodes[-1])
        stale = IntervalClosure(grown)
        assert not stale.restore(state, grown.fingerprint())
        # The rebuild fallback still answers correctly.
        assert nodes[0] in stale.ancestors(extra)

    def test_restore_refuses_garbage(self):
        closure, _ = self._chain_closure()
        fingerprint = closure.graph.fingerprint()
        assert not closure.restore({}, fingerprint)
        assert not closure.restore({"format": 999}, fingerprint)
        assert not closure.restore({"format": 1, "strategy": "labelled"}, fingerprint)

    def test_store_persists_and_restores_through_backend(self):
        from repro.core.pass_store import PassStore

        backend = MemoryBackend()
        store = PassStore(backend=backend, closure="interval")
        previous = None
        for i in range(10):
            record = ProvenanceRecord(
                {"label": f"p{i}"}, ancestors=[previous] if previous else []
            )
            previous = store.ingest_record(record)
        assert store.descendants(store.pnames()[0])  # force the build
        assert store.persist_closure_index()

        reopened = PassStore(backend=backend, closure="interval")
        assert reopened.closure.rebuilds == 0  # adopted the snapshot
        assert len(reopened.ancestors(previous)) == 9
        assert reopened.closure.rebuilds == 0

    def test_labelled_strategy_has_nothing_to_persist(self):
        from repro.core.pass_store import PassStore

        store = PassStore(closure="labelled")
        store.ingest_record(ProvenanceRecord({"label": "only"}))
        assert not store.persist_closure_index()
