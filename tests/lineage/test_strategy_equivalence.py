"""Property: every closure strategy agrees with a fresh-BFS oracle.

Hypothesis generates random DAGs *and* random edge-insertion orders
(optionally with queries interleaved mid-insertion, which drives the
interval index through its incremental dirty-set path), then checks all
four strategies -- naive, memoized, labelled, interval -- against an
independent BFS over the final edge list for ancestors, descendants and
pairwise reachability.  The ``operations`` counters must additionally
stay monotone: they are what experiment E3 reports, and a counter that
runs backwards would corrupt every comparison built on it.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Set, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.closure import make_closure
from repro.core.provenance import ProvenanceRecord

STRATEGIES = ("naive", "memoized", "labelled", "interval")

#: a modest pool keeps example graphs readable while still producing
#: chains, diamonds, forests and reconvergence
_MAX_NODES = 12


def _pnames(count: int):
    return [ProvenanceRecord({"label": f"h{i}"}).pname() for i in range(count)]


@st.composite
def dag_insertions(draw):
    """A random DAG as a shuffled edge-insertion sequence plus query points.

    Edges always point child -> parent with ``parent`` earlier in a
    fixed node ordering, so any subset in any order stays acyclic.
    """
    node_count = draw(st.integers(min_value=2, max_value=_MAX_NODES))
    candidates = [
        (child, parent) for child in range(1, node_count) for parent in range(child)
    ]
    edges = draw(
        st.lists(st.sampled_from(candidates), unique=True, max_size=len(candidates))
    )
    order = draw(st.permutations(edges))
    # After which insertions to run a mid-stream query (drives the
    # incremental maintenance path instead of one final bulk build).
    query_points = draw(
        st.sets(st.integers(min_value=0, max_value=max(0, len(order) - 1)), max_size=3)
    )
    return node_count, order, query_points


def _bfs_oracle(
    node_count: int, edges: List[Tuple[int, int]]
) -> Tuple[Dict[int, Set[int]], Dict[int, Set[int]]]:
    """Ancestor and descendant sets by plain BFS over the edge list."""
    parents: Dict[int, Set[int]] = {i: set() for i in range(node_count)}
    children: Dict[int, Set[int]] = {i: set() for i in range(node_count)}
    for child, parent in edges:
        parents[child].add(parent)
        children[parent].add(child)

    def walk(start: int, step: Dict[int, Set[int]]) -> Set[int]:
        seen: Set[int] = set()
        frontier = deque([start])
        while frontier:
            node = frontier.popleft()
            for neighbour in step[node]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        seen.discard(start)
        return seen

    ancestors = {i: walk(i, parents) for i in range(node_count)}
    descendants = {i: walk(i, children) for i in range(node_count)}
    return ancestors, descendants


@settings(deadline=None, max_examples=60)
@given(dag_insertions())
def test_all_strategies_agree_with_bfs_oracle(case):
    node_count, order, query_points = case
    names = _pnames(node_count)
    oracle_ancestors, oracle_descendants = _bfs_oracle(node_count, order)

    for strategy_name in STRATEGIES:
        closure = make_closure(strategy_name)
        for name in names:
            closure.add_node(name)
        operations_seen = closure.operations
        for position, (child, parent) in enumerate(order):
            closure.add_edge(names[child], names[parent])
            if position in query_points:
                # Mid-stream queries must be internally consistent too.
                partial = closure.ancestors(names[child])
                assert names[parent] in partial
                assert closure.operations >= operations_seen
                operations_seen = closure.operations

        for index in range(node_count):
            got_ancestors = closure.ancestors(names[index])
            assert got_ancestors == {names[i] for i in oracle_ancestors[index]}, (
                f"{strategy_name}: ancestors({index}) diverged"
            )
            assert closure.operations >= operations_seen
            operations_seen = closure.operations
            got_descendants = closure.descendants(names[index])
            assert got_descendants == {names[i] for i in oracle_descendants[index]}, (
                f"{strategy_name}: descendants({index}) diverged"
            )
            for other in range(node_count):
                expected = index in oracle_ancestors[other]
                assert closure.reachable(names[index], names[other]) is expected, (
                    f"{strategy_name}: reachable({index}, {other}) diverged"
                )
            assert closure.operations >= operations_seen
            operations_seen = closure.operations
