"""Tests for predicate normalization and plan-cache shape keys."""

from __future__ import annotations

from repro.core.attributes import GeoPoint, Timestamp
from repro.core.query import (
    TRUE,
    And,
    AttributeEquals,
    AttributeIn,
    AttributeRange,
    IsRaw,
    NearLocation,
    Not,
    Or,
    TimeWindowOverlaps,
)
from repro.query import normalize, shape_key


EQ_A = AttributeEquals("city", "london")
EQ_B = AttributeEquals("domain", "traffic")
EQ_C = AttributeEquals("stage", "raw")


class TestNormalize:
    def test_leaves_pass_through(self):
        assert normalize(EQ_A) is EQ_A

    def test_nested_ands_flatten(self):
        nested = And((EQ_A, And((EQ_B, And((EQ_C,))))))
        assert normalize(nested) == And((EQ_A, EQ_B, EQ_C))

    def test_nested_ors_flatten(self):
        nested = Or((EQ_A, Or((EQ_B, EQ_C))))
        assert normalize(nested) == Or((EQ_A, EQ_B, EQ_C))

    def test_duplicates_dropped(self):
        assert normalize(And((EQ_A, EQ_B, EQ_A))) == And((EQ_A, EQ_B))

    def test_single_part_collapses(self):
        assert normalize(And((EQ_A, EQ_A))) == EQ_A

    def test_double_negation_cancels(self):
        assert normalize(Not(Not(EQ_A))) == EQ_A

    def test_de_morgan_not_and(self):
        lowered = normalize(Not(And((EQ_A, EQ_B))))
        assert lowered == Or((Not(EQ_A), Not(EQ_B)))

    def test_de_morgan_not_or(self):
        lowered = normalize(Not(Or((EQ_A, EQ_B))))
        assert lowered == And((Not(EQ_A), Not(EQ_B)))

    def test_true_conjuncts_disappear(self):
        assert normalize(And((TRUE, EQ_A, TRUE))) == EQ_A

    def test_true_branch_trivialises_disjunction(self):
        assert normalize(Or((EQ_A, TRUE))) is TRUE

    def test_all_true_conjunction_is_true(self):
        assert normalize(And((TRUE, TRUE))) is TRUE

    def test_equivalence_on_records(self, sample_record):
        """Normalization never changes what a predicate matches."""
        pname = sample_record.pname()
        cases = [
            Not(Not(AttributeEquals("city", "london"))),
            Not(And((AttributeEquals("city", "london"), IsRaw(False)))),
            Not(Or((AttributeEquals("city", "oslo"), AttributeEquals("domain", "medical")))),
            And((TRUE, Or((AttributeEquals("city", "london"), TRUE)))),
        ]
        for predicate in cases:
            lowered = normalize(predicate)
            assert lowered.matches(pname, sample_record) == predicate.matches(
                pname, sample_record
            )


class TestShapeKey:
    def test_constants_are_stripped(self):
        assert shape_key(AttributeEquals("city", "london")) == shape_key(
            AttributeEquals("city", "boston")
        )

    def test_attribute_names_distinguish(self):
        assert shape_key(AttributeEquals("city", "x")) != shape_key(
            AttributeEquals("domain", "x")
        )

    def test_commutative_children_sorted(self):
        assert shape_key(And((EQ_A, EQ_B))) == shape_key(And((EQ_B, EQ_A)))

    def test_sliding_windows_share_a_shape(self):
        first = TimeWindowOverlaps(Timestamp(0.0), Timestamp(60.0))
        later = TimeWindowOverlaps(Timestamp(3600.0), Timestamp(3660.0))
        assert shape_key(first) == shape_key(later)

    def test_moving_radius_shares_a_shape(self):
        here = NearLocation("location", GeoPoint(51.5, -0.1), 5.0)
        there = NearLocation("location", GeoPoint(42.4, -71.1), 50.0)
        assert shape_key(here) == shape_key(there)

    def test_range_bound_structure_matters(self):
        open_low = AttributeRange("seq", low=1)
        closed = AttributeRange("seq", low=1, high=2)
        assert shape_key(open_low) != shape_key(closed)

    def test_in_arity_matters(self):
        two = AttributeIn("city", ("a", "b"))
        three = AttributeIn("city", ("a", "b", "c"))
        assert shape_key(two) != shape_key(three)
