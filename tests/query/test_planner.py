"""Tests for the cost-based planner, executor accounting and explains."""

from __future__ import annotations

import pytest

from repro.api.client import LocalClient
from repro.api.dsl import Q
from repro.core.attributes import GeoPoint, Timestamp
from repro.core.pass_store import PassStore
from repro.core.provenance import PName, ProvenanceRecord
from repro.core.query import (
    And,
    AttributeEquals,
    AttributeExists,
    AttributeIn,
    AttributeRange,
    DerivedFrom,
    IsRaw,
    NearLocation,
    Not,
    Or,
    Query,
    TimeWindowOverlaps,
)
from repro.core.tupleset import TupleSet
from repro.query import FullScanPath, QueryPlanner


def _populated_store(count: int = 200) -> PassStore:
    """Records over several cities with tiled windows and spread locations."""
    store = PassStore()
    for index in range(count):
        record = ProvenanceRecord(
            {
                "domain": "traffic",
                "city": f"city-{index % 10}",
                "sequence": index,
                "window_start": Timestamp(60.0 * index),
                "window_end": Timestamp(60.0 * index + 59.0),
                "location": GeoPoint(30.0 + (index % 40) * 0.5, (index % 60) * 0.5),
            }
        )
        store.ingest(TupleSet([], record))
    return store


@pytest.fixture
def store() -> PassStore:
    return _populated_store()


class TestPathSelection:
    def test_equality_uses_index(self, store):
        explain = store.explain(AttributeEquals("city", "city-3"))
        assert explain.path_kind == "attr-eq"
        assert explain.used_index

    def test_range_uses_index(self, store):
        explain = store.explain(AttributeRange("sequence", low=10, high=30))
        assert explain.path_kind == "attr-range"
        assert explain.actual_rows == 21

    def test_in_uses_multi_probe(self, store):
        explain = store.explain(AttributeIn("city", ("city-1", "city-2")))
        assert explain.path_kind == "attr-in"
        assert explain.actual_rows == 40

    def test_time_window_uses_temporal_index(self, store):
        explain = store.explain(TimeWindowOverlaps(Timestamp(600.0), Timestamp(900.0)))
        assert explain.path_kind == "temporal-overlap"
        assert explain.rows_scanned < 200

    def test_near_location_uses_spatial_index(self, store):
        explain = store.explain(NearLocation("location", GeoPoint(35.0, 10.0), 80.0))
        assert explain.path_kind == "spatial-radius"
        assert explain.rows_scanned < 200

    def test_near_on_unindexed_attribute_scans(self, store):
        explain = store.explain(NearLocation("not-location", GeoPoint(35.0, 10.0), 80.0))
        assert explain.path_kind == "full-scan"

    def test_negative_radius_matches_nothing_without_raising(self, store):
        # Pre-planner behavior: a degenerate radius scanned and found
        # nothing; the planner must not turn it into an index error.
        pairs, explain = store.query_explain(NearLocation("location", GeoPoint(35.0, 10.0), -5.0))
        assert pairs == []
        assert explain.path_kind == "full-scan"

    def test_exists_on_rare_attribute(self, store):
        rare = ProvenanceRecord({"domain": "traffic", "rare_flag": True})
        store.ingest(TupleSet([], rare))
        explain = store.explain(AttributeExists("rare_flag"))
        assert explain.path_kind == "attr-exists"
        assert explain.actual_rows == 1
        assert explain.rows_scanned == 1

    def test_unsargable_predicate_scans(self, store):
        explain = store.explain(IsRaw(True))
        assert explain.path_kind == "full-scan"
        assert not explain.used_index
        assert explain.rows_scanned == 200

    def test_conjunction_intersects_selective_probes(self, store):
        predicate = And(
            (AttributeEquals("city", "city-3"), AttributeRange("sequence", low=0, high=40))
        )
        explain = store.explain(predicate)
        assert explain.path_kind == "index-intersection"
        # Candidates fetched are the intersection, not either probe alone.
        assert explain.rows_scanned <= 20

    def test_conjunction_with_unsargable_part_still_probes(self, store):
        predicate = And((AttributeEquals("city", "city-3"), IsRaw(True)))
        explain = store.explain(predicate)
        assert explain.used_index
        assert explain.rows_scanned == 20

    def test_sargable_disjunction_unions(self, store):
        predicate = Or(
            (AttributeEquals("city", "city-1"), AttributeEquals("city", "city-2"))
        )
        explain = store.explain(predicate)
        assert explain.path_kind == "index-union"
        assert explain.actual_rows == 40

    def test_disjunction_with_unsargable_branch_scans(self, store):
        predicate = Or((AttributeEquals("city", "city-1"), IsRaw(True)))
        explain = store.explain(predicate)
        assert explain.path_kind == "full-scan"

    def test_lineage_conjunct_rides_the_index(self, store):
        parent = ProvenanceRecord({"domain": "traffic", "stage": "raw-x"})
        child = ProvenanceRecord(
            {"domain": "traffic", "stage": "derived-x", "city": "city-3"},
            ancestors=(parent.pname(),),
        )
        store.ingest(TupleSet([], parent))
        store.ingest(TupleSet([], child))
        predicate = And(
            (AttributeEquals("city", "city-3"), DerivedFrom(parent.pname()))
        )
        pairs, explain = store.query_explain(predicate)
        assert [pname for pname, _ in pairs] == [child.pname()]
        assert explain.used_index

    def test_unselective_equality_falls_back_to_scan(self, store):
        # Every record is domain=traffic; probing buys nothing over scanning.
        explain = store.explain(AttributeEquals("domain", "traffic"))
        assert explain.path_kind == "full-scan"

    def test_restricted_index_is_not_consulted(self):
        store = PassStore(indexed_attributes=["domain"])
        for index in range(10):
            store.ingest(
                TupleSet([], ProvenanceRecord({"domain": f"d{index}", "city": "london"}))
            )
        explain = store.explain(AttributeEquals("city", "london"))
        assert explain.path_kind == "full-scan"
        explain = store.explain(AttributeEquals("domain", "d3"))
        assert explain.path_kind == "attr-eq"


class TestParityOnOptions:
    def test_order_by_and_limit_match_scan(self, store):
        query = Query(
            predicate=AttributeRange("sequence", low=20, high=80),
            order_by="sequence",
            limit=5,
        )
        planned, explain = store.query_explain(query)
        scanned, _ = store.query_explain(query, force_full_scan=True)
        assert planned == scanned
        assert explain.used_index

    def test_exclude_removed_matches_scan(self, store):
        victim = store.query(AttributeEquals("city", "city-5"))[0]
        store.remove_data(victim)
        query = Query(predicate=AttributeEquals("city", "city-5"), include_removed=False)
        planned, _ = store.query_explain(query)
        scanned, _ = store.query_explain(query, force_full_scan=True)
        assert {p for p, _ in planned} == {p for p, _ in scanned}
        assert victim not in {p for p, _ in planned}


class TestPlanCache:
    def test_same_shape_hits_cache(self, store):
        first = store.explain(TimeWindowOverlaps(Timestamp(0.0), Timestamp(300.0)))
        later = store.explain(TimeWindowOverlaps(Timestamp(3000.0), Timestamp(3300.0)))
        assert not first.cache_hit
        assert later.cache_hit
        assert store.planner.cache_snapshot()["hits"] >= 1

    def test_different_shapes_miss(self, store):
        store.explain(AttributeEquals("city", "city-1"))
        other = store.explain(AttributeRange("sequence", low=1, high=2))
        assert not other.cache_hit

    def test_cached_strategy_rebinds_new_constants(self, store):
        # Prime the cache with one window, hit it with another: the
        # rebound plan must answer the *new* constants correctly.
        store.explain(TimeWindowOverlaps(Timestamp(0.0), Timestamp(59.0)))
        later = TimeWindowOverlaps(Timestamp(6000.0), Timestamp(6059.0))
        pairs, explain = store.query_explain(later)
        assert explain.cache_hit
        assert explain.path_kind == "temporal-overlap"
        scanned, _ = store.query_explain(later, force_full_scan=True)
        assert {p for p, _ in pairs} == {p for p, _ in scanned}
        assert len(pairs) == 1  # the [6000, 6059] tile

    def test_cached_intersection_rebinds(self, store):
        shape_primer = And(
            (AttributeEquals("city", "city-3"), AttributeRange("sequence", low=0, high=40))
        )
        store.explain(shape_primer)
        rebound = And(
            (AttributeEquals("city", "city-7"), AttributeRange("sequence", low=100, high=140))
        )
        pairs, explain = store.query_explain(rebound)
        assert explain.cache_hit
        assert explain.path_kind == "index-intersection"
        scanned, _ = store.query_explain(rebound, force_full_scan=True)
        assert {p for p, _ in pairs} == {p for p, _ in scanned}

    def test_growth_invalidates_cached_shape(self, store):
        store.explain(AttributeEquals("city", "city-1"))
        for index in range(1000, 2200):
            store.ingest(
                TupleSet([], ProvenanceRecord({"domain": "traffic", "sequence": index}))
            )
        refreshed = store.explain(AttributeEquals("city", "city-1"))
        assert not refreshed.cache_hit


class TestAccounting:
    def test_index_probe_counted_once(self, store):
        before = store.stats.index_hits
        store.query(AttributeEquals("city", "city-3"))
        assert store.stats.index_hits == before + 1

    def test_discarded_probes_never_charged(self, store):
        before = store.stats.index_hits
        # Two sargable conjuncts, but only the chosen path's probes run.
        store.query(
            And((AttributeEquals("city", "city-3"), AttributeEquals("domain", "traffic")))
        )
        assert store.stats.index_hits == before + 1

    def test_short_circuited_intersection_charges_executed_probes_only(self, store):
        # city='nowhere' is empty, so the intersection stops after its
        # first (cheapest) probe; the skipped probe must not be charged.
        before = store.stats.index_hits
        pairs, explain = store.query_explain(
            And(
                (AttributeEquals("city", "nowhere"), AttributeRange("sequence", low=0, high=90))
            )
        )
        assert pairs == []
        assert explain.path_kind == "index-intersection"
        assert store.stats.index_hits == before + 1

    def test_records_scanned_counts_candidates(self, store):
        before = store.stats.records_scanned
        explain = store.explain(AttributeEquals("city", "city-3"))
        # explain() executes one query.
        assert store.stats.records_scanned == before + explain.rows_scanned

    def test_full_scan_counter(self, store):
        before = store.stats.full_scans
        store.query(IsRaw(True))
        assert store.stats.full_scans == before + 1

    def test_lookup_attribute_accounting(self, store):
        before_hits = store.stats.index_hits
        before_scanned = store.stats.records_scanned
        hits = store.lookup_attribute("city", "city-7")
        assert store.stats.index_hits == before_hits + 1
        assert store.stats.records_scanned == before_scanned + len(hits)

    def test_query_records_fetches_each_record_once(self, store):
        before = store.backend.stats.gets
        pairs = store.query_records(AttributeEquals("city", "city-4"))
        assert len(pairs) == 20
        # One backend read per candidate, none per returned result.
        assert store.backend.stats.gets - before == 20


class TestExplainSurface:
    def test_estimates_and_actuals_reported(self, store):
        explain = store.explain(AttributeEquals("city", "city-3"))
        assert explain.estimated_rows == 20
        assert explain.actual_rows == 20
        assert explain.shape is not None
        assert "city" in explain.path

    def test_format_mentions_path_and_counts(self, store):
        text = store.explain(TimeWindowOverlaps(Timestamp(0.0), Timestamp(300.0))).format()
        assert "temporal-overlap" in text
        assert "estimated rows" in text
        assert "plan cache" in text

    def test_facade_explain(self, store):
        client = LocalClient(store, owns_store=False)
        explain = client.explain(Q.attr("city") == "city-3")
        assert explain.used_index
        assert explain.site == store.site

    def test_facade_query_reports_rows_scanned(self, store):
        client = LocalClient(store, owns_store=False)
        result = client.query(Q.attr("city") == "city-3")
        assert result.cost.rows_scanned == 20

    def test_facade_stats_expose_planner(self, store):
        client = LocalClient(store, owns_store=False)
        client.query(Q.between(0.0, 300.0))
        stats = client.stats()
        assert "planner" in stats
        assert stats["planner"]["statistics"]["record_count"] == len(store)
        assert stats["store"]["full_scans"] >= 0


class TestStatistics:
    def test_ingest_maintained_counters(self, store):
        snapshot = store.statistics.snapshot()
        assert snapshot["record_count"] == 200
        assert snapshot["windowed_records"] == 200
        assert snapshot["located_records"] == 200
        assert snapshot["distinct_counts"]["city"] == 10
        span = snapshot["time_span"]
        assert span == (0.0, 60.0 * 199 + 59.0)

    def test_sqlite_bulk_fetch_on_index_path(self, tmp_path):
        from repro.storage.factory import make_backend

        store = PassStore(backend=make_backend("sqlite", path=str(tmp_path / "bulk.db")))
        for index in range(40):
            store.ingest(
                TupleSet(
                    [],
                    ProvenanceRecord(
                        {"domain": "traffic", "city": f"c{index % 4}", "sequence": index}
                    ),
                )
            )
        pairs, explain = store.query_explain(AttributeEquals("city", "c1"))
        assert explain.used_index
        assert len(pairs) == 10
        scanned, _ = store.query_explain(
            AttributeEquals("city", "c1"), force_full_scan=True
        )
        assert {p for p, _ in pairs} == {p for p, _ in scanned}
        store.backend.close()

    def test_rebuild_restores_statistics(self, tmp_path):
        from repro.storage.factory import make_backend

        path = str(tmp_path / "pass.db")
        store = PassStore(backend=make_backend("sqlite", path=path))
        for index in range(25):
            store.ingest(
                TupleSet([], ProvenanceRecord({"domain": "traffic", "sequence": index}))
            )
        store.backend.close()

        reopened = PassStore(backend=make_backend("sqlite", path=path))
        assert reopened.statistics.record_count == 25
        explain = reopened.explain(AttributeEquals("sequence", 7))
        assert explain.path_kind == "attr-eq"
        assert explain.actual_rows == 1
        reopened.backend.close()


class TestPlannerIsolation:
    def test_force_full_scan_plan(self, store):
        planner = QueryPlanner(store)
        plan = planner.plan(Query(predicate=AttributeEquals("city", "city-1")), True)
        assert isinstance(plan.path, FullScanPath)

    def test_not_pushed_inward_still_correct(self, store):
        predicate = Not(
            Or((AttributeEquals("city", "city-1"), AttributeEquals("city", "city-2")))
        )
        planned, _ = store.query_explain(predicate)
        scanned, _ = store.query_explain(predicate, force_full_scan=True)
        assert {p for p, _ in planned} == {p for p, _ in scanned}
        assert len(planned) == 160
