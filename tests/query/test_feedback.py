"""Tests for the adaptive feedback loop and the plan-cache edge cases.

Covers the four feedback mechanisms (drift-based plan invalidation,
statistics refresh scheduling, closure strategy switching, hot-key
result caching) plus the plan-cache edges the planner suite left
uncovered: LRU eviction at the shape cap, staleness in both growth
directions, and rebind soundness after a drift invalidation.
"""

from __future__ import annotations

import pytest

from repro.api.dsl import Q
from repro.core.pass_store import PassStore
from repro.core.provenance import ProvenanceRecord
from repro.core.query import AttributeEquals, Query
from repro.core.tupleset import TupleSet
from repro.query import planner as planner_mod
from repro.query.feedback import (
    _DRIFT_COOLDOWN,
    _DRIFT_MIN_SAMPLES,
    _HOT_KEY_MIN_HITS,
    _RESULT_CACHE_MIN_SCANNED,
)
from repro.query.planner import _CACHE_STALENESS_FACTOR, _ShapeAnalysis

HOT = "city-007"


def _record(city: str, sequence: int, ancestors=()) -> ProvenanceRecord:
    return ProvenanceRecord(
        {"domain": "traffic", "city": city, "sequence": sequence}, ancestors=ancestors
    )


def _populate(store: PassStore, count: int, cities: int = 10) -> None:
    store.ingest_many(
        [TupleSet([], _record(f"city-{i % cities:03d}", i)) for i in range(count)]
    )


def _flood(store: PassStore, start: int, count: int) -> None:
    store.ingest_many(
        [TupleSet([], _record(HOT, start + i)) for i in range(count)]
    )


def _shifted_store() -> PassStore:
    """1000 uniform records, then 800 more all in HOT -- the same
    mid-run selectivity shift the adaptive benchmark runs, sized down."""
    store = PassStore()
    _populate(store, 1000)
    return store


def _narrow(probe: int):
    low = 100 + probe * 10
    return (Q.attr("city") == HOT) & Q.attr("sequence").between(low, low + 10)


class TestDriftInvalidation:
    def _drive_to_drift(self, store: PassStore):
        """Warm a single-probe plan, flood, then probe until it adapts."""
        wide = (Q.attr("city") == HOT) & Q.attr("sequence").between(0, 100_000)
        for _ in range(3):
            store.query_explain(wide)
        _flood(store, 1000, 800)
        for probe in range(12):
            pairs, explain = store.query_explain(_narrow(probe))
            if explain.adapted:
                return probe, pairs, explain
        pytest.fail("drift never re-ranked the shape")

    def test_drift_rerank_fires_and_reports_reason(self):
        store = _shifted_store()
        _, _, explain = self._drive_to_drift(store)
        assert "drift" in explain.adapted
        assert not explain.cache_hit  # the re-ranked plan is a fresh analysis
        assert store.planner.cache_snapshot()["drift_invalidations"] == 1
        assert store.feedback.snapshot()["plans_invalidated"] == 1
        assert store.feedback.snapshot()["drift_events"] >= 1

    def test_rerank_recovers_scan_volume(self):
        """After the re-rank the plan stops scanning the flooded bucket."""
        store = _shifted_store()
        probe, _, explain = self._drive_to_drift(store)
        # The stale equality probe scanned the whole ~880-row bucket;
        # the re-ranked plan intersects with the narrow range.
        assert explain.rows_scanned < 100
        _, after = store.query_explain(_narrow(probe + 1))
        assert after.cache_hit and after.rows_scanned < 100

    def test_rebind_stays_sound_after_drift_invalidation(self):
        """Fresh constants through the re-ranked selection must answer
        exactly like a forced full scan."""
        store = _shifted_store()
        probe, _, _ = self._drive_to_drift(store)
        for next_probe in range(probe + 1, probe + 4):
            predicate = _narrow(next_probe)
            planned, _ = store.query_explain(predicate)
            scanned, _ = store.query_explain(predicate, force_full_scan=True)
            assert {p for p, _ in planned} == {p for p, _ in scanned}

    def test_cooldown_bounds_replan_churn(self):
        """Consuming a drift mark starts a cooldown: the same shape is
        not re-marked while it elapses, even if misestimates continue."""
        store = PassStore()
        feedback = store.feedback
        shape = "eq[city]"
        for _ in range(_DRIFT_MIN_SAMPLES):
            feedback.observe_execution(shape, 1000, 1, cache_hit=True)
        assert feedback.should_replan(shape) is not None
        for _ in range(_DRIFT_COOLDOWN // 2):
            feedback.observe_execution(shape, 1000, 1, cache_hit=True)
        assert feedback.should_replan(shape) is None

    def test_fresh_plan_clears_window_and_marks(self):
        store = PassStore()
        feedback = store.feedback
        shape = "eq[city]"
        for _ in range(_DRIFT_MIN_SAMPLES):
            feedback.observe_execution(shape, 1000, 1, cache_hit=True)
        # A fresh (non-cache-hit) execution wipes the pending mark: the
        # new selection is judged on its own record.
        feedback.observe_execution(shape, 10, 8, cache_hit=False)
        assert feedback.should_replan(shape) is None

    def test_misestimate_counts_both_directions(self):
        store = PassStore()
        feedback = store.feedback
        feedback.observe_execution("a", 1000, 10, cache_hit=True)  # over
        feedback.observe_execution("b", 10, 1000, cache_hit=True)  # under
        feedback.observe_execution("c", 100, 90, cache_hit=True)  # fine
        assert feedback.snapshot()["misestimates"] == 2

    def test_disabled_feedback_never_replans(self):
        store = _shifted_store()
        store.feedback.enabled = False
        wide = (Q.attr("city") == HOT) & Q.attr("sequence").between(0, 100_000)
        for _ in range(3):
            store.query_explain(wide)
        _flood(store, 1000, 800)
        for probe in range(12):
            _, explain = store.query_explain(_narrow(probe))
            assert explain.adapted is None
        assert store.planner.cache_snapshot()["drift_invalidations"] == 0


class TestPlanCacheEdges:
    def test_lru_eviction_at_shape_cap_keeps_cumulative_counters(self, monkeypatch):
        monkeypatch.setattr(planner_mod, "_CACHE_MAX_SHAPES", 4)
        store = PassStore()
        _populate(store, 100)
        for attr in ("city", "sequence", "domain"):
            store.query_explain(Q.attr(attr) == "x")
            store.query_explain(Q.attr(attr) == "x")  # a hit per shape
        for index in range(6):  # distinct shapes overflow the cap
            store.query_explain(Q.attr(f"extra-{index}").exists())
        snapshot = store.planner.cache_snapshot()
        assert snapshot["entries"] <= 4
        assert snapshot["evictions"] >= 5
        # Hits survive the evictions: the counter is cumulative, not a
        # sum over live entries.
        assert snapshot["hits"] >= 3

    def test_staleness_on_growth_forces_reanalysis(self):
        store = PassStore()
        _populate(store, 100)
        predicate = Q.attr("city") == "city-001"
        assert store.explain(predicate).cache_hit is False
        assert store.explain(predicate).cache_hit is True
        _populate(store, int(100 * _CACHE_STALENESS_FACTOR) + 100)
        assert store.explain(predicate).cache_hit is False

    def test_staleness_guard_watches_both_directions(self):
        """record_count can only shrink via rebuilds, so the shrink
        direction is asserted on _stale directly."""
        store = PassStore()
        _populate(store, 100)
        grown = _ShapeAnalysis(record_count=10, selection=("full",))
        shrunk = _ShapeAnalysis(record_count=100 * 10, selection=("full",))
        fresh = _ShapeAnalysis(record_count=100, selection=("full",))
        assert store.planner._stale(grown) is True
        assert store.planner._stale(shrunk) is True
        assert store.planner._stale(fresh) is False


class TestResultCache:
    def _hot_query(self):
        return Query(AttributeEquals("city", HOT))

    def _cache_store(self) -> PassStore:
        """All hot-city rows, enough that the probe clears the
        worth-caching scan floor."""
        store = PassStore()
        store.ingest_many(
            [
                TupleSet([], _record(HOT, i))
                for i in range(_RESULT_CACHE_MIN_SCANNED + 10)
            ]
        )
        _populate(store, 50)
        return store

    def test_admission_needs_hot_key_sightings(self):
        store = self._cache_store()
        for _ in range(_HOT_KEY_MIN_HITS):
            _, explain = store.query_explain(self._hot_query())
            assert explain.path_kind != "result-cache"
        _, explain = store.query_explain(self._hot_query())
        assert explain.path_kind == "result-cache"
        assert explain.rows_scanned == 0
        assert "hot-key" in explain.adapted
        assert store.feedback.snapshot()["result_cache"]["hits"] == 1

    def test_cached_answers_match_execution(self):
        store = self._cache_store()
        baseline = None
        for _ in range(_HOT_KEY_MIN_HITS + 1):
            pairs, _ = store.query_explain(self._hot_query())
            if baseline is None:
                baseline = {p.digest for p, _ in pairs}
        assert {p.digest for p, _ in pairs} == baseline

    def test_nonmatching_ingest_keeps_entry(self):
        store = self._cache_store()
        for _ in range(_HOT_KEY_MIN_HITS + 1):
            store.query_explain(self._hot_query())
        store.ingest(TupleSet([], _record("city-other", 9999)))
        _, explain = store.query_explain(self._hot_query())
        assert explain.path_kind == "result-cache"

    def test_matching_ingest_invalidates_precisely(self):
        store = self._cache_store()
        for _ in range(_HOT_KEY_MIN_HITS + 1):
            pairs, _ = store.query_explain(self._hot_query())
        before = len(pairs)
        store.ingest(TupleSet([], _record(HOT, 9999)))
        pairs, explain = store.query_explain(self._hot_query())
        assert explain.path_kind != "result-cache"
        assert len(pairs) == before + 1
        assert store.feedback.snapshot()["result_cache"]["invalidations"] >= 1

    def test_remove_data_drops_every_entry(self):
        store = self._cache_store()
        for _ in range(_HOT_KEY_MIN_HITS + 1):
            pairs, _ = store.query_explain(self._hot_query())
        store.remove_data(pairs[0][0])
        _, explain = store.query_explain(self._hot_query())
        assert explain.path_kind != "result-cache"

    def test_small_scans_are_never_cached(self):
        """A probe under the scan floor re-runs faster than the cache
        bookkeeping it would displace."""
        store = PassStore()
        _populate(store, 50)  # every bucket is tiny
        predicate = Q.attr("city") == "city-001"
        for _ in range(_HOT_KEY_MIN_HITS + 3):
            _, explain = store.query_explain(predicate)
            assert explain.path_kind != "result-cache"

    def test_lineage_queries_are_never_cached(self):
        store = PassStore()
        parent = TupleSet([], _record(HOT, 0))
        store.ingest(parent)
        store.ingest_many(
            [
                TupleSet([], _record(HOT, i + 1, ancestors=(parent.pname,)))
                for i in range(_RESULT_CACHE_MIN_SCANNED + 10)
            ]
        )
        predicate = Q.derived_from(parent.pname)
        for _ in range(_HOT_KEY_MIN_HITS + 3):
            _, explain = store.query_explain(predicate)
            assert explain.path_kind != "result-cache"


class TestRefreshScheduling:
    def test_ingest_volume_schedules_refresh(self):
        store = PassStore()
        _populate(store, 600)  # > 2 x the 256-record base
        assert store.feedback.refresh_due() is True
        store.query_explain(Q.attr("city") == "city-001")
        snapshot = store.feedback.snapshot()
        assert snapshot["stats_refreshes"] == 1
        assert store.feedback.refresh_due() is False

    def test_refresh_recomputes_out_of_order_depths(self):
        """Incremental depth tracking understates lineage that arrives
        child-first; the scheduled rebuild corrects it."""
        store = PassStore()
        grand = TupleSet([], _record("city-001", 0))
        parent = TupleSet([], _record("city-002", 1, ancestors=(grand.pname,)))
        child = TupleSet([], _record("city-003", 2, ancestors=(parent.pname,)))
        # Child first: its depth is fixed at 1 before the parent's own
        # depth (1, via the grandparent) is known -- true depth is 2.
        store.ingest(child)
        store.ingest(parent)
        store.ingest(grand)
        assert store.graph_stats.max_depth == 1
        store.refresh_statistics()
        assert store.graph_stats.max_depth == 2

    def test_refresh_rebuilds_attribute_statistics(self):
        store = PassStore()
        _populate(store, 100)
        store.statistics.attribute_counts.clear()  # simulate skew
        store.refresh_statistics()
        assert store.statistics.attribute_counts["city"] == 100
        assert store.statistics.record_count == 100


class TestClosureSwitching:
    def _force_check(self, store: PassStore, nodes: int, depth: int) -> None:
        """Make the next single ingest run the amortized shape check
        against a synthetic DAG summary."""
        store.feedback._ingests_since_closure_check = 10_000
        store.graph_stats.nodes = nodes
        store.graph_stats.max_depth = depth

    def test_switches_labelled_to_interval_on_big_graphs(self):
        store = PassStore()
        _populate(store, 10)
        assert store.closure.name == "labelled"
        self._force_check(store, nodes=9000, depth=10)
        store.ingest(TupleSet([], _record(HOT, 9000)))
        assert store.closure.name == "interval"
        assert store.feedback.snapshot()["closure_switches"] == 1

    def test_hysteresis_keeps_middling_graphs_put(self):
        store = PassStore()
        _populate(store, 10)
        self._force_check(store, nodes=5000, depth=50)
        store.ingest(TupleSet([], _record(HOT, 9000)))
        assert store.closure.name == "labelled"
        assert store.feedback.advise_closure("interval") is None
        assert store.feedback.advise_closure("labelled") is None

    def test_switches_back_with_hysteresis(self):
        store = PassStore()
        store.rebuild_closure_index(strategy="interval")
        _populate(store, 10)
        self._force_check(store, nodes=100, depth=2)
        store.ingest(TupleSet([], _record(HOT, 9000)))
        assert store.closure.name == "labelled"

    def test_never_advises_away_from_experimental_strategies(self):
        store = PassStore()
        assert store.feedback.advise_closure("naive") is None
        assert store.feedback.advise_closure("memoized") is None

    def test_sharded_stores_never_switch(self):
        from repro.storage.sharded import ShardedBackend

        store = PassStore(backend=ShardedBackend(shards=2, kind="memory"))
        _populate(store, 10)
        before = store.closure.name
        self._force_check(store, nodes=9000, depth=10)
        store.ingest(TupleSet([], _record(HOT, 9000)))
        assert store.closure.name == before
        assert store.feedback.snapshot()["closure_switches"] == 0

    def test_rebuild_reports_the_switch(self):
        store = PassStore()
        _populate(store, 20)
        stats = store.rebuild_closure_index(strategy="interval")
        assert stats["switched_from"] == "labelled"
        assert store.closure.name == "interval"
        # Lineage still answers correctly through the new strategy.
        parent = TupleSet([], _record(HOT, 100))
        child = TupleSet([], _record(HOT, 101, ancestors=(parent.pname,)))
        store.ingest(parent)
        store.ingest(child)
        assert parent.pname in store.closure.ancestors(child.pname)
