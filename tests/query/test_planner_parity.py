"""Property test: planner answers == forced-full-scan answers, always.

The planner's one safety argument is that access paths only *generate
candidates* and the full predicate is evaluated on them; if that ever
breaks, queries silently lose rows.  This suite generates random data
sets and random predicates from every class Section III derives --
equals, range, contains, in, exists, near, time-window, and/or/not and
lineage -- and asserts the planned execution returns exactly what a
forced full scan returns, on both the ``memory://`` and ``sqlite:///``
targets.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.attributes import GeoPoint, Timestamp
from repro.core.pass_store import PassStore
from repro.core.provenance import ProvenanceRecord
from repro.core.query import (
    AncestorOf,
    And,
    AttributeContains,
    AttributeEquals,
    AttributeExists,
    AttributeIn,
    AttributeRange,
    DerivedFrom,
    NearLocation,
    Not,
    Or,
    TimeWindowOverlaps,
)
from repro.core.tupleset import TupleSet
from repro.storage.factory import make_backend

CITIES = ("london", "boston", "paris", "oslo")
DOMAINS = ("traffic", "medical")

# ----------------------------------------------------------------------
# Data strategies: a small population with attribute variety, optional
# windows/locations (so index membership differs from store membership)
# and parent links for lineage predicates.
# ----------------------------------------------------------------------
record_specs = st.lists(
    st.fixed_dictionaries(
        {
            "city": st.sampled_from(CITIES),
            "domain": st.sampled_from(DOMAINS),
            "seq": st.integers(min_value=0, max_value=40),
            "windowed": st.booleans(),
            "located": st.booleans(),
            "start": st.floats(min_value=0, max_value=3000, allow_nan=False),
            "duration": st.floats(min_value=1, max_value=600, allow_nan=False),
            "lat": st.floats(min_value=40, max_value=50, allow_nan=False),
            "lon": st.floats(min_value=-5, max_value=5, allow_nan=False),
            "parent": st.one_of(st.none(), st.integers(min_value=0, max_value=60)),
        }
    ),
    min_size=4,
    max_size=25,
)


def _build_records(specs):
    records = []
    for index, spec in enumerate(specs):
        attributes = {
            "city": spec["city"],
            "domain": spec["domain"],
            "seq": spec["seq"],
            "serial": index,  # keeps identical specs distinct (P3)
        }
        if spec["windowed"]:
            attributes["window_start"] = Timestamp(spec["start"])
            attributes["window_end"] = Timestamp(spec["start"] + spec["duration"])
        if spec["located"]:
            attributes["location"] = GeoPoint(spec["lat"], spec["lon"])
        ancestors = ()
        if spec["parent"] is not None and records:
            ancestors = (records[spec["parent"] % len(records)].pname(),)
        records.append(ProvenanceRecord(attributes, ancestors=ancestors))
    return records


# ----------------------------------------------------------------------
# Predicate strategies: every Section III query class, composed with
# and/or/not up to depth 2.
# ----------------------------------------------------------------------
def _leaf_predicates():
    return st.one_of(
        st.builds(AttributeEquals, st.just("city"), st.sampled_from(CITIES)),
        st.builds(AttributeEquals, st.just("seq"), st.integers(0, 40)),
        st.builds(
            lambda low, span: AttributeRange("seq", low=low, high=low + span),
            st.integers(0, 40),
            st.integers(0, 15),
        ),
        st.builds(AttributeContains, st.just("city"), st.sampled_from(("on", "os", "zz"))),
        st.builds(
            lambda values: AttributeIn("city", tuple(values)),
            st.lists(st.sampled_from(CITIES), min_size=1, max_size=3),
        ),
        st.builds(AttributeExists, st.sampled_from(("location", "window_start", "seq"))),
        st.builds(
            lambda lat, lon, radius: NearLocation("location", GeoPoint(lat, lon), radius),
            st.floats(min_value=40, max_value=50, allow_nan=False),
            st.floats(min_value=-5, max_value=5, allow_nan=False),
            st.floats(min_value=1, max_value=500, allow_nan=False),
        ),
        st.builds(
            lambda start, span: TimeWindowOverlaps(
                Timestamp(start), Timestamp(start + span)
            ),
            st.floats(min_value=0, max_value=3000, allow_nan=False),
            st.floats(min_value=1, max_value=900, allow_nan=False),
        ),
        # Lineage: the index is resolved against the population at run time.
        st.builds(
            lambda index, up: ("lineage", index, up),
            st.integers(min_value=0, max_value=60),
            st.booleans(),
        ),
    )


def _combined(leaves):
    return st.one_of(
        leaves,
        st.builds(lambda parts: And(tuple(parts)), st.lists(leaves, min_size=2, max_size=3)),
        st.builds(lambda parts: Or(tuple(parts)), st.lists(leaves, min_size=2, max_size=3)),
        st.builds(Not, leaves),
        st.builds(
            lambda a, b: And((a, Not(b))),
            leaves,
            leaves,
        ),
    )


predicates = _combined(_leaf_predicates())


def _resolve(predicate, records):
    """Replace ('lineage', i, up) placeholders with real PNames."""
    if isinstance(predicate, tuple) and predicate and predicate[0] == "lineage":
        _, index, up = predicate
        target = records[index % len(records)].pname()
        return DerivedFrom(target) if up else AncestorOf(target)
    if isinstance(predicate, And):
        return And(tuple(_resolve(part, records) for part in predicate.parts))
    if isinstance(predicate, Or):
        return Or(tuple(_resolve(part, records) for part in predicate.parts))
    if isinstance(predicate, Not):
        return Not(_resolve(predicate.part, records))
    return predicate


def _assert_parity(store: PassStore, predicate) -> None:
    planned, explain = store.query_explain(predicate)
    scanned, baseline = store.query_explain(predicate, force_full_scan=True)
    assert {p for p, _ in planned} == {p for p, _ in scanned}, (
        f"planner ({explain.path}) and full scan disagree for {predicate!r}"
    )
    assert baseline.path_kind == "full-scan"


COMMON_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(specs=record_specs, predicate=predicates)
@COMMON_SETTINGS
def test_planner_matches_full_scan_in_memory(specs, predicate):
    records = _build_records(specs)
    store = PassStore()
    store.ingest_many([TupleSet([], record) for record in records])
    _assert_parity(store, _resolve(predicate, records))


@given(specs=record_specs, predicate=predicates)
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_planner_matches_full_scan_on_sqlite(specs, predicate):
    import tempfile
    import os

    records = _build_records(specs)
    handle, path = tempfile.mkstemp(suffix=".db")
    os.close(handle)
    try:
        store = PassStore(backend=make_backend("sqlite", path=path))
        store.ingest_many([TupleSet([], record) for record in records])
        _assert_parity(store, _resolve(predicate, records))
        store.backend.close()
    finally:
        os.unlink(path)


@given(specs=record_specs, predicate=predicates)
@COMMON_SETTINGS
def test_removed_data_parity(specs, predicate):
    """Planner parity survives P4 removals (records without data still match)."""
    records = _build_records(specs)
    store = PassStore()
    pnames = store.ingest_many([TupleSet([], record) for record in records])
    store.remove_data(pnames[0])
    _assert_parity(store, _resolve(predicate, records))
