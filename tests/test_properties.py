"""Property-based tests (hypothesis) on the core data structures and invariants.

These check the properties the paper relies on for *arbitrary* inputs:
provenance identity is canonical and collision-free in practice, the
provenance DAG never admits cycles and its closure strategies agree, the
attribute index agrees with a brute-force scan, windowing partitions the
reading stream, and the WAL round-trips every entry.
"""

from __future__ import annotations

import string

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    GeoPoint,
    PassStore,
    ProvenanceRecord,
    SensorReading,
    Timestamp,
    TupleSet,
    TupleSetWindower,
)
from repro.core.closure import make_closure
from repro.core.graph import ProvenanceGraph
from repro.core.provenance import PName
from repro.errors import CycleError
from repro.index import AttributeIndex
from repro.storage import MemoryBackend, WalEntry, WriteAheadLog

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
attr_names = st.text(alphabet=string.ascii_lowercase + "_", min_size=1, max_size=12)
scalar_values = st.one_of(
    st.integers(min_value=-10**9, max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
    st.booleans(),
    st.builds(Timestamp, st.floats(min_value=0, max_value=10**9, allow_nan=False)),
    st.builds(
        GeoPoint,
        st.floats(min_value=-90, max_value=90, allow_nan=False),
        st.floats(min_value=-180, max_value=180, allow_nan=False),
    ),
)
attribute_maps = st.dictionaries(attr_names, scalar_values, min_size=1, max_size=6)

COMMON_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ----------------------------------------------------------------------
# Provenance identity
# ----------------------------------------------------------------------
class TestProvenanceIdentityProperties:
    @COMMON_SETTINGS
    @given(attributes=attribute_maps)
    def test_identity_is_deterministic(self, attributes):
        assert ProvenanceRecord(attributes).pname() == ProvenanceRecord(attributes).pname()

    @COMMON_SETTINGS
    @given(attributes=attribute_maps)
    def test_serialisation_round_trip_preserves_identity(self, attributes):
        record = ProvenanceRecord(attributes)
        assert ProvenanceRecord.from_json(record.to_json()).pname() == record.pname()

    @COMMON_SETTINGS
    @given(attributes=attribute_maps, extra_name=attr_names, extra_value=scalar_values)
    def test_adding_an_attribute_changes_identity(self, attributes, extra_name, extra_value):
        record = ProvenanceRecord(attributes)
        extended_attributes = dict(attributes)
        if extra_name in extended_attributes:
            return  # overwriting may or may not change the value; skip
        extended_attributes[extra_name] = extra_value
        assert ProvenanceRecord(extended_attributes).pname() != record.pname()

    @COMMON_SETTINGS
    @given(attributes=attribute_maps)
    def test_derivation_always_changes_identity(self, attributes):
        record = ProvenanceRecord(attributes)
        derived = record.derive(attributes)
        assert derived.pname() != record.pname()
        assert derived.has_ancestor(record.pname())


# ----------------------------------------------------------------------
# Graph and closure
# ----------------------------------------------------------------------
def _dag_edges(parent_choices):
    """Build edge list (child, parent) for a random DAG from hypothesis data."""
    nodes = [ProvenanceRecord({"n": i}).pname() for i in range(len(parent_choices) + 1)]
    edges = []
    for index, choices in enumerate(parent_choices, start=1):
        for parent_index in set(choice % index for choice in choices):
            edges.append((nodes[index], nodes[parent_index]))
    return nodes, edges


class TestGraphProperties:
    @COMMON_SETTINGS
    @given(
        parent_choices=st.lists(
            st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=3),
            min_size=1,
            max_size=12,
        )
    )
    def test_random_dags_never_cycle_and_strategies_agree(self, parent_choices):
        nodes, edges = _dag_edges(parent_choices)
        graph = ProvenanceGraph()
        naive = make_closure("naive", graph)
        labelled = make_closure("labelled")
        for child, parent in edges:
            naive.add_edge(child, parent)
            labelled.add_node(child)
            labelled.add_node(parent)
            labelled.add_edge(child, parent)
        for node in nodes:
            if node not in graph:
                continue
            assert naive.ancestors(node) == labelled.ancestors(node)
            assert naive.descendants(node) == labelled.descendants(node)
            # A node is never its own ancestor (acyclicity).
            assert node not in naive.ancestors(node)

    @COMMON_SETTINGS
    @given(
        parent_choices=st.lists(
            st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=2),
            min_size=2,
            max_size=10,
        )
    )
    def test_reverse_edge_of_reachable_pair_is_rejected(self, parent_choices):
        nodes, edges = _dag_edges(parent_choices)
        graph = ProvenanceGraph()
        for child, parent in edges:
            graph.add_edge(child, parent)
        # For every existing ancestry pair, inserting the reverse edge must fail.
        child, parent = edges[0]
        with pytest.raises(CycleError):
            graph.add_edge(parent, child)

    @COMMON_SETTINGS
    @given(
        parent_choices=st.lists(
            st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=3),
            min_size=1,
            max_size=10,
        )
    )
    def test_ancestors_and_descendants_are_inverse_relations(self, parent_choices):
        nodes, edges = _dag_edges(parent_choices)
        graph = ProvenanceGraph()
        for child, parent in edges:
            graph.add_edge(child, parent)
        present = [node for node in nodes if node in graph]
        for node in present:
            for ancestor in graph.ancestors(node):
                assert node in graph.descendants(ancestor)


# ----------------------------------------------------------------------
# Attribute index vs brute force
# ----------------------------------------------------------------------
class TestIndexProperties:
    @COMMON_SETTINGS
    @given(records=st.lists(attribute_maps, min_size=1, max_size=15))
    def test_index_lookup_matches_scan(self, records):
        index = AttributeIndex()
        stored = []
        for attributes in records:
            record = ProvenanceRecord(attributes)
            stored.append(record)
            index.add(record.pname(), record)
        # Every (name, value) present in some record must be findable and
        # must return exactly the records a full scan would.
        from repro.core.attributes import canonical_encode

        for probe in stored:
            for name, value in probe.attributes.items():
                expected = {
                    r.pname()
                    for r in stored
                    if r.get(name) is not None
                    and canonical_encode(r.get(name)) == canonical_encode(value)
                }
                assert index.lookup(name, value) == expected


# ----------------------------------------------------------------------
# Windowing partitions the stream
# ----------------------------------------------------------------------
class TestWindowerProperties:
    @COMMON_SETTINGS
    @given(
        offsets=st.lists(
            st.floats(min_value=0.0, max_value=86_400.0, allow_nan=False), min_size=1, max_size=40
        ),
        window=st.sampled_from([60.0, 300.0, 3600.0]),
    )
    def test_windowing_is_a_partition(self, offsets, window):
        readings = [
            SensorReading("s", Timestamp(offset), {"v": 1.0}) for offset in sorted(offsets)
        ]
        windower = TupleSetWindower(window, {"network": "n", "domain": "d"})
        sets = windower.window(readings)
        # Every reading lands in exactly one window and none are lost.
        assert sum(len(ts) for ts in sets) == len(readings)
        for tuple_set in sets:
            start = tuple_set.provenance.get("window_start").seconds
            end = tuple_set.provenance.get("window_end").seconds
            for reading in tuple_set:
                assert start <= reading.timestamp.seconds < end


# ----------------------------------------------------------------------
# PASS store invariants under arbitrary ingest/removal sequences
# ----------------------------------------------------------------------
class TestStoreInvariantProperties:
    @COMMON_SETTINGS
    @given(
        labels=st.lists(st.integers(min_value=0, max_value=6), min_size=1, max_size=12),
        remove_mask=st.lists(st.booleans(), min_size=1, max_size=12),
    )
    def test_invariants_hold_under_ingest_and_removal(self, labels, remove_mask):
        store = PassStore()
        previous = None
        ingested = []
        for label in labels:
            attributes = {"domain": "x", "label": label}
            record = (
                ProvenanceRecord(attributes)
                if previous is None or label % 2 == 0
                else previous.derive(attributes)
            )
            readings = [SensorReading("s", Timestamp(float(label)), {"v": float(label)})]
            try:
                store.ingest(TupleSet(readings, record))
            except Exception:
                # Identical provenance for identical data is idempotent; any
                # other failure would surface in verify_invariants below.
                pass
            ingested.append(record.pname())
            previous = record
        for pname, remove in zip(ingested, remove_mask):
            if remove and pname in store:
                store.remove_data(pname)
        assert store.verify_invariants() == []
        # Removed data sets keep their records (P4).
        for pname, remove in zip(ingested, remove_mask):
            if remove and pname in store:
                assert store.get_record(pname) is not None


# ----------------------------------------------------------------------
# WAL entries round-trip
# ----------------------------------------------------------------------
class TestWalProperties:
    @COMMON_SETTINGS
    @given(attribute_sets=st.lists(attribute_maps, min_size=1, max_size=8))
    def test_replay_restores_every_logged_record(self, attribute_sets, tmp_path_factory):
        wal = WriteAheadLog(tmp_path_factory.mktemp("wal") / "log.wal")
        records = [ProvenanceRecord(attributes) for attributes in attribute_sets]
        for record in records:
            wal.log_put_record(record)
        backend = MemoryBackend()
        wal.replay(backend)
        for record in records:
            assert backend.has_record(record.pname())

    @COMMON_SETTINGS
    @given(
        sequence=st.integers(min_value=1, max_value=10**6),
        pname_seed=attribute_maps,
        payload=st.text(max_size=200),
    )
    def test_wal_entry_encode_decode_round_trip(self, sequence, pname_seed, payload):
        digest = ProvenanceRecord(pname_seed).pname().digest
        entry = WalEntry(sequence, "put_record", digest, payload)
        assert WalEntry.decode(entry.encode()) == entry
