"""Tests for the topology and network simulator."""

from __future__ import annotations

import pytest

from repro.core import GeoPoint
from repro.errors import ConfigurationError, NetworkError, UnknownEntityError
from repro.net import NetworkSimulator, Site, Topology

LONDON = GeoPoint(51.5074, -0.1278)
BOSTON = GeoPoint(42.3601, -71.0589)
TOKYO = GeoPoint(35.6762, 139.6503)


@pytest.fixture
def topology():
    topo = Topology(hop_latency_ms=2.0, ms_per_km=0.02, local_latency_ms=0.2)
    topo.add_site(Site("london", LONDON, kind="storage"))
    topo.add_site(Site("boston", BOSTON, kind="storage"))
    topo.add_site(Site("tokyo", TOKYO, kind="consumer"))
    return topo


class TestTopology:
    def test_site_validation(self):
        with pytest.raises(ConfigurationError):
            Site("", LONDON)

    def test_latency_parameters_validated(self):
        with pytest.raises(ConfigurationError):
            Topology(hop_latency_ms=-1.0)

    def test_duplicate_site_rejected(self, topology):
        with pytest.raises(ConfigurationError):
            topology.add_site(Site("london", LONDON))

    def test_unknown_site_lookup(self, topology):
        with pytest.raises(UnknownEntityError):
            topology.site("mars")

    def test_membership_and_names(self, topology):
        assert "london" in topology
        assert len(topology) == 3
        assert topology.site_names == ["boston", "london", "tokyo"]

    def test_sites_filtered_by_kind(self, topology):
        assert [s.name for s in topology.sites(kind="storage")] == ["boston", "london"]

    def test_distance_and_latency_scale_together(self, topology):
        near = topology.latency_ms("london", "boston")
        far = topology.latency_ms("boston", "tokyo")
        assert far > near > topology.local_latency_ms

    def test_local_latency(self, topology):
        assert topology.latency_ms("london", "london") == 0.2

    def test_latency_formula(self, topology):
        expected = 2.0 + 0.02 * topology.distance_km("london", "boston")
        assert topology.latency_ms("london", "boston") == pytest.approx(expected)

    def test_nearest_site(self, topology):
        cambridge = GeoPoint(52.2, 0.12)
        assert topology.nearest_site(cambridge).name == "london"
        assert topology.nearest_site(cambridge, kind="consumer").name == "tokyo"

    def test_nearest_site_requires_candidates(self, topology):
        with pytest.raises(UnknownEntityError):
            topology.nearest_site(LONDON, kind="warehouse")

    def test_neighbours_by_distance(self, topology):
        neighbours = topology.neighbours_by_distance("london")
        assert [site.name for site in neighbours] == ["boston", "tokyo"]


class TestNetworkSimulator:
    def test_send_records_stats(self, topology):
        net = NetworkSimulator(topology)
        message = net.send("london", "boston", 1000, "publish")
        assert message.latency_ms == pytest.approx(topology.latency_ms("london", "boston"))
        assert net.stats.messages == 1
        assert net.stats.bytes == 1000
        assert net.stats.by_kind["publish"]["messages"] == 1
        assert net.messages_between("london", "boston") == 1

    def test_negative_size_rejected(self, topology):
        with pytest.raises(NetworkError):
            NetworkSimulator(topology).send("london", "boston", -1, "x")

    def test_broadcast_returns_slowest(self, topology):
        net = NetworkSimulator(topology)
        slowest = net.broadcast("london", ["boston", "tokyo"], 100, "query")
        assert slowest == pytest.approx(topology.latency_ms("london", "tokyo"))
        assert net.stats.messages == 2

    def test_partition_blocks_delivery(self, topology):
        net = NetworkSimulator(topology)
        net.partition("boston")
        assert net.is_partitioned("boston")
        with pytest.raises(NetworkError):
            net.send("london", "boston", 10, "x")
        with pytest.raises(NetworkError):
            net.send("boston", "london", 10, "x")
        net.heal("boston")
        net.send("london", "boston", 10, "x")

    def test_reset_clears_counters(self, topology):
        net = NetworkSimulator(topology)
        net.send("london", "boston", 10, "x")
        net.reset()
        assert net.stats.messages == 0
        assert net.log() == []

    def test_log_and_snapshot(self, topology):
        net = NetworkSimulator(topology)
        net.send("london", "tokyo", 10, "query")
        snapshot = net.stats.snapshot()
        assert snapshot["messages"] == 1
        assert len(net.log()) == 1


class TestTrafficStatsLinks:
    def test_snapshot_reports_top_links(self, topology):
        net = NetworkSimulator(topology)
        for _ in range(3):
            net.send("london", "boston", 10, "x")
        net.send("boston", "tokyo", 10, "x")
        links = net.stats.snapshot()["links"]
        assert links["tracked"] == 2
        assert links["overflow_messages"] == 0
        assert links["top"][0] == {
            "source": "london",
            "destination": "boston",
            "messages": 3,
        }

    def test_by_link_is_capped_with_visible_overflow(self, topology):
        from repro.net import simulator as net_module
        from repro.net.simulator import Message, TrafficStats

        stats = TrafficStats()
        for index in range(net_module.BY_LINK_CAP + 5):
            stats.record(Message(f"s{index}", "d", 1, "x", 0.0))
        assert len(stats.by_link) == net_module.BY_LINK_CAP
        assert stats.link_overflow_messages == 5
        # Aggregate counters never lose messages.
        assert stats.messages == net_module.BY_LINK_CAP + 5
        # An already-tracked link keeps counting past the cap.
        stats.record(Message("s0", "d", 1, "x", 0.0))
        assert stats.by_link[("s0", "d")] == 2


class TestLogTruncation:
    def test_overflow_sets_flag_and_counts_dropped(self, topology, monkeypatch):
        from repro.net import simulator as net_module

        monkeypatch.setattr(net_module, "LOG_CAP", 10)
        net = NetworkSimulator(topology)
        for _ in range(15):
            net.send("london", "boston", 1, "x")
        assert net.log_truncated()
        assert net.log() == []
        # The 11 cleared at truncation plus the 4 sent afterwards.
        assert net.log_dropped() == 15
        snapshot = net.snapshot()
        assert snapshot["messages"] == 15  # aggregates keep counting
        assert snapshot["log"] == {"kept": 0, "truncated": True, "dropped": 15}

    def test_reset_restores_logging(self, topology, monkeypatch):
        from repro.net import simulator as net_module

        monkeypatch.setattr(net_module, "LOG_CAP", 5)
        net = NetworkSimulator(topology)
        for _ in range(9):
            net.send("london", "boston", 1, "x")
        assert net.log_truncated()
        net.reset()
        assert not net.log_truncated()
        assert net.log_dropped() == 0
        net.send("london", "boston", 1, "x")
        assert len(net.log()) == 1
        assert net.snapshot()["log"] == {"kept": 1, "truncated": False, "dropped": 0}
