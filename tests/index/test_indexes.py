"""Tests for the attribute, temporal and spatial indexes."""

from __future__ import annotations

import pytest

from repro.core import GeoPoint, ProvenanceRecord, Timestamp
from repro.errors import ConfigurationError
from repro.index import AttributeIndex, SpatialIndex, TemporalIndex


def _record(**attributes):
    base = {"domain": "traffic"}
    base.update(attributes)
    return ProvenanceRecord(base)


class TestAttributeIndex:
    def test_exact_lookup(self):
        index = AttributeIndex()
        record = _record(city="london")
        index.add(record.pname(), record)
        assert index.lookup("city", "london") == {record.pname()}
        assert index.lookup("city", "boston") == set()

    def test_lookup_is_type_strict(self):
        index = AttributeIndex()
        record = _record(count=5)
        index.add(record.pname(), record)
        assert index.lookup("count", 5) == {record.pname()}
        assert index.lookup("count", 5.0) == set()

    def test_restricted_attribute_set(self):
        index = AttributeIndex(indexed_attributes=["city"])
        record = _record(city="london", owner="tfl")
        index.add(record.pname(), record)
        assert index.covers("city")
        assert not index.covers("owner")
        assert index.lookup("owner", "tfl") == set()

    def test_lookup_any(self):
        index = AttributeIndex()
        records = [_record(city=c) for c in ("london", "boston", "seattle")]
        for record in records:
            index.add(record.pname(), record)
        hits = index.lookup_any("city", ["london", "seattle"])
        assert hits == {records[0].pname(), records[2].pname()}

    def test_range_lookup_numeric(self):
        index = AttributeIndex()
        records = [_record(count=i) for i in range(10)]
        for record in records:
            index.add(record.pname(), record)
        hits = index.lookup_range("count", low=3, high=5)
        assert hits == {records[i].pname() for i in (3, 4, 5)}

    def test_range_lookup_exclusive_bounds(self):
        index = AttributeIndex()
        records = [_record(count=i) for i in range(5)]
        for record in records:
            index.add(record.pname(), record)
        hits = index.lookup_range("count", low=1, high=3, include_low=False, include_high=False)
        assert hits == {records[2].pname()}

    def test_range_lookup_timestamps(self):
        index = AttributeIndex()
        records = [_record(window_start=Timestamp(60.0 * i)) for i in range(5)]
        for record in records:
            index.add(record.pname(), record)
        hits = index.lookup_range("window_start", low=Timestamp(60.0), high=Timestamp(180.0))
        assert len(hits) == 3

    def test_range_needs_bound(self):
        with pytest.raises(ConfigurationError):
            AttributeIndex().lookup_range("count")

    def test_range_skips_incompatible_values(self):
        index = AttributeIndex()
        numeric = _record(value=10)
        text = _record(value="ten")
        index.add(numeric.pname(), numeric)
        index.add(text.pname(), text)
        assert index.lookup_range("value", low=0, high=100) == {numeric.pname()}

    def test_distinct_values_sorted(self):
        index = AttributeIndex()
        for count in (5, 1, 3):
            record = _record(count=count)
            index.add(record.pname(), record)
        assert index.distinct_values("count") == [1, 3, 5]

    def test_cardinality_and_selectivity(self):
        index = AttributeIndex()
        for city in ("london", "london", "boston"):
            record = _record(city=city, nonce=len(index.indexed_attributes()) + index.entry_count())
            index.add(record.pname(), record)
        assert index.cardinality("city") == 2
        assert index.selectivity("city", "london") == pytest.approx(2 / 3)
        assert index.selectivity("city", "tokyo") == 0.0

    def test_add_value_and_remove(self):
        index = AttributeIndex()
        record = _record(city="london")
        index.add(record.pname(), record)
        index.add_value(record.pname(), "annotation:note", "upgraded")
        assert index.lookup("annotation:note", "upgraded") == {record.pname()}
        index.remove(record.pname(), record)
        assert index.lookup("city", "london") == set()

    def test_entry_count_tracks_postings(self):
        index = AttributeIndex()
        record = _record(city="london", owner="tfl")
        index.add(record.pname(), record)
        assert index.entry_count() == 3  # domain, city, owner


class TestTemporalIndex:
    def _populated(self):
        index = TemporalIndex()
        names = {}
        for i in range(5):
            record = _record(window=i)
            names[i] = record.pname()
            index.add(record.pname(), Timestamp(i * 100.0), Timestamp(i * 100.0 + 100.0))
        return index, names

    def test_rejects_inverted_interval(self):
        index = TemporalIndex()
        with pytest.raises(ConfigurationError):
            index.add(_record().pname(), Timestamp(10.0), Timestamp(0.0))

    def test_overlapping(self):
        index, names = self._populated()
        hits = index.overlapping(Timestamp(150.0), Timestamp(250.0))
        assert hits == {names[1], names[2]}

    def test_overlap_at_boundary(self):
        index, names = self._populated()
        hits = index.overlapping(Timestamp(100.0), Timestamp(100.0))
        assert names[0] in hits and names[1] in hits

    def test_contained(self):
        index, names = self._populated()
        hits = index.contained(Timestamp(100.0), Timestamp(300.0))
        assert hits == {names[1], names[2]}

    def test_at_instant(self):
        index, names = self._populated()
        assert names[3] in index.at(Timestamp(350.0))

    def test_rejects_inverted_query(self):
        index, _ = self._populated()
        with pytest.raises(ConfigurationError):
            index.overlapping(Timestamp(10.0), Timestamp(0.0))

    def test_span(self):
        index, _ = self._populated()
        start, end = index.span()
        assert start.seconds == 0.0
        assert end.seconds == 500.0

    def test_empty_span_is_none(self):
        assert TemporalIndex().span() is None

    def test_len(self):
        index, _ = self._populated()
        assert len(index) == 5


class TestSpatialIndex:
    LONDON = GeoPoint(51.5074, -0.1278)
    BOSTON = GeoPoint(42.3601, -71.0589)
    CAMBRIDGE_UK = GeoPoint(52.2053, 0.1218)

    def _populated(self):
        index = SpatialIndex()
        names = {}
        for label, point in (("london", self.LONDON), ("boston", self.BOSTON), ("cambridge", self.CAMBRIDGE_UK)):
            record = _record(place=label)
            names[label] = record.pname()
            index.add(record.pname(), point)
        return index, names

    def test_rejects_non_positive_cell(self):
        with pytest.raises(ConfigurationError):
            SpatialIndex(cell_degrees=0.0)

    def test_within_radius(self):
        index, names = self._populated()
        hits = index.within_radius(self.LONDON, 150.0)
        assert hits == {names["london"], names["cambridge"]}

    def test_within_small_radius(self):
        index, names = self._populated()
        assert index.within_radius(self.LONDON, 1.0) == {names["london"]}

    def test_negative_radius_rejected(self):
        index, _ = self._populated()
        with pytest.raises(ConfigurationError):
            index.within_radius(self.LONDON, -1.0)

    def test_radius_at_high_latitude(self):
        index = SpatialIndex()
        centre = GeoPoint(69.6, 18.9)  # Tromso
        east = GeoPoint(69.6, 19.9)    # ~39 km east at that latitude
        record = _record(place="east")
        index.add(record.pname(), east)
        assert index.within_radius(centre, 60.0) == {record.pname()}

    def test_in_box(self):
        index, names = self._populated()
        hits = index.in_box(GeoPoint(50.0, -2.0), GeoPoint(53.0, 1.0))
        assert hits == {names["london"], names["cambridge"]}

    def test_in_box_across_antimeridian(self):
        index = SpatialIndex()
        fiji = _record(place="fiji")
        index.add(fiji.pname(), GeoPoint(-17.7, 178.0))
        hits = index.in_box(GeoPoint(-30.0, 170.0), GeoPoint(0.0, -170.0))
        assert fiji.pname() in hits

    def test_invalid_box_rejected(self):
        index, _ = self._populated()
        with pytest.raises(ConfigurationError):
            index.in_box(GeoPoint(10.0, 0.0), GeoPoint(0.0, 1.0))

    def test_nearest(self):
        index, names = self._populated()
        assert index.nearest(GeoPoint(51.0, 0.0), count=2) == [names["london"], names["cambridge"]]

    def test_nearest_requires_positive_count(self):
        index, _ = self._populated()
        with pytest.raises(ConfigurationError):
            index.nearest(self.LONDON, count=0)

    def test_re_adding_moves_point(self):
        index = SpatialIndex()
        record = _record(place="mobile")
        index.add(record.pname(), self.LONDON)
        index.add(record.pname(), self.BOSTON)
        assert index.within_radius(self.LONDON, 50.0) == set()
        assert index.within_radius(self.BOSTON, 50.0) == {record.pname()}
        assert len(index) == 1

    def test_location_of(self):
        index, names = self._populated()
        assert index.location_of(names["london"]) == self.LONDON
        assert index.location_of(_record(place="ghost").pname()) is None
