"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import io

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["workload", "atlantis"])

    def test_experiment_ids_optional(self):
        args = build_parser().parse_args(["experiments"])
        assert args.ids == []


class TestWorkloadCommand:
    def test_summary_output(self):
        out = io.StringIO()
        code = main(["workload", "traffic", "--hours", "0.5", "--seed", "3"], out=out)
        text = out.getvalue()
        assert code == 0
        assert "domain:            traffic" in text
        assert "invariants:        ok" in text

    def test_each_domain_runs(self):
        for domain in ("weather", "volcano"):
            out = io.StringIO()
            assert main(["workload", domain, "--hours", "0.5"], out=out) == 0


class TestQueryCommand:
    def test_attribute_query_prints_matches(self):
        out = io.StringIO()
        code = main(["query", "traffic", "city=london", "--hours", "0.5", "--limit", "3"], out=out)
        text = out.getvalue()
        assert code == 0
        assert "data sets match city='london'" in text
        assert "more" in text or text.count("\n") >= 2

    def test_numeric_values_coerced(self):
        out = io.StringIO()
        code = main(["query", "traffic", "reading_count=9999", "--hours", "0.5"], out=out)
        assert code == 0
        assert "0 data sets match" in out.getvalue()

    def test_malformed_predicate_rejected(self):
        assert main(["query", "traffic", "city:london"], out=io.StringIO()) == 2


class TestExplainCommand:
    def test_equality_predicate_explained(self):
        out = io.StringIO()
        code = main(["explain", "traffic", "city=london", "--hours", "0.5"], out=out)
        text = out.getvalue()
        assert code == 0
        assert "estimated rows" in text
        assert "plan cache" in text

    def test_window_option_uses_temporal_path(self):
        out = io.StringIO()
        code = main(["explain", "traffic", "--window", "0,900", "--hours", "0.5"], out=out)
        text = out.getvalue()
        assert code == 0
        assert "temporal-overlap" in text
        assert "index used: yes" in text

    def test_near_option_parsed(self):
        out = io.StringIO()
        code = main(
            ["explain", "traffic", "--near", "51.5,-0.12,5", "--hours", "0.5"], out=out
        )
        assert code == 0
        assert "rows scanned" in out.getvalue()

    def test_range_operator_parsed(self):
        out = io.StringIO()
        code = main(["explain", "traffic", "reading_count>=1", "--hours", "0.5"], out=out)
        assert code == 0

    def test_distributed_target_nests_site_plans(self):
        out = io.StringIO()
        code = main(
            ["explain", "traffic", "city=london", "--hours", "0.5", "--store", "centralized://"],
            out=out,
        )
        text = out.getvalue()
        assert code == 0
        assert "[centralized]" in text
        assert "[warehouse]" in text

    def test_malformed_predicate_rejected(self):
        assert main(["explain", "traffic", "city:london"], out=io.StringIO()) == 2

    def test_malformed_window_rejected(self):
        assert main(["explain", "traffic", "--window", "abc"], out=io.StringIO()) == 2

    def test_reversed_window_rejected_cleanly(self):
        assert main(["explain", "traffic", "--window", "900,0"], out=io.StringIO()) == 2

    def test_malformed_near_rejected(self):
        assert main(["explain", "traffic", "--near", "1,2"], out=io.StringIO()) == 2

    def test_negative_radius_rejected_cleanly(self):
        assert main(["explain", "traffic", "--near", "51.5,-0.12,-5"], out=io.StringIO()) == 2

    def test_leftmost_operator_wins(self):
        from repro.cli import _parse_cli_predicate
        from repro.core.query import AttributeContains, AttributeEquals

        # A value containing an operator character still splits on the
        # leftmost operator, not the highest-priority one.
        assert _parse_cli_predicate("note=x>y") == AttributeEquals("note", "x>y")
        assert _parse_cli_predicate("name~a=b") == AttributeContains("name", "a=b")
        assert _parse_cli_predicate("=value") is None


class TestExperimentsCommand:
    def test_single_experiment_to_file(self, tmp_path):
        out = io.StringIO()
        report = tmp_path / "report.txt"
        code = main(["experiments", "E13", "--output", str(report)], out=out)
        assert code == 0
        assert "[E13]" in out.getvalue()
        assert "[E13]" in report.read_text()

    def test_lower_case_ids_accepted(self):
        out = io.StringIO()
        assert main(["experiments", "e14"], out=out) == 0
        assert "[E14]" in out.getvalue()


class TestWatchCommand:
    def test_matches_stream_live(self):
        out = io.StringIO()
        code = main(
            ["watch", "traffic", "city=london", "--hours", "0.5", "--limit", "3"], out=out
        )
        text = out.getvalue()
        assert code == 0
        assert text.count("match ") == 3  # capped by --limit
        assert "city=london" in text
        assert "event(s) matched" in text

    def test_window_aggregation_mode(self):
        out = io.StringIO()
        code = main(
            [
                "watch", "traffic", "city=london",
                "--every", "600", "--aggregate", "count",
                "--hours", "0.5",
            ],
            out=out,
        )
        text = out.getvalue()
        assert code == 0
        assert "window [" in text
        assert "count=" in text

    def test_distributed_target_reports_notify_traffic(self):
        out = io.StringIO()
        code = main(
            ["watch", "traffic", "city=london", "--hours", "0.5", "--store", "centralized://"],
            out=out,
        )
        text = out.getvalue()
        assert code == 0
        assert "notify message(s)" in text

    def test_malformed_predicate_rejected(self):
        assert main(["watch", "traffic", "city:london"], out=io.StringIO()) == 2

    def test_window_flags_require_every(self):
        assert main(["watch", "traffic", "--group-by", "city"], out=io.StringIO()) == 2
        # A non-default aggregate without --every must error, not be
        # silently dropped into a plain match tail.
        assert main(["watch", "traffic", "--aggregate", "sum"], out=io.StringIO()) == 2

    def test_bad_aggregation_rejected_cleanly(self):
        # mean without --value-attr is a WindowSpec configuration error.
        assert main(
            ["watch", "traffic", "--every", "600", "--aggregate", "mean"],
            out=io.StringIO(),
        ) == 2


class TestSimulateCommand:
    def test_concurrent_run_reports_percentiles_and_utilization(self):
        out = io.StringIO()
        code = main(
            [
                "simulate", "traffic",
                "--store", "centralized://",
                "--clients", "4",
                "--ops", "12",
                "--hours", "0.5",
                "--service-ms", "0.5",
            ],
            out=out,
        )
        text = out.getvalue()
        assert code == 0
        assert "clients:            4 concurrent" in text
        assert "p99" in text
        assert "site utilization" in text
        assert "warehouse" in text
        assert "journal:            sha256 " in text

    def test_identical_seeds_print_identical_reports(self):
        def run():
            out = io.StringIO()
            argv = [
                "simulate", "traffic",
                "--store", "dht://?sites=8",
                "--clients", "3",
                "--ops", "9",
                "--hours", "0.5",
                "--jitter", "0.2",
                "--seed", "5",
            ]
            assert main(argv, out=out) == 0
            # Strip the wall-clock events/s figure; everything else is virtual.
            return [
                line for line in out.getvalue().splitlines()
                if not line.startswith("kernel events:")
            ]

        assert run() == run()

    def test_schedule_file_applies_churn(self, tmp_path):
        schedule = tmp_path / "churn.json"
        schedule.write_text(
            '[{"at_ms": 0.5, "action": "churn", "site": "warehouse", "duration_ms": 100}]'
        )
        out = io.StringIO()
        code = main(
            [
                "simulate", "traffic",
                "--store", "centralized://",
                "--clients", "2",
                "--ops", "10",
                "--hours", "0.5",
                "--schedule", str(schedule),
            ],
            out=out,
        )
        text = out.getvalue()
        assert code == 0
        assert "schedule:           2 action(s)" in text
        assert "partition warehouse" in text

    def test_local_store_rejected(self):
        assert main(["simulate", "traffic", "--store", "memory://"], out=io.StringIO()) == 2

    def test_missing_schedule_file_rejected(self):
        code = main(
            ["simulate", "traffic", "--schedule", "/nonexistent/churn.json"],
            out=io.StringIO(),
        )
        assert code == 2

    def test_bad_jitter_rejected(self):
        code = main(["simulate", "traffic", "--jitter", "2.0"], out=io.StringIO())
        assert code == 2


class TestLineageCommand:
    def test_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["lineage"])

    def test_ancestors_pages_through_the_closure(self):
        out = io.StringIO()
        code = main(
            ["lineage", "ancestors", "traffic", "--hours", "0.5", "--limit", "3"], out=out
        )
        text = out.getvalue()
        assert code == 0
        assert "ancestor(s) of" in text
        assert "showing 3 from offset 0" in text
        assert text.count("\n  ") == 3  # exactly one line per paged ancestor

    def test_ancestors_works_on_a_model_target(self):
        out = io.StringIO()
        code = main(
            ["lineage", "ancestors", "traffic", "--hours", "0.5", "--store", "dht://"],
            out=out,
        )
        assert code == 0
        assert "ancestor(s) of" in out.getvalue()

    def test_path_prints_a_derivation_chain(self):
        out = io.StringIO()
        code = main(["lineage", "path", "weather", "--hours", "0.5"], out=out)
        text = out.getvalue()
        assert code == 0
        assert "derivation path (" in text
        assert "most derived first" in text

    def test_path_rejects_model_targets(self):
        code = main(
            ["lineage", "path", "traffic", "--store", "centralized://"],
            out=io.StringIO(),
        )
        assert code == 2

    def test_stats_reports_graph_shape_and_index(self):
        out = io.StringIO()
        code = main(
            [
                "lineage",
                "stats",
                "traffic",
                "--hours",
                "0.5",
                "--store",
                "memory://?closure=interval",
            ],
            out=out,
        )
        text = out.getvalue()
        assert code == 0
        assert "graph nodes/edges:" in text
        assert "closure strategy:  interval" in text
        assert "depth histogram:" in text

    def test_stats_degrades_gracefully_on_model_targets(self):
        out = io.StringIO()
        code = main(["lineage", "stats", "traffic", "--store", "centralized://"], out=out)
        text = out.getvalue()
        assert code == 0
        assert "no per-store graph statistics" in text
        assert "supports_lineage: True" in text

    def test_focus_out_of_range_rejected(self):
        code = main(
            ["lineage", "ancestors", "traffic", "--focus", "999"], out=io.StringIO()
        )
        assert code == 2


class TestServeCommand:
    def test_parser_accepts_serve_options(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--store", "memory://", "--token", "t=alpha"]
        )
        assert args.command == "serve"
        assert args.port == 0
        assert args.token == ["t=alpha"]

    def test_malformed_token_rejected_before_binding(self):
        code = main(["serve", "--port", "0", "--token", "no-separator"], out=io.StringIO())
        assert code == 2

    def test_serve_runs_a_real_daemon(self):
        """End to end: the CLI daemon serves a genuine pass:// client."""
        import os
        import subprocess
        import sys as _sys
        from pathlib import Path

        from repro.api import Q, connect

        src = Path(__file__).resolve().parents[1] / "src"
        env = dict(os.environ, PYTHONPATH=str(src))
        process = subprocess.Popen(
            [_sys.executable, "-u", "-m", "repro", "serve", "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            banner = process.stdout.readline()
            assert " at pass://" in banner, (banner, process.stderr.read())
            url = banner.split(" at ")[1].split()[0]
            with connect(url) as client:
                assert client.target == "remote+local"
                client.publish(_serve_tuple_set())
                assert client.query(Q.attr("tag") == "cli-serve").total == 1
        finally:
            process.terminate()
            process.wait(timeout=10)


def _serve_tuple_set():
    from repro.core import ProvenanceRecord, TupleSet

    return TupleSet([], ProvenanceRecord({"domain": "cli", "tag": "cli-serve"}))
