"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import io

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["workload", "atlantis"])

    def test_experiment_ids_optional(self):
        args = build_parser().parse_args(["experiments"])
        assert args.ids == []


class TestWorkloadCommand:
    def test_summary_output(self):
        out = io.StringIO()
        code = main(["workload", "traffic", "--hours", "0.5", "--seed", "3"], out=out)
        text = out.getvalue()
        assert code == 0
        assert "domain:            traffic" in text
        assert "invariants:        ok" in text

    def test_each_domain_runs(self):
        for domain in ("weather", "volcano"):
            out = io.StringIO()
            assert main(["workload", domain, "--hours", "0.5"], out=out) == 0


class TestQueryCommand:
    def test_attribute_query_prints_matches(self):
        out = io.StringIO()
        code = main(["query", "traffic", "city=london", "--hours", "0.5", "--limit", "3"], out=out)
        text = out.getvalue()
        assert code == 0
        assert "data sets match city='london'" in text
        assert "more" in text or text.count("\n") >= 2

    def test_numeric_values_coerced(self):
        out = io.StringIO()
        code = main(["query", "traffic", "reading_count=9999", "--hours", "0.5"], out=out)
        assert code == 0
        assert "0 data sets match" in out.getvalue()

    def test_malformed_predicate_rejected(self):
        assert main(["query", "traffic", "city:london"], out=io.StringIO()) == 2


class TestExperimentsCommand:
    def test_single_experiment_to_file(self, tmp_path):
        out = io.StringIO()
        report = tmp_path / "report.txt"
        code = main(["experiments", "E13", "--output", str(report)], out=out)
        assert code == 0
        assert "[E13]" in out.getvalue()
        assert "[E13]" in report.read_text()

    def test_lower_case_ids_accepted(self):
        out = io.StringIO()
        assert main(["experiments", "e14"], out=out) == 0
        assert "[E14]" in out.getvalue()
