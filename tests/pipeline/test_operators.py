"""Tests for derivation operators, pipelines, taint analysis and versioning."""

from __future__ import annotations

import pytest

from repro.core import (
    AgentIs,
    AttributeEquals,
    GeoPoint,
    PassStore,
    ProvenanceRecord,
    SensorReading,
    Timestamp,
    TupleSet,
)
from repro.errors import ConfigurationError, UnknownEntityError
from repro.pipeline import (
    AggregateOperator,
    CalibrationOperator,
    FilterOperator,
    MergeOperator,
    Pipeline,
    RollupOperator,
    TaintAnalysis,
    VersionedRepository,
)


def _tuple_set(label: str, values, city="london"):
    readings = [
        SensorReading(f"{label}-s{i}", Timestamp(float(i * 10)), {"speed": value},
                      location=GeoPoint(51.5, -0.12))
        for i, value in enumerate(values)
    ]
    record = ProvenanceRecord(
        {
            "domain": "traffic",
            "network": f"{city}-zone",
            "city": city,
            "label": label,
            "window_start": Timestamp(0.0),
            "window_end": Timestamp(300.0),
        }
    )
    return TupleSet(readings, record)


class TestOperatorBasics:
    def test_operator_requires_name(self):
        with pytest.raises(ConfigurationError):
            FilterOperator("", predicate=lambda r: True)

    def test_derived_attributes_carry_context_and_stage(self):
        source = _tuple_set("a", [10.0, 20.0])
        out = FilterOperator("f", predicate=lambda r: True).apply(source)
        record = out.provenance
        assert record.get("domain") == "traffic"
        assert record.get("network") == "london-zone"
        assert record.get("stage") == "filtered"
        assert record.get("operator") == "f"
        assert record.get("input_count") == 1

    def test_extra_carry_attributes(self):
        source = _tuple_set("a", [10.0])
        out = FilterOperator("f", predicate=lambda r: True, carry_attributes=("city",)).apply(source)
        assert out.provenance.get("city") == "london"

    def test_parameters_recorded_in_agent_and_attributes(self):
        op = FilterOperator("f", predicate=lambda r: True, parameters={"threshold": 5})
        out = op.apply(_tuple_set("a", [1.0]))
        assert out.provenance.get("param_threshold") == 5
        assert op.agent.metadata["threshold"] == 5

    def test_apply_links_single_ancestor(self):
        source = _tuple_set("a", [1.0])
        out = MergeOperator("m").apply(source)
        assert out.provenance.ancestors == (source.pname,)

    def test_apply_many_links_every_ancestor(self):
        sources = [_tuple_set(label, [1.0]) for label in "abc"]
        out = MergeOperator("m").apply_many(sources)
        assert set(out.provenance.ancestors) == {ts.pname for ts in sources}

    def test_apply_many_requires_inputs(self):
        with pytest.raises(ConfigurationError):
            MergeOperator("m").apply_many([])

    def test_applications_counter(self):
        op = MergeOperator("m")
        op.apply(_tuple_set("a", [1.0]))
        op.apply_many([_tuple_set("b", [1.0]), _tuple_set("c", [1.0])])
        assert op.applications == 2


class TestFilterOperator:
    def test_keeps_only_matching_readings(self):
        source = _tuple_set("a", [10.0, 200.0, 30.0])
        out = FilterOperator("plausible", predicate=lambda r: r.value("speed") < 100).apply(source)
        assert len(out) == 2


class TestAggregateOperator:
    def test_summary_statistics(self):
        source = _tuple_set("a", [10.0, 20.0, 30.0])
        out = AggregateOperator("agg").apply(source)
        assert len(out) == 1
        summary = out.readings[0]
        assert summary.value("speed_mean") == pytest.approx(20.0)
        assert summary.value("speed_min") == 10.0
        assert summary.value("speed_max") == 30.0
        assert summary.value("speed_count") == 3

    def test_quantity_restriction(self):
        readings = [
            SensorReading("s", Timestamp(0.0), {"speed": 10.0, "count": 5}),
        ]
        source = TupleSet(readings, ProvenanceRecord({"domain": "traffic", "label": "q"}))
        out = AggregateOperator("agg", quantities=["count"]).apply(source)
        summary = out.readings[0]
        assert summary.value("count_mean") == 5
        assert summary.value("speed_mean") is None

    def test_empty_input_produces_empty_summary(self):
        source = TupleSet([], ProvenanceRecord({"domain": "traffic", "label": "empty"}))
        assert AggregateOperator("agg").apply(source).is_empty()

    def test_non_numeric_values_ignored(self):
        readings = [SensorReading("s", Timestamp(0.0), {"status": "ok", "flag": True})]
        source = TupleSet(readings, ProvenanceRecord({"domain": "traffic", "label": "x"}))
        assert AggregateOperator("agg").apply(source).is_empty()


class TestMergeOperator:
    def test_source_networks_recorded(self):
        a = _tuple_set("a", [1.0], city="london")
        b = _tuple_set("b", [2.0], city="boston")
        out = MergeOperator("amalgamate").apply_many([a, b])
        assert out.provenance.get("source_networks") == ("boston-zone", "london-zone")
        assert len(out) == 2


class TestCalibrationOperator:
    def test_gain_and_offset_applied(self):
        source = _tuple_set("a", [10.0, 20.0])
        out = CalibrationOperator("cal", quantity="speed", gain=2.0, offset=1.0).apply(source)
        assert [r.value("speed") for r in out] == [21.0, 41.0]

    def test_other_quantities_untouched(self):
        readings = [SensorReading("s", Timestamp(0.0), {"speed": 10.0, "count": 3})]
        source = TupleSet(readings, ProvenanceRecord({"domain": "traffic", "label": "c"}))
        out = CalibrationOperator("cal", quantity="speed", offset=5.0).apply(source)
        assert out.readings[0].value("count") == 3
        assert out.readings[0].value("speed") == 15.0


class TestRollupOperator:
    def test_window_boundaries_span_inputs(self):
        def windowed(label, start):
            record = ProvenanceRecord(
                {
                    "domain": "traffic",
                    "label": label,
                    "window_start": Timestamp(start),
                    "window_end": Timestamp(start + 300.0),
                }
            )
            return TupleSet([], record)

        out = RollupOperator("hourly").apply_many([windowed("a", 0.0), windowed("b", 3300.0)])
        assert out.provenance.get("window_start").seconds == 0.0
        assert out.provenance.get("window_end").seconds == 3600.0


class TestPipeline:
    def test_requires_operators_and_inputs(self):
        with pytest.raises(ConfigurationError):
            Pipeline([])
        with pytest.raises(ConfigurationError):
            Pipeline([MergeOperator("m")]).run([])

    def test_stages_chain_and_store_ingests(self):
        store = PassStore()
        inputs = [_tuple_set(label, [10.0, 20.0]) for label in "ab"]
        pipeline = Pipeline(
            [
                FilterOperator("filter", predicate=lambda r: r.value("speed") > 5),
                AggregateOperator("aggregate"),
            ],
            store=store,
        )
        result = pipeline.run(inputs)
        assert result.stages == ["filter", "aggregate"]
        assert result.count() == 4
        assert len(store) == 6  # 2 raw + 4 derived
        final = result.final_outputs()
        assert all(ts.provenance.get("stage") == "aggregated" for ts in final)

    def test_fan_in_stage(self):
        store = PassStore()
        inputs = [_tuple_set(label, [10.0]) for label in "abc"]
        pipeline = Pipeline(
            [MergeOperator("merge"), AggregateOperator("aggregate")],
            store=store,
            fan_in_stages={"merge"},
        )
        result = pipeline.run(inputs)
        assert len(result.outputs_by_stage["merge"]) == 1
        merged = result.outputs_by_stage["merge"][0]
        assert len(merged.provenance.ancestors) == 3

    def test_lineage_depth_matches_stage_count(self):
        store = PassStore()
        inputs = [_tuple_set("a", [10.0])]
        pipeline = Pipeline(
            [
                FilterOperator("s1", predicate=lambda r: True),
                FilterOperator("s2", predicate=lambda r: True),
                FilterOperator("s3", predicate=lambda r: True),
            ],
            store=store,
        )
        result = pipeline.run(inputs)
        final = result.final_outputs()[0]
        assert store.graph.depth(final.pname) == 3


class TestTaintAnalysis:
    def _store_with_pipeline(self):
        store = PassStore()
        inputs = [_tuple_set(label, [10.0, 20.0]) for label in "ab"]
        pipeline = Pipeline(
            [
                CalibrationOperator("calibrate", quantity="speed", gain=1.1),
                AggregateOperator("aggregate"),
            ],
            store=store,
        )
        result = pipeline.run(inputs)
        return store, inputs, result

    def test_tainted_by_data(self):
        store, inputs, result = self._store_with_pipeline()
        taint = TaintAnalysis(store)
        tainted = taint.tainted_by_data(inputs[0].pname)
        assert inputs[0].pname in tainted
        assert len(tainted) == 3  # itself + its calibrated + its aggregate
        assert inputs[1].pname not in tainted

    def test_tainted_by_agent(self):
        store, inputs, result = self._store_with_pipeline()
        taint = TaintAnalysis(store)
        tainted = taint.tainted_by_agent("calibrate", kind="program")
        calibrated = store.query(AgentIs("calibrate"))
        assert set(calibrated).issubset(tainted)
        # Aggregates derived from calibrated data are also tainted.
        assert len(tainted) == 4

    def test_untainted_complement(self):
        store, inputs, _ = self._store_with_pipeline()
        taint = TaintAnalysis(store)
        tainted = taint.tainted_by_data(inputs[0].pname)
        clean = taint.untainted(store.pnames(), tainted)
        assert inputs[1].pname in clean
        assert len(clean) == len(store) - len(tainted)

    def test_taint_report(self):
        store, inputs, _ = self._store_with_pipeline()
        report = TaintAnalysis(store).taint_report(inputs[0].pname)
        assert report["tainted_count"] == 3
        assert 0.0 < report["fraction"] <= 1.0


class TestVersionedRepository:
    @pytest.fixture
    def repo(self):
        repo = VersionedRepository(name="demo")
        t = Timestamp(0.0)
        repo.commit("main.c", ["a", "b"], "alice", t, tags=("Release 1.0",))
        repo.commit("main.c", ["a", "b", "c"], "bob", t + 100)
        repo.commit("main.c", ["a", "c"], "carol", t + 200, tags=("Release 1.1",))
        repo.commit("util.c", ["x"], "alice", t + 50)
        return repo

    def test_commit_validation(self, repo):
        with pytest.raises(ConfigurationError):
            repo.commit("", ["a"], "alice", Timestamp(1.0))

    def test_head_and_as_of(self, repo):
        assert repo.head("main.c").revision == 3
        assert repo.as_of("main.c", Timestamp(150.0)).revision == 2

    def test_as_of_before_creation_raises(self, repo):
        with pytest.raises(UnknownEntityError):
            repo.as_of("util.c", Timestamp(0.0))

    def test_changes_since(self, repo):
        assert [c.revision for c in repo.changes_since("main.c", Timestamp(50.0))] == [2, 3]

    def test_blame_attributes_lines(self, repo):
        origins = {origin.line: origin for origin in repo.blame("main.c")}
        assert origins["a"].revision == 1
        assert origins["c"].revision == 2

    def test_who_removed(self, repo):
        removal = repo.who_removed("main.c", "b")
        assert removal.revision == 3
        assert removal.author == "carol"
        assert repo.who_removed("main.c", "a") is None

    def test_tagged(self, repo):
        assert [c.revision for c in repo.tagged("Release 1.1")] == [3]

    def test_unknown_file_raises(self, repo):
        with pytest.raises(UnknownEntityError):
            repo.head("missing.c")

    def test_revisions_by_author_via_store(self, repo):
        alice = repo.revisions_by_author("alice")
        assert len(alice) == 2

    def test_revision_lineage_is_full_history(self, repo):
        lineage = repo.revision_lineage("main.c")
        assert len(lineage) == 3

    def test_store_query_by_file(self, repo):
        hits = repo.store.query(AttributeEquals("file", "main.c"))
        assert len(hits) == 3
