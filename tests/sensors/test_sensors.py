"""Tests for sensor nodes, networks and the six domain workloads."""

from __future__ import annotations

import random

import pytest

from repro.core import GeoPoint, PassStore, Timestamp
from repro.errors import ConfigurationError, UnknownEntityError
from repro.sensors import SensorNetwork, SensorNode, SensorSpec
from repro.sensors.workloads import (
    MedicalWorkload,
    StructuralWorkload,
    SupplyChainWorkload,
    TrafficWorkload,
    VolcanoWorkload,
    WeatherWorkload,
    grid_locations,
)

LOCATION = GeoPoint(51.5, -0.12)


def _model(node, when, rng):
    return {"value": rng.random()}


def _node(sensor_id="s1", period=60.0, failure_rate=0.0):
    return SensorNode(
        sensor_id=sensor_id,
        spec=SensorSpec("thermometer", "t-1000", sample_period_seconds=period),
        location=LOCATION,
        value_model=_model,
        failure_rate=failure_rate,
    )


class TestSensorNode:
    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            SensorSpec("x", "y", sample_period_seconds=0.0)

    def test_node_validation(self):
        with pytest.raises(ConfigurationError):
            SensorNode("", SensorSpec("a", "b"), LOCATION, _model)
        with pytest.raises(ConfigurationError):
            SensorNode("s", SensorSpec("a", "b"), LOCATION, _model, jitter_fraction=1.5)
        with pytest.raises(ConfigurationError):
            SensorNode("s", SensorSpec("a", "b"), LOCATION, _model, failure_rate=1.0)

    def test_reading_count_matches_period(self):
        node = _node(period=60.0)
        readings = list(node.readings(Timestamp(0.0), 600.0, random.Random(1)))
        assert len(readings) == 10

    def test_readings_within_interval(self):
        node = _node(period=60.0)
        readings = list(node.readings(Timestamp(100.0), 300.0, random.Random(1)))
        assert all(100.0 <= r.timestamp.seconds < 400.0 for r in readings)

    def test_failure_rate_drops_samples(self):
        healthy = list(_node(failure_rate=0.0).readings(Timestamp(0.0), 6000.0, random.Random(2)))
        flaky = list(_node(failure_rate=0.5).readings(Timestamp(0.0), 6000.0, random.Random(2)))
        assert len(flaky) < len(healthy)

    def test_duration_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            list(_node().readings(Timestamp(0.0), 0.0, random.Random(1)))

    def test_firmware_history(self):
        node = _node()
        node.upgrade_firmware(Timestamp(100.0), "2.0")
        node.upgrade_firmware(Timestamp(500.0), "3.0")
        assert node.firmware_at(Timestamp(0.0)) == "1.0"
        assert node.firmware_at(Timestamp(250.0)) == "2.0"
        assert node.firmware_at(Timestamp(9999.0)) == "3.0"
        assert len(node.firmware_history()) == 3

    def test_firmware_upgrade_requires_version(self):
        with pytest.raises(ConfigurationError):
            _node().upgrade_firmware(Timestamp(1.0), "")

    def test_provenance_attributes(self):
        attributes = _node().provenance_attributes()
        assert attributes["sensor_type"] == "thermometer"
        assert attributes["location"] == LOCATION


class TestSensorNetwork:
    def _network(self, nodes=2):
        network = SensorNetwork("test-net", "traffic", window_seconds=300.0, seed=1)
        for index in range(nodes):
            network.add_node(_node(sensor_id=f"s{index}"))
        return network

    def test_requires_name_and_domain(self):
        with pytest.raises(ConfigurationError):
            SensorNetwork("", "traffic")

    def test_duplicate_node_rejected(self):
        network = self._network(1)
        with pytest.raises(ConfigurationError):
            network.add_node(_node(sensor_id="s0"))

    def test_unknown_node_lookup(self):
        with pytest.raises(UnknownEntityError):
            self._network().node("missing")

    def test_readings_require_nodes(self):
        network = SensorNetwork("empty", "traffic")
        with pytest.raises(ConfigurationError):
            network.readings(Timestamp(0.0), 100.0)

    def test_readings_are_time_ordered(self):
        readings = self._network().readings(Timestamp(0.0), 1200.0)
        times = [r.timestamp.seconds for r in readings]
        assert times == sorted(times)

    def test_tuple_sets_carry_network_provenance(self):
        sets = self._network().tuple_sets(Timestamp(0.0), 900.0)
        assert len(sets) == 3
        record = sets[0].provenance
        assert record.get("network") == "test-net"
        assert record.get("domain") == "traffic"
        assert record.get("location") is not None
        assert record.get("contributing_sensors") == ("s0", "s1")
        assert record.agents[0].name == "test-net"

    def test_centroid(self):
        assert self._network().centroid() == LOCATION

    def test_reproducible_with_same_seed(self):
        a = SensorNetwork("n", "traffic", seed=5)
        b = SensorNetwork("n", "traffic", seed=5)
        for network in (a, b):
            network.add_node(
                SensorNode("s0", SensorSpec("t", "m"), LOCATION, _model)
            )
        sets_a = a.tuple_sets(Timestamp(0.0), 600.0)
        sets_b = b.tuple_sets(Timestamp(0.0), 600.0)
        assert [ts.pname for ts in sets_a] == [ts.pname for ts in sets_b]


class TestGridLocations:
    def test_count_and_spread(self):
        points = grid_locations(GeoPoint(0.0, 0.0), 9, spacing_degrees=0.1)
        assert len(points) == 9
        assert len({(p.latitude, p.longitude) for p in points}) == 9

    def test_requires_positive_count(self):
        with pytest.raises(ConfigurationError):
            grid_locations(GeoPoint(0.0, 0.0), 0)


WORKLOADS = [
    (TrafficWorkload, {"stations_per_city": 2}, 1.0),
    (WeatherWorkload, {"stations_per_region": 2}, 1.0),
    (MedicalWorkload, {"patients": 2}, 0.25),
    (VolcanoWorkload, {"stations": 4}, 3.0),
    (StructuralWorkload, {"sensors_per_structure": 2}, 1.0),
    (SupplyChainWorkload, {"shipments": 2}, 2.0),
]


@pytest.mark.parametrize("workload_class, kwargs, hours", WORKLOADS)
class TestWorkloads:
    def test_produces_raw_and_ingestible_sets(self, workload_class, kwargs, hours):
        workload = workload_class(seed=3, **kwargs)
        raw, derived = workload.all_sets(hours=hours)
        assert raw, "every workload must produce raw tuple sets"
        store = PassStore()
        for tuple_set in raw + derived:
            store.ingest(tuple_set)
        assert len(store) == len({ts.pname for ts in raw + derived})
        assert store.verify_invariants() == []

    def test_derived_sets_reference_raw_ancestors(self, workload_class, kwargs, hours):
        workload = workload_class(seed=3, **kwargs)
        raw, derived = workload.all_sets(hours=hours)
        raw_pnames = {ts.pname for ts in raw}
        for tuple_set in derived:
            assert not tuple_set.provenance.is_raw()
        if derived:
            referenced = set()
            for tuple_set in derived:
                referenced.update(tuple_set.provenance.ancestors)
            assert referenced & raw_pnames

    def test_query_suite_executes(self, workload_class, kwargs, hours):
        workload = workload_class(seed=3, **kwargs)
        raw, derived = workload.all_sets(hours=hours)
        store = PassStore()
        for tuple_set in raw + derived:
            store.ingest(tuple_set)
        for name, query in workload.query_suite().items():
            results = store.query(query)
            assert isinstance(results, list), name

    def test_deterministic_given_seed(self, workload_class, kwargs, hours):
        first = workload_class(seed=11, **kwargs).tuple_sets(hours=hours)
        second = workload_class(seed=11, **kwargs).tuple_sets(hours=hours)
        assert [ts.pname for ts in first] == [ts.pname for ts in second]

    def test_describe_reports_basics(self, workload_class, kwargs, hours):
        workload = workload_class(seed=3, **kwargs)
        facts = workload.describe()
        assert facts["domain"] == workload.domain
        assert facts["sensors"] > 0


class TestWorkloadSpecifics:
    def test_traffic_rejects_unknown_city(self):
        with pytest.raises(ValueError):
            TrafficWorkload(cities=("atlantis",))

    def test_weather_rejects_unknown_region(self):
        with pytest.raises(ValueError):
            WeatherWorkload(regions=("atlantis",))

    def test_structural_rejects_unknown_structure(self):
        with pytest.raises(ValueError):
            StructuralWorkload(structures=("eiffel-tower",))

    def test_traffic_multi_city_has_distinct_locations(self):
        workload = TrafficWorkload(seed=1, cities=("london", "boston"), stations_per_city=2)
        centroids = [network.centroid() for network in workload.networks]
        assert centroids[0].distance_km(centroids[1]) > 1000.0

    def test_medical_patient_assignment(self):
        workload = MedicalWorkload(seed=1, patients=4, emts=2)
        assert workload.emt_for("patient-000") == "emt-00"
        assert workload.emt_for("patient-001") == "emt-01"

    def test_medical_derived_keeps_patient_attribute(self):
        workload = MedicalWorkload(seed=1, patients=2)
        raw, derived = workload.all_sets(hours=0.25)
        assert any(ts.provenance.get("patient") is not None for ts in derived)

    def test_volcano_events_fan_in_when_tremor_occurs(self):
        workload = VolcanoWorkload(seed=5, stations=8)
        raw, derived = workload.all_sets(hours=4.0)
        assert derived, "four hours include a tremor episode, so events should exist"
        assert all(len(ts.provenance.ancestors) >= 2 for ts in derived)

    def test_supply_chain_shipments_have_distinct_chains(self):
        workload = SupplyChainWorkload(seed=2, shipments=3)
        raw, derived = workload.all_sets(hours=2.0)
        chains = [ts for ts in derived if ts.provenance.get("operator") == "chain-of-custody-builder"]
        assert len(chains) == 3
        assert len({ts.pname for ts in chains}) == 3
