"""Tests for privacy aggregation and access-control policies."""

from __future__ import annotations

import pytest

from repro.core import AttributeEquals, PassStore, ProvenanceRecord, SensorReading, Timestamp, TupleSet
from repro.errors import ConfigurationError, PolicyError
from repro.security import AccessRule, PolicyEngine, Principal, PrivacyAggregator
from repro.sensors.workloads import MedicalWorkload


def _patient_set(patient: str, incident: str = "mci-1", heart_rate: float = 90.0):
    readings = [
        SensorReading(f"{patient}-spo2", Timestamp(float(i)), {"heart_rate": heart_rate + i})
        for i in range(3)
    ]
    record = ProvenanceRecord(
        {
            "domain": "medical",
            "patient": patient,
            "emt": "emt-00",
            "incident": incident,
            "window_start": Timestamp(0.0),
            "window_end": Timestamp(60.0),
        }
    )
    return TupleSet(readings, record)


class TestPrincipalAndRules:
    def test_principal_validation(self):
        with pytest.raises(PolicyError):
            Principal("", "doctor")

    def test_rule_validation(self):
        with pytest.raises(PolicyError):
            AccessRule("")

    def test_rule_governs_by_predicate(self):
        rule = AccessRule("medical-only", applies_to=AttributeEquals("domain", "medical"))
        medical = _patient_set("p1").provenance
        other = ProvenanceRecord({"domain": "traffic"})
        assert rule.governs(medical.pname(), medical)
        assert not rule.governs(other.pname(), other)

    def test_rule_permits_by_role_and_purpose(self):
        rule = AccessRule("r", allowed_roles={"doctor"}, allowed_purposes={"treatment"})
        assert rule.permits(Principal("d", "doctor", purposes={"treatment"}))
        assert not rule.permits(Principal("d", "doctor", purposes={"billing"}))
        assert not rule.permits(Principal("n", "journalist", purposes={"treatment"}))


class TestPolicyEngine:
    @pytest.fixture
    def engine(self):
        return PolicyEngine(
            rules=[
                AccessRule(
                    "treating-clinicians",
                    applies_to=AttributeEquals("domain", "medical"),
                    allowed_roles={"doctor", "emt"},
                ),
                AccessRule(
                    "public-health-aggregates",
                    applies_to=AttributeEquals("domain", "medical"),
                    allowed_roles={"researcher"},
                    aggregate_only=True,
                ),
            ],
            protected_domains={"medical"},
        )

    def test_clinician_allowed_raw_access(self, engine):
        record = _patient_set("p1").provenance
        decision = engine.check(Principal("dr-x", "doctor"), record.pname(), record)
        assert decision.allowed and not decision.aggregate_only
        assert decision.rule == "treating-clinicians"

    def test_researcher_gets_aggregate_only(self, engine):
        record = _patient_set("p1").provenance
        decision = engine.check(Principal("r", "researcher"), record.pname(), record)
        assert decision.allowed and decision.aggregate_only

    def test_unmatched_principal_denied_for_protected_domain(self, engine):
        record = _patient_set("p1").provenance
        decision = engine.check(Principal("journalist", "press"), record.pname(), record)
        assert not decision.allowed

    def test_unprotected_domain_default_allows(self, engine):
        record = ProvenanceRecord({"domain": "traffic", "city": "london"})
        decision = engine.check(Principal("anyone", "public"), record.pname(), record)
        assert decision.allowed

    def test_deny_rule_wins(self):
        engine = PolicyEngine(
            rules=[
                AccessRule(
                    "embargoed",
                    applies_to=AttributeEquals("incident", "mci-1"),
                    allowed_roles={"press"},
                    allow=False,
                ),
            ]
        )
        record = _patient_set("p1").provenance
        decision = engine.check(Principal("reporter", "press"), record.pname(), record)
        assert not decision.allowed

    def test_enforce_raises_on_denial(self, engine):
        record = _patient_set("p1").provenance
        with pytest.raises(PolicyError):
            engine.enforce(Principal("journalist", "press"), record.pname(), record)

    def test_audit_log_records_decisions(self, engine):
        record = _patient_set("p1").provenance
        engine.check(Principal("dr-x", "doctor"), record.pname(), record)
        engine.check(Principal("journalist", "press"), record.pname(), record)
        log = engine.audit_log()
        assert len(log) == 2
        assert engine.denials() == 1
        assert log[0]["principal"] == "dr-x"


class TestPrivacyAggregator:
    def test_configuration_validation(self):
        with pytest.raises(ConfigurationError):
            PrivacyAggregator(group_by=[], identifying_attributes=["patient"])
        with pytest.raises(ConfigurationError):
            PrivacyAggregator(group_by=["incident"], identifying_attributes=[])
        with pytest.raises(ConfigurationError):
            PrivacyAggregator(group_by=["incident"], identifying_attributes=["patient"], k=0)

    def test_small_groups_suppressed(self):
        aggregator = PrivacyAggregator(
            group_by=["incident"], identifying_attributes=["patient", "emt"], k=3
        )
        report = aggregator.aggregate([_patient_set("p1"), _patient_set("p2")])
        assert report.groups_published == 0
        assert report.suppressed_groups == 1
        assert report.suppression_rate() == 1.0

    def test_large_groups_published_without_identities(self):
        aggregator = PrivacyAggregator(
            group_by=["incident"], identifying_attributes=["patient", "emt"], k=3
        )
        members = [_patient_set(f"p{i}") for i in range(4)]
        report = aggregator.aggregate(members)
        assert report.groups_published == 1
        aggregate = report.aggregates[0]
        assert not aggregator.leaks_identity(aggregate)
        assert aggregate.provenance.get("population") == 4
        assert aggregate.provenance.get("k") == 3
        assert aggregate.provenance.get("stage") == "privacy-aggregate"

    def test_aggregate_provenance_lists_every_member(self):
        aggregator = PrivacyAggregator(
            group_by=["incident"], identifying_attributes=["patient"], k=2
        )
        members = [_patient_set(f"p{i}") for i in range(3)]
        report = aggregator.aggregate(members)
        ancestors = set(report.aggregates[0].provenance.ancestors)
        assert ancestors == {ts.pname for ts in members}

    def test_summary_values_computed(self):
        aggregator = PrivacyAggregator(
            group_by=["incident"], identifying_attributes=["patient"], k=2
        )
        members = [_patient_set("p1", heart_rate=80.0), _patient_set("p2", heart_rate=100.0)]
        aggregate = aggregator.aggregate(members).aggregates[0]
        summary = aggregate.readings[0]
        assert summary.value("heart_rate_count") == 6
        assert 80.0 < summary.value("heart_rate_mean") < 103.0

    def test_groups_split_by_group_by_attribute(self):
        aggregator = PrivacyAggregator(
            group_by=["incident"], identifying_attributes=["patient"], k=2
        )
        members = [
            _patient_set("p1", incident="mci-1"),
            _patient_set("p2", incident="mci-1"),
            _patient_set("p3", incident="mci-2"),
        ]
        report = aggregator.aggregate(members)
        assert report.groups_published == 1
        assert report.suppressed_groups == 1

    def test_end_to_end_with_medical_workload_and_store(self):
        workload = MedicalWorkload(seed=3, patients=4)
        raw = workload.tuple_sets(hours=0.25)
        aggregator = PrivacyAggregator(
            group_by=["incident"], identifying_attributes=["patient", "emt"], k=3
        )
        report = aggregator.aggregate(raw)
        assert report.groups_published == 1
        store = PassStore()
        for tuple_set in raw:
            store.ingest(tuple_set)
        for aggregate in report.aggregates:
            store.ingest(aggregate)
        published = store.query(AttributeEquals("stage", "privacy-aggregate"))
        assert len(published) == 1
        # The aggregate's ancestry reaches back to the individual patients'
        # raw windows without exposing them in its own attributes.
        assert store.ancestors(published[0])
