"""Property-based round-trip tests for the PASS wire protocol.

Everything that crosses a ``pass://`` connection must survive
serialization *exactly*: the full predicate algebra, queries, window
specs, records, tuple sets, results and explain trees.  Hypothesis
drives arbitrary instances through ``*_to_wire`` -> JSON bytes ->
``*_from_wire`` and asserts identity; a parallel set of checks pins the
framing layer and the stable error-code table (part of the protocol
contract -- renaming a code is a wire-version break).
"""

from __future__ import annotations

import io
import json
import string
import struct

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.attributes import GeoPoint, Timestamp
from repro.core.provenance import PName, ProvenanceRecord
from repro.core.query import (
    TRUE,
    AgentIs,
    AncestorOf,
    And,
    AnnotationMatches,
    AttributeContains,
    AttributeEquals,
    AttributeExists,
    AttributeIn,
    AttributeRange,
    DerivedFrom,
    IsRaw,
    NearLocation,
    Not,
    Or,
    Query,
    TimeWindowOverlaps,
)
from repro.core.tupleset import SensorReading, TupleSet
from repro.errors import (
    ERROR_CODES,
    PassError,
    ProtocolError,
    error_code,
    error_from_code,
)
from repro.query.explain import Explain
from repro.server import protocol
from repro.stream.subscription import LineageEvent, MatchEvent, WindowEvent
from repro.stream.windows import AGGREGATES, WindowSpec

COMMON = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
names = st.text(alphabet=string.ascii_lowercase + "_", min_size=1, max_size=12)
scalars = st.one_of(
    st.integers(min_value=-(10**9), max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
    st.booleans(),
    st.builds(Timestamp, st.floats(min_value=0, max_value=10**9, allow_nan=False)),
    st.builds(
        GeoPoint,
        st.floats(min_value=-90, max_value=90, allow_nan=False),
        st.floats(min_value=-180, max_value=180, allow_nan=False),
    ),
)
pnames = st.binary(min_size=32, max_size=32).map(lambda raw: PName(raw.hex()))

leaf_predicates = st.one_of(
    st.just(TRUE),
    st.builds(AttributeEquals, names, scalars),
    st.builds(
        AttributeRange,
        names,
        low=scalars,  # at least one bound is required; high may stay open
        high=st.none() | scalars,
        include_low=st.booleans(),
        include_high=st.booleans(),
    ),
    st.builds(AttributeContains, names, st.text(min_size=1, max_size=10)),
    st.builds(AttributeIn, names, st.lists(scalars, min_size=1, max_size=4).map(tuple)),
    st.builds(AttributeExists, names),
    st.builds(
        NearLocation,
        names,
        st.builds(
            GeoPoint,
            st.floats(min_value=-90, max_value=90, allow_nan=False),
            st.floats(min_value=-180, max_value=180, allow_nan=False),
        ),
        st.floats(min_value=0.1, max_value=20000, allow_nan=False),
    ),
    st.builds(
        TimeWindowOverlaps,
        st.builds(Timestamp, st.floats(min_value=0, max_value=10**8, allow_nan=False)),
        st.builds(
            Timestamp, st.floats(min_value=10**8, max_value=10**9, allow_nan=False)
        ),
        start_attr=names,
        end_attr=names,
    ),
    st.builds(AgentIs, st.none() | names, st.none() | names, st.none() | names),
    st.builds(AnnotationMatches, names, st.none() | scalars),
    st.builds(IsRaw, st.booleans()),
    st.builds(DerivedFrom, pnames, st.booleans()),
    st.builds(AncestorOf, pnames, st.booleans()),
)
predicates = st.recursive(
    leaf_predicates,
    lambda children: st.one_of(
        st.builds(And, st.lists(children, min_size=1, max_size=3).map(tuple)),
        st.builds(Or, st.lists(children, min_size=1, max_size=3).map(tuple)),
        st.builds(Not, children),
    ),
    max_leaves=8,
)
queries = st.builds(
    Query,
    predicate=predicates,
    limit=st.none() | st.integers(min_value=1, max_value=1000),
    include_removed=st.booleans(),
    order_by=st.none() | names,
)


@st.composite
def window_specs(draw):
    size = draw(st.floats(min_value=1.0, max_value=86400.0, allow_nan=False))
    slide = draw(st.none() | st.floats(min_value=0.5, max_value=size, allow_nan=False))
    aggregate = draw(st.sampled_from(AGGREGATES))
    value_attr = draw(names) if aggregate != "count" else draw(st.none() | names)
    return WindowSpec(
        size_seconds=size,
        slide_seconds=slide,
        aggregate=aggregate,
        value_attr=value_attr,
        group_by=draw(st.none() | names),
        time_attr=draw(names),
    )


records = st.builds(
    ProvenanceRecord,
    st.dictionaries(names, scalars, min_size=1, max_size=5),
    ancestors=st.lists(pnames, max_size=3),
)
readings = st.builds(
    SensorReading,
    names,
    st.builds(Timestamp, st.floats(min_value=0, max_value=10**9, allow_nan=False)),
    st.dictionaries(names, scalars, min_size=1, max_size=4),
    st.none()
    | st.builds(
        GeoPoint,
        st.floats(min_value=-90, max_value=90, allow_nan=False),
        st.floats(min_value=-180, max_value=180, allow_nan=False),
    ),
)
tuple_sets = st.builds(TupleSet, st.lists(readings, max_size=4), records)


def _through_json(payload):
    """The wire's own representation: the dict after a JSON round trip."""
    return json.loads(json.dumps(payload, separators=(",", ":")))


# ----------------------------------------------------------------------
# Round trips
# ----------------------------------------------------------------------
@COMMON
@given(predicate=predicates)
def test_predicate_round_trip(predicate):
    wire = _through_json(protocol.predicate_to_wire(predicate))
    assert protocol.predicate_from_wire(wire) == predicate


@COMMON
@given(query=queries)
def test_query_round_trip(query):
    wire = _through_json(protocol.query_to_wire(query))
    assert protocol.query_from_wire(wire) == query


@COMMON
@given(window=st.none() | window_specs())
def test_window_round_trip(window):
    wire = _through_json(protocol.window_to_wire(window))
    assert protocol.window_from_wire(wire) == window


@COMMON
@given(record=records)
def test_record_round_trip(record):
    wire = _through_json(protocol.record_to_wire(record))
    decoded = protocol.record_from_wire(wire)
    # Identity is the contract: the round trip must preserve the pname.
    assert decoded.pname() == record.pname()
    assert decoded.to_dict() == record.to_dict()


@COMMON
@given(tuple_set=tuple_sets)
def test_tuple_set_round_trip(tuple_set):
    wire = _through_json(protocol.tuple_set_to_wire(tuple_set))
    decoded = protocol.tuple_set_from_wire(wire)
    assert decoded.pname == tuple_set.pname
    assert list(decoded) == list(tuple_set)


@COMMON
@given(
    pname_list=st.lists(pnames, max_size=5),
    latency=st.floats(min_value=0, max_value=10**6, allow_nan=False),
    messages=st.integers(min_value=0, max_value=10**6),
    notes=st.lists(st.text(max_size=30), max_size=3),
    total=st.none() | st.integers(min_value=0, max_value=10**6),
    offset=st.integers(min_value=0, max_value=1000),
)
def test_result_round_trip(pname_list, latency, messages, notes, total, offset):
    from repro.api.results import Cost, Result

    result = Result(
        records=pname_list,
        cost=Cost(latency_ms=latency, messages=messages, sites=["a", "b"]),
        notes=notes,
        total=total,
        offset=offset,
    )
    wire = _through_json(protocol.result_to_wire(result))
    assert protocol.result_from_wire(wire) == result


def test_explain_round_trip_with_children():
    child = Explain(
        site="dht-3",
        path="attr-eq via index",
        path_kind="attr-eq",
        estimated_rows=10,
        actual_rows=7,
        rows_scanned=10,
        cache_hit=True,
        used_index=True,
        shape="eq(city)",
        notes=["candidate pruning"],
    )
    parent = Explain(
        site="dht",
        path="scatter-gather",
        path_kind="scatter",
        estimated_rows=40,
        actual_rows=7,
        rows_scanned=40,
        children=[child],
    )
    wire = _through_json(protocol.explain_to_wire(parent))
    decoded = protocol.explain_from_wire(wire)
    assert decoded.to_dict() == parent.to_dict()
    assert decoded.children[0].site == "dht-3"


@COMMON
@given(record=records, sub=names)
def test_event_round_trips(record, sub):
    match = MatchEvent(subscription_id=sub, pname=record.pname(), record=record)
    decoded = protocol.event_from_wire(_through_json(protocol.event_to_wire(match)))
    assert isinstance(decoded, MatchEvent)
    assert (decoded.subscription_id, decoded.pname) == (sub, record.pname())

    lineage = LineageEvent(
        subscription_id=sub, watched=record.pname(), pname=record.pname(), record=record
    )
    decoded = protocol.event_from_wire(_through_json(protocol.event_to_wire(lineage)))
    assert isinstance(decoded, LineageEvent)
    assert decoded.watched == record.pname()

    window = WindowEvent(
        subscription_id=sub,
        window_start=0.0,
        window_end=300.0,
        group="london",
        aggregate="mean",
        value=41.5,
        count=3,
    )
    decoded = protocol.event_from_wire(_through_json(protocol.event_to_wire(window)))
    assert isinstance(decoded, WindowEvent)
    assert (decoded.group, decoded.value, decoded.count) == ("london", 41.5, 3)


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
@COMMON
@given(
    payloads=st.lists(
        st.dictionaries(names, st.one_of(st.integers(), st.text(max_size=10))),
        min_size=1,
        max_size=5,
    )
)
def test_framing_round_trip_stream(payloads):
    stream = io.BytesIO(b"".join(protocol.encode_frame(p) for p in payloads))
    decoded = []
    while True:
        frame = protocol.read_frame(stream)
        if frame is None:
            break
        decoded.append(frame)
    assert decoded == payloads


def test_eof_mid_frame_is_a_protocol_error():
    whole = protocol.encode_frame({"op": "ping"})
    for cut in (2, len(whole) - 1):  # inside the header, inside the body
        with pytest.raises(ProtocolError):
            protocol.read_frame(io.BytesIO(whole[:cut]))


def test_clean_eof_is_none():
    assert protocol.read_frame(io.BytesIO(b"")) is None


def test_oversized_frame_is_refused_without_allocating():
    header = struct.pack(">I", protocol.MAX_FRAME_BYTES + 1)
    with pytest.raises(ProtocolError):
        protocol.frame_length(header)


def test_non_object_bodies_are_protocol_errors():
    for body in (b"[1,2]", b'"x"', b"42", b"\xff\xfe", b"{not json"):
        with pytest.raises(ProtocolError):
            protocol.decode_body(body)


# ----------------------------------------------------------------------
# Stable error codes
# ----------------------------------------------------------------------
def test_every_error_code_round_trips_to_the_same_type():
    for code, cls in ERROR_CODES.items():
        assert error_code(cls("boom")) == code
        rebuilt = error_from_code(code, "boom")
        assert type(rebuilt) is cls
        assert str(rebuilt) == "boom"


def test_unknown_errors_degrade_to_the_generic_code():
    assert error_code(RuntimeError("?")) == "error"
    assert type(error_from_code("no-such-code", "?")) is PassError


def test_wire_error_envelope_shape():
    envelope = protocol.error_to_wire(ProtocolError("bad frame"))
    assert envelope == {"code": "protocol", "message": "bad frame"}
