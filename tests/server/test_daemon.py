"""Daemon lifecycle, auth, tenancy, jobs and wire-level misbehaviour.

These tests drive :class:`~repro.server.daemon.PassDaemon` the way a
deployment would: embedded ``start()``/``stop()`` around real TCP
connections, plus raw-socket clients for the frames a well-behaved
:class:`RemoteClient` would never send (bad framing, missing hello,
unknown ops).
"""

from __future__ import annotations

import socket
import time

import pytest

from repro.api import connect
from repro.api.dsl import Q
from repro.core import ProvenanceRecord, Timestamp, TupleSet
from repro.errors import (
    AuthError,
    NetworkError,
    PassError,
    UnknownEntityError,
)
from repro.server import PassDaemon, protocol


def _tuple_set(tag: str, sequence: int = 0, ancestors=()) -> TupleSet:
    record = ProvenanceRecord(
        {
            "domain": "daemon-test",
            "tag": tag,
            "sequence": sequence,
            "window_start": Timestamp(60.0 * sequence),
            "window_end": Timestamp(60.0 * (sequence + 1)),
        },
        ancestors=list(ancestors),
    )
    return TupleSet([], record)


def _raw_request(sock: socket.socket, payload: dict) -> dict:
    """One frame out, one frame back, over a bare socket."""
    sock.sendall(protocol.encode_frame(payload))
    stream = sock.makefile("rb")
    frame = protocol.read_frame(stream)
    assert frame is not None, "daemon closed the connection without answering"
    return frame


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------
def test_start_reports_the_bound_address_and_stop_is_idempotent():
    daemon = PassDaemon()
    address = daemon.start()
    assert address.port != 0
    assert address.url == f"pass://{address.host}:{address.port}"
    with pytest.raises(PassError, match="already started"):
        daemon.start()
    daemon.stop()
    daemon.stop()  # second stop is a no-op, not an error


def test_context_manager_serves_and_shuts_down():
    with PassDaemon() as daemon:
        with connect(daemon.address.url) as client:
            assert client.publish(_tuple_set("cm")).total == 1
    # After __exit__ the port no longer accepts connections.
    with pytest.raises(NetworkError):
        connect(daemon.address.url)


def test_startup_failure_surfaces_as_a_typed_error():
    blocker = socket.socket()
    blocker.bind(("127.0.0.1", 0))
    blocker.listen(1)
    try:
        daemon = PassDaemon(port=blocker.getsockname()[1])
        with pytest.raises(PassError, match="failed to start"):
            daemon.start()
        # The failed daemon must be restartable-clean: stop() is safe.
        daemon.stop()
    finally:
        blocker.close()


def test_graceful_shutdown_says_goodbye_to_live_subscribers():
    daemon = PassDaemon()
    address = daemon.start()
    client = connect(address.url)
    received = []
    subscription = client.subscribe(Q.attr("tag") == "live", callback=received.append)
    client.publish(_tuple_set("live"))
    deadline = time.time() + 5
    while not received and time.time() < deadline:
        time.sleep(0.01)
    assert len(received) == 1, "subscription must be live before the shutdown"

    daemon.stop()  # goodbye push, then EOF

    # The local mirror survives (no use-after-free), but the transport is
    # dead: the next call fails typed, not with a hang or a traceback.
    assert subscription.id in {sub.id for sub in client.subscriptions()}
    with pytest.raises(NetworkError):
        client.stats()
    client.close()


def test_client_disconnect_mid_stream_reclaims_server_subscriptions():
    daemon = PassDaemon()
    address = daemon.start()
    holder = connect(address.url)  # keeps the tenant observable after the drop

    dropper = connect(address.url)
    dropper.subscribe(Q.attr("tag") == "gone")
    dropper.subscribe_descendants(_tuple_set("root").pname)
    tenant_client = daemon._tenants["default"].client
    assert len(tenant_client.subscriptions()) == 2
    dropper.close()  # vanish with both subscriptions still standing

    deadline = time.time() + 5
    while tenant_client.subscriptions() and time.time() < deadline:
        time.sleep(0.01)
    assert tenant_client.subscriptions() == [], "daemon must unsubscribe the dead peer"

    # The surviving connection is unaffected by its neighbour's death.
    assert holder.publish(_tuple_set("still-here")).total == 1
    holder.close()
    daemon.stop()


# ----------------------------------------------------------------------
# Auth
# ----------------------------------------------------------------------
def test_token_auth_rejects_missing_and_unknown_tokens():
    daemon = PassDaemon(tokens={"s3cret": "acme"})
    address = daemon.start()
    try:
        with pytest.raises(AuthError, match="requires a token"):
            connect(address.url)
        with pytest.raises(AuthError, match="unknown token"):
            connect(f"{address.url}?token=wrong")
        with pytest.raises(AuthError, match="not valid for tenant"):
            connect(f"{address.url}?token=s3cret&tenant=other")
        with connect(f"{address.url}?token=s3cret") as client:
            assert client.tenant == "acme"
            assert client.stats()["tenant"] == "acme"
    finally:
        daemon.stop()


def test_auth_failure_closes_the_connection():
    daemon = PassDaemon(tokens={"s3cret": "acme"})
    address = daemon.start()
    try:
        sock = socket.create_connection((address.host, address.port), timeout=5)
        answer = _raw_request(sock, {"id": 1, "op": "hello", "args": {"token": "bad"}})
        assert answer["ok"] is False
        assert answer["error"]["code"] == "auth"
        assert protocol.read_frame(sock.makefile("rb")) is None  # EOF follows
        sock.close()
    finally:
        daemon.stop()


def test_ops_before_hello_are_refused():
    daemon = PassDaemon()
    address = daemon.start()
    try:
        sock = socket.create_connection((address.host, address.port), timeout=5)
        answer = _raw_request(sock, {"id": 1, "op": "stats", "args": {}})
        assert answer["ok"] is False
        assert answer["error"]["code"] == "auth"
        sock.close()
    finally:
        daemon.stop()


# ----------------------------------------------------------------------
# Tenancy
# ----------------------------------------------------------------------
def test_tenants_are_fully_isolated_namespaces():
    daemon = PassDaemon()
    address = daemon.start()
    try:
        with connect(f"{address.url}?tenant=alpha") as alpha, connect(
            f"{address.url}?tenant=beta"
        ) as beta:
            published = alpha.publish(_tuple_set("secret"))
            # beta sees neither the record, the count, nor the lineage.
            assert beta.query(Q.attr("tag") == "secret").total == 0
            assert beta.describe_record(published.first()) is None
            assert beta.stats()["tenant"] == "beta"
            assert alpha.query(Q.attr("tag") == "secret").total == 1
    finally:
        daemon.stop()


def test_malformed_tenant_names_are_rejected():
    daemon = PassDaemon()
    address = daemon.start()
    try:
        with pytest.raises(AuthError, match="malformed tenant"):
            connect(f"{address.url}?tenant=../etc")
    finally:
        daemon.stop()


# ----------------------------------------------------------------------
# Async rebuild jobs
# ----------------------------------------------------------------------
def test_rebuild_job_runs_through_the_status_machine():
    daemon = PassDaemon()
    address = daemon.start()
    try:
        with connect(address.url) as client:
            root = _tuple_set("root")
            client.publish(root)
            client.publish(_tuple_set("child", 1, ancestors=[root.pname]))
            task_id = client.submit_rebuild()
            assert task_id.startswith("task-")
            deadline = time.time() + 5
            while True:
                job = client.job_status(task_id)
                assert job["status"] in {"pending", "running", "completed"}
                if job["status"] == "completed":
                    break
                assert time.time() < deadline, f"job stuck in {job['status']}"
                time.sleep(0.005)
            assert job["stats"]["strategy"]
            # The blocking wrapper reaches the same completed stats.
            assert client.rebuild_lineage_index()["strategy"] == job["stats"]["strategy"]
    finally:
        daemon.stop()


def test_unknown_task_ids_and_cross_tenant_polls_fail_typed():
    daemon = PassDaemon()
    address = daemon.start()
    try:
        with connect(f"{address.url}?tenant=alpha") as alpha, connect(
            f"{address.url}?tenant=beta"
        ) as beta:
            task_id = alpha.submit_rebuild()
            with pytest.raises(UnknownEntityError):
                beta.job_status(task_id)  # jobs are tenant-scoped
            with pytest.raises(UnknownEntityError):
                alpha.job_status("task-999999")
    finally:
        daemon.stop()


# ----------------------------------------------------------------------
# Wire-level misbehaviour
# ----------------------------------------------------------------------
def test_unknown_ops_answer_with_a_protocol_error_and_close():
    daemon = PassDaemon()
    address = daemon.start()
    try:
        sock = socket.create_connection((address.host, address.port), timeout=5)
        _raw_request(sock, {"id": 1, "op": "hello", "args": {}})
        answer = _raw_request(sock, {"id": 2, "op": "frobnicate", "args": {}})
        assert answer["ok"] is False
        assert answer["error"]["code"] == "protocol"
        assert protocol.read_frame(sock.makefile("rb")) is None
        sock.close()
    finally:
        daemon.stop()


def test_undecodable_frames_get_an_error_envelope_then_eof():
    daemon = PassDaemon()
    address = daemon.start()
    try:
        sock = socket.create_connection((address.host, address.port), timeout=5)
        body = b"\xff\xfe not json"
        sock.sendall(len(body).to_bytes(4, "big") + body)
        stream = sock.makefile("rb")
        answer = protocol.read_frame(stream)
        assert answer["ok"] is False
        assert answer["error"]["code"] == "protocol"
        assert protocol.read_frame(stream) is None
        sock.close()
    finally:
        daemon.stop()


def test_typed_store_errors_keep_the_connection_open():
    daemon = PassDaemon()
    address = daemon.start()
    try:
        with connect(address.url) as client:
            from repro.core import SensorReading

            record = _tuple_set("dup").provenance
            client.publish(TupleSet([], record))
            impostor = TupleSet(
                [SensorReading("cam-1", Timestamp(1.0), {"v": 1})], record
            )
            with pytest.raises(PassError):
                client.publish(impostor)  # non-identical data, same provenance
            # Same connection still serves requests afterwards.
            assert client.query(Q.attr("tag") == "dup").total == 1
    finally:
        daemon.stop()
