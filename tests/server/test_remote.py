"""The ``pass://`` client: façade parity with ``memory://`` over a socket.

The contract of :class:`~repro.server.remote.RemoteClient` is that code
written against the in-process façade runs unchanged against a daemon:
same answers, same typed errors, same subscription idioms (callback and
pull-queue), same happens-before ordering between window flushes and
their events.  These tests run each idiom against both targets and
compare.
"""

from __future__ import annotations

import time

import pytest

from repro.api import connect
from repro.api.client import LocalClient, ModelClient
from repro.api.dsl import Q
from repro.core import ProvenanceRecord, SensorReading, Timestamp, TupleSet
from repro.errors import (
    ConfigurationError,
    NetworkError,
    QueryError,
    UnknownEntityError,
)
from repro.server import PassDaemon
from repro.stream.windows import WindowSpec


@pytest.fixture(scope="module")
def daemon():
    with PassDaemon() as running:
        yield running


@pytest.fixture
def remote(daemon, request):
    """A RemoteClient on a fresh tenant per test (no cross-test state)."""
    tenant = request.node.name.replace("[", "-").replace("]", "")
    client = connect(f"{daemon.address.url}?tenant={tenant}")
    yield client
    client.close()


def _sets(count: int, chain: bool = False):
    sets = []
    previous = None
    for index in range(count):
        record = ProvenanceRecord(
            {
                "domain": "remote-test",
                "city": "london" if index % 2 == 0 else "boston",
                "sequence": index,
                "window_start": Timestamp(300.0 * index),
                "window_end": Timestamp(300.0 * (index + 1)),
            },
            ancestors=[previous] if chain and previous is not None else [],
        )
        readings = [
            SensorReading(f"cam-{index}", Timestamp(300.0 * index), {"v": index})
        ]
        sets.append(TupleSet(readings, record))
        previous = record.pname()
    return sets


# ----------------------------------------------------------------------
# Parity with the in-process façade
# ----------------------------------------------------------------------
def test_full_facade_parity_with_memory(remote):
    sets = _sets(12, chain=True)
    with connect("memory://") as local:
        for client in (local, remote):
            client.publish_many(sets)
        for query in (
            Q.attr("city") == "london",
            Q.attr("sequence").between(2, 8),
            Q.derived_from(sets[0].pname),
        ):
            local_result = local.query(query)
            remote_result = remote.query(query)
            assert remote_result.records == local_result.records
            assert remote_result.total == local_result.total
        assert remote.ancestors(sets[-1]).records == local.ancestors(sets[-1]).records
        assert (
            remote.descendants(sets[0]).records == local.descendants(sets[0]).records
        )
        assert remote.locate(sets[3].pname).cost.sites == ["local"]
        local_explain = local.explain(Q.attr("city") == "boston")
        remote_explain = remote.explain(Q.attr("city") == "boston")
        # duration_ms is wall time -- the only legitimately nondeterministic
        # Explain field; everything else must match byte for byte.
        assert remote_explain.duration_ms > 0
        local_dict, remote_dict = local_explain.to_dict(), remote_explain.to_dict()
        local_dict.pop("duration_ms"), remote_dict.pop("duration_ms")
        assert remote_dict == local_dict
        assert remote.describe_record(sets[5].pname).to_dict() == sets[
            5
        ].provenance.to_dict()
        assert remote.supports_lineage is local.supports_lineage


def test_stats_carry_the_remote_target_and_tenant(remote):
    stats = remote.stats()
    assert stats["target"] == "remote+local"
    assert stats["target"] == remote.target
    assert stats["tenant"] == remote.tenant
    assert remote.describe_record(_sets(1)[0].pname) is None


# ----------------------------------------------------------------------
# Typed errors across the wire
# ----------------------------------------------------------------------
def test_remote_errors_re_raise_the_in_process_types(remote):
    from repro.core.provenance import PName

    with pytest.raises(UnknownEntityError):
        remote.ancestors(PName("0" * 64))
    with pytest.raises(QueryError):
        remote.query(Q.attr("sequence").between(None, None))
    with pytest.raises(ConfigurationError):
        remote.subscribe(Q.attr("city") == "x", window=WindowSpec(size_seconds=60.0, aggregate="nope"))


def test_window_spec_validation_happens_before_the_wire(remote):
    # Construction already fails locally -- same type a local caller sees.
    with pytest.raises(ConfigurationError):
        WindowSpec(size_seconds=-1.0)


# ----------------------------------------------------------------------
# Subscriptions across the socket
# ----------------------------------------------------------------------
def test_callback_subscription_streams_matches(remote):
    received = []
    subscription = remote.subscribe(Q.attr("city") == "london", callback=received.append)
    sets = _sets(6)
    remote.publish_many(sets)
    deadline = time.time() + 5
    while len(received) < 3 and time.time() < deadline:
        time.sleep(0.01)
    assert sorted(event.pname.digest for event in received) == sorted(
        ts.pname.digest for ts in sets if ts.provenance.attributes["city"] == "london"
    )
    assert subscription.stats()["delivered"] == 3
    assert remote.unsubscribe(subscription) is True
    assert remote.unsubscribe(subscription) is False  # already gone server-side


def test_pull_queue_subscription_and_flush_ordering(remote):
    subscription = remote.subscribe(
        Q.attr("domain") == "remote-test",
        window=WindowSpec(size_seconds=600.0, aggregate="count"),
    )
    remote.publish_many(_sets(4))  # watermark closes the first window here
    flushed = remote.flush_windows()  # ...and the flush closes the open one
    assert flushed >= 1
    # The daemon pushes window events on the same ordered stream as the
    # flush response, so by the time flush_windows() returned they are
    # already in the local queue -- no sleep, no polling.
    events = subscription.drain()
    assert len(events) == 2
    assert {event.aggregate for event in events} == {"count"}
    assert sum(event.count for event in events) == 4
    assert subscription.id in {sub.id for sub in remote.subscriptions()}


def test_descendant_subscription_pushes_lineage_events(remote):
    root = _sets(1)[0]
    remote.publish(root)
    subscription = remote.subscribe_descendants(root.pname)
    child_record = ProvenanceRecord(
        {"domain": "remote-test", "city": "derived", "sequence": 99},
        ancestors=[root.pname],
    )
    remote.publish(TupleSet([], child_record))
    deadline = time.time() + 5
    events = []
    while not events and time.time() < deadline:
        events = subscription.drain()
        time.sleep(0.01)
    assert [event.watched for event in events] == [root.pname]


# ----------------------------------------------------------------------
# Lifecycle: context managers, idempotent close, dead daemons
# ----------------------------------------------------------------------
def test_every_client_kind_is_a_context_manager_with_idempotent_close(daemon, tmp_path):
    for url in (
        "memory://",
        f"sqlite:///{tmp_path}/close.db",
        "centralized://",
        f"{daemon.address.url}?tenant=closing",
    ):
        client = connect(url)
        assert isinstance(client, (LocalClient, ModelClient)) or client.target.startswith(
            "remote+"
        )
        with client as entered:
            assert entered is client
        client.close()  # second close must be a silent no-op
        client.close()


def test_calls_after_close_fail_typed(daemon):
    client = connect(f"{daemon.address.url}?tenant=after-close")
    client.close()
    with pytest.raises(NetworkError):
        client.stats()


def test_connecting_to_a_dead_port_is_a_network_error():
    probe = PassDaemon()
    address = probe.start()
    probe.stop()
    with pytest.raises(NetworkError):
        connect(address.url)


def test_close_deactivates_local_subscription_mirrors(daemon):
    client = connect(f"{daemon.address.url}?tenant=mirror-close")
    subscription = client.subscribe(Q.attr("city") == "london")
    client.close()
    assert subscription.active is False
