"""Tests for the provenance DAG."""

from __future__ import annotations

import pytest

from repro.core import ProvenanceGraph, ProvenanceRecord
from repro.errors import CycleError, UnknownEntityError


def _pname(label: str):
    return ProvenanceRecord({"label": label}).pname()


@pytest.fixture
def chain_graph():
    """a <- b <- c <- d (each derived from the previous)."""
    graph = ProvenanceGraph()
    names = {label: _pname(label) for label in "abcd"}
    graph.add_edge(names["b"], names["a"])
    graph.add_edge(names["c"], names["b"])
    graph.add_edge(names["d"], names["c"])
    return graph, names


@pytest.fixture
def diamond_graph():
    """raw -> left/right -> merged (fan-out then fan-in)."""
    graph = ProvenanceGraph()
    names = {label: _pname(label) for label in ("raw", "left", "right", "merged")}
    graph.add_edge(names["left"], names["raw"])
    graph.add_edge(names["right"], names["raw"])
    graph.add_edge(names["merged"], names["left"])
    graph.add_edge(names["merged"], names["right"])
    return graph, names


class TestConstruction:
    def test_add_node_idempotent(self):
        graph = ProvenanceGraph()
        node = _pname("x")
        graph.add_node(node)
        graph.add_node(node)
        assert len(graph) == 1

    def test_add_record_creates_edges(self):
        graph = ProvenanceGraph()
        parent = ProvenanceRecord({"label": "parent"})
        child = parent.derive({"label": "child"})
        graph.add_record(child)
        assert parent.pname() in graph
        assert graph.parents(child.pname()) == [parent.pname()]

    def test_self_edge_rejected(self):
        graph = ProvenanceGraph()
        node = _pname("x")
        with pytest.raises(CycleError):
            graph.add_edge(node, node)

    def test_cycle_rejected(self, chain_graph):
        graph, names = chain_graph
        with pytest.raises(CycleError):
            graph.add_edge(names["a"], names["d"])

    def test_unknown_node_queries_raise(self):
        graph = ProvenanceGraph()
        with pytest.raises(UnknownEntityError):
            graph.parents(_pname("missing"))


class TestTraversal:
    def test_parents_and_children(self, diamond_graph):
        graph, names = diamond_graph
        assert set(graph.parents(names["merged"])) == {names["left"], names["right"]}
        assert set(graph.children(names["raw"])) == {names["left"], names["right"]}

    def test_ancestors_full(self, chain_graph):
        graph, names = chain_graph
        assert graph.ancestors(names["d"]) == {names["a"], names["b"], names["c"]}

    def test_ancestors_depth_limited(self, chain_graph):
        graph, names = chain_graph
        assert graph.ancestors(names["d"], max_depth=1) == {names["c"]}
        assert graph.ancestors(names["d"], max_depth=2) == {names["b"], names["c"]}

    def test_descendants(self, chain_graph):
        graph, names = chain_graph
        assert graph.descendants(names["a"]) == {names["b"], names["c"], names["d"]}

    def test_diamond_ancestors_deduplicated(self, diamond_graph):
        graph, names = diamond_graph
        assert graph.ancestors(names["merged"]) == {names["raw"], names["left"], names["right"]}

    def test_roots_and_leaves(self, diamond_graph):
        graph, names = diamond_graph
        assert graph.roots() == [names["raw"]] or set(graph.roots()) == {names["raw"]}
        assert set(graph.leaves()) == {names["merged"]}

    def test_raw_sources(self, diamond_graph):
        graph, names = diamond_graph
        assert graph.raw_sources(names["merged"]) == {names["raw"]}

    def test_raw_source_of_root_is_itself(self, diamond_graph):
        graph, names = diamond_graph
        assert graph.raw_sources(names["raw"]) == {names["raw"]}

    def test_is_ancestor(self, chain_graph):
        graph, names = chain_graph
        assert graph.is_ancestor(names["a"], of=names["d"])
        assert not graph.is_ancestor(names["d"], of=names["a"])

    def test_path_chain(self, chain_graph):
        graph, names = chain_graph
        path = graph.path(names["d"], names["a"])
        assert path[0] == names["d"]
        assert path[-1] == names["a"]
        assert len(path) == 4

    def test_path_missing(self, diamond_graph):
        graph, names = diamond_graph
        other = _pname("unrelated")
        graph.add_node(other)
        assert graph.path(names["merged"], other) is None

    def test_depth(self, chain_graph):
        graph, names = chain_graph
        assert graph.depth(names["a"]) == 0
        assert graph.depth(names["d"]) == 3

    def test_depth_distribution(self, chain_graph):
        graph, names = chain_graph
        assert graph.ancestry_depth_distribution() == {0: 1, 1: 1, 2: 1, 3: 1}

    def test_topological_order(self, diamond_graph):
        graph, names = diamond_graph
        order = graph.topological_order()
        position = {pname.digest: index for index, pname in enumerate(order)}
        assert position[names["raw"].digest] < position[names["left"].digest]
        assert position[names["left"].digest] < position[names["merged"].digest]

    def test_subgraph_edges(self, diamond_graph):
        graph, names = diamond_graph
        edges = graph.subgraph_edges([names["merged"], names["left"]])
        assert (names["merged"], names["left"]) in edges
        assert len(edges) == 1

    def test_edge_count(self, diamond_graph):
        graph, _ = diamond_graph
        assert graph.edge_count() == 4


class TestRemoval:
    def test_removed_nodes_keep_edges(self, chain_graph):
        graph, names = chain_graph
        graph.mark_removed(names["a"])
        assert graph.is_removed(names["a"])
        assert graph.ancestors(names["d"]) == {names["a"], names["b"], names["c"]}

    def test_mark_removed_unknown_node(self):
        graph = ProvenanceGraph()
        with pytest.raises(UnknownEntityError):
            graph.mark_removed(_pname("missing"))
