"""Tests for sensor readings, tuple sets and the time windower."""

from __future__ import annotations

import pytest

from repro.core import Agent, GeoPoint, ProvenanceRecord, SensorReading, Timestamp, TupleSet, TupleSetWindower
from repro.errors import ProvenanceError


def _reading(seconds: float, sensor: str = "s1", **values):
    return SensorReading(
        sensor_id=sensor,
        timestamp=Timestamp(seconds),
        values=values or {"speed": 10.0},
        location=GeoPoint(51.5, -0.1),
    )


class TestSensorReading:
    def test_requires_sensor_id(self):
        with pytest.raises(ProvenanceError):
            SensorReading(sensor_id="", timestamp=Timestamp(0.0))

    def test_requires_timestamp_type(self):
        with pytest.raises(ProvenanceError):
            SensorReading(sensor_id="s", timestamp=1.0)  # type: ignore[arg-type]

    def test_value_lookup_with_default(self):
        reading = _reading(0.0, speed=42.0)
        assert reading.value("speed") == 42.0
        assert reading.value("missing", -1) == -1

    def test_size_accounts_for_values_and_location(self):
        small = SensorReading("s", Timestamp(0.0), {"a": 1})
        large = _reading(0.0, a=1, b=2, c=3)
        assert large.size_bytes() > small.size_bytes()


class TestTupleSet:
    def test_requires_provenance_record(self):
        with pytest.raises(ProvenanceError):
            TupleSet([], provenance="not-a-record")  # type: ignore[arg-type]

    def test_rejects_non_readings(self):
        record = ProvenanceRecord({"a": 1})
        with pytest.raises(ProvenanceError):
            TupleSet(["reading"], record)  # type: ignore[list-item]

    def test_len_iter_and_empty(self, sample_tuple_set):
        assert len(sample_tuple_set) == 3
        assert len(list(sample_tuple_set)) == 3
        assert not sample_tuple_set.is_empty()
        assert TupleSet([], ProvenanceRecord({"a": 1})).is_empty()

    def test_time_span(self, sample_tuple_set):
        start, end = sample_tuple_set.time_span()
        assert start.seconds == 0.0
        assert end.seconds == 20.0

    def test_time_span_empty(self):
        assert TupleSet([], ProvenanceRecord({"a": 1})).time_span() is None

    def test_sensors_sorted_unique(self):
        record = ProvenanceRecord({"a": 1})
        ts = TupleSet([_reading(0, "b"), _reading(1, "a"), _reading(2, "a")], record)
        assert ts.sensors() == ["a", "b"]

    def test_centroid(self):
        record = ProvenanceRecord({"a": 1})
        readings = [
            SensorReading("s1", Timestamp(0), {"v": 1}, GeoPoint(0.0, 0.0)),
            SensorReading("s2", Timestamp(1), {"v": 1}, GeoPoint(2.0, 2.0)),
        ]
        centroid = TupleSet(readings, record).centroid()
        assert centroid == GeoPoint(1.0, 1.0)

    def test_centroid_none_without_locations(self):
        record = ProvenanceRecord({"a": 1})
        ts = TupleSet([SensorReading("s", Timestamp(0), {"v": 1})], record)
        assert ts.centroid() is None

    def test_derive_links_lineage(self, sample_tuple_set):
        derived = sample_tuple_set.derive(
            readings=sample_tuple_set.readings[:1],
            attributes={"stage": "filtered", "domain": "traffic"},
            agent=Agent("program", "filter", "1.0"),
        )
        assert derived.provenance.has_ancestor(sample_tuple_set.pname)
        assert len(derived) == 1

    def test_summary_fields(self, sample_tuple_set):
        summary = sample_tuple_set.summary()
        assert summary["readings"] == 3
        assert summary["raw"] is True
        assert summary["pname"] == sample_tuple_set.pname.short


class TestWindower:
    def _windower(self, window=300.0):
        return TupleSetWindower(
            window_seconds=window,
            base_attributes={"network": "test-net", "domain": "traffic"},
            agent=Agent("sensor-network", "test-net", "1.0"),
        )

    def test_rejects_non_positive_window(self):
        with pytest.raises(ProvenanceError):
            self._windower(window=0.0)

    def test_window_start_alignment(self):
        windower = self._windower(300.0)
        assert windower.window_start(Timestamp(723.0)).seconds == 600.0

    def test_partitions_by_window(self):
        windower = self._windower(300.0)
        readings = [_reading(t) for t in (0.0, 100.0, 299.0, 300.0, 550.0, 901.0)]
        sets = windower.window(readings)
        assert [len(ts) for ts in sets] == [3, 2, 1]

    def test_empty_windows_are_skipped(self):
        windower = self._windower(300.0)
        sets = windower.window([_reading(0.0), _reading(900.0)])
        assert len(sets) == 2

    def test_windows_are_chronological(self):
        windower = self._windower(60.0)
        readings = [_reading(t) for t in (500.0, 10.0, 250.0)]
        sets = windower.window(readings)
        starts = [ts.provenance.get("window_start").seconds for ts in sets]
        assert starts == sorted(starts)

    def test_window_attributes_present(self):
        windower = self._windower(300.0)
        ts = windower.window([_reading(10.0), _reading(20.0)])[0]
        record = ts.provenance
        assert record.get("network") == "test-net"
        assert record.get("window_start").seconds == 0.0
        assert record.get("window_end").seconds == 300.0
        assert record.get("reading_count") == 2

    def test_attribute_fn_extends_provenance(self):
        windower = TupleSetWindower(
            window_seconds=300.0,
            base_attributes={"network": "n", "domain": "d"},
            attribute_fn=lambda start, readings: {"max_speed": max(r.value("speed") for r in readings)},
        )
        ts = windower.window([_reading(0.0, speed=10.0), _reading(5.0, speed=99.0)])[0]
        assert ts.provenance.get("max_speed") == 99.0

    def test_distinct_windows_have_distinct_pnames(self):
        windower = self._windower(300.0)
        sets = windower.window([_reading(0.0), _reading(400.0), _reading(800.0)])
        pnames = {ts.pname for ts in sets}
        assert len(pnames) == 3
