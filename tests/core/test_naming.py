"""Tests for the naming schemes (Section II-A comparison)."""

from __future__ import annotations

import pytest

from repro.core import Agent, GeoPoint, ProvenanceRecord, Timestamp
from repro.core.naming import FilenameConvention, ProvenanceNaming
from repro.errors import NamingError


@pytest.fixture
def record():
    return ProvenanceRecord(
        {
            "domain": "volcano",
            "site": "vesuvius",
            "window_start": Timestamp(1097452800.0),
            "owner": "observatory",
            "location": GeoPoint(40.82, 14.42),
        },
        agents=(Agent("sensor-network", "vesuvius-array", "1.0"),),
    )


class TestFilenameConvention:
    def test_name_follows_field_order(self, record):
        convention = FilenameConvention(["domain", "site", "window_start"])
        assert convention.name(record) == "volcano_vesuvius_1097452800"

    def test_missing_fields_get_placeholder(self, record):
        convention = FilenameConvention(["domain", "missing", "site"])
        assert convention.name(record) == "volcano_unknown_vesuvius"

    def test_unencodable_attributes_are_dropped(self, record):
        convention = FilenameConvention(["domain", "site"])
        name = convention.name(record)
        assert "observatory" not in name

    def test_values_with_separator_are_squashed(self):
        record = ProvenanceRecord({"domain": "supply_chain", "site": "a b"})
        convention = FilenameConvention(["domain", "site"])
        assert convention.name(record) == "supply-chain_a-b"

    def test_parse_round_trip(self, record):
        convention = FilenameConvention(["domain", "site", "window_start"])
        parsed = convention.parse(convention.name(record))
        assert parsed.get("domain") == "volcano"
        assert parsed.get("site") == "vesuvius"

    def test_parse_missing_token_absent(self, record):
        convention = FilenameConvention(["domain", "missing", "site"])
        parsed = convention.parse(convention.name(record))
        assert parsed.get("missing") is None

    def test_parse_extras_collected(self):
        convention = FilenameConvention(["domain"])
        parsed = convention.parse("volcano_surprise_suffix")
        assert parsed.extras == ("surprise", "suffix")

    def test_parse_empty_rejected(self):
        convention = FilenameConvention(["domain"])
        with pytest.raises(NamingError):
            convention.parse("")

    def test_lookup_on_encoded_field(self, record):
        convention = FilenameConvention(["domain", "site"])
        names = {convention.name(record): record}
        assert convention.lookup(names, "site", "vesuvius") == [convention.name(record)]

    def test_lookup_on_unencoded_field_returns_nothing(self, record):
        convention = FilenameConvention(["domain", "site"])
        names = {convention.name(record): record}
        assert convention.lookup(names, "owner", "observatory") == []

    def test_validation(self):
        with pytest.raises(NamingError):
            FilenameConvention([])
        with pytest.raises(NamingError):
            FilenameConvention(["a", "a"])
        with pytest.raises(NamingError):
            FilenameConvention(["a"], separator="")

    def test_can_express(self):
        convention = FilenameConvention(["domain", "site"])
        assert convention.can_express("site")
        assert not convention.can_express("owner")


class TestProvenanceNaming:
    def test_register_and_resolve(self, record):
        naming = ProvenanceNaming()
        digest = naming.register(record)
        assert naming.resolve(digest) is record
        assert len(naming) == 1

    def test_resolve_unknown(self):
        naming = ProvenanceNaming()
        with pytest.raises(NamingError):
            naming.resolve("0" * 64)

    def test_lookup_any_attribute(self, record):
        naming = ProvenanceNaming()
        digest = naming.register(record)
        assert naming.lookup("owner", "observatory") == [digest]
        assert naming.lookup("owner", "someone-else") == []

    def test_related_finds_parents_and_children(self, record):
        naming = ProvenanceNaming()
        parent_digest = naming.register(record)
        child = record.derive({"stage": "event", "domain": "volcano"})
        child_digest = naming.register(child)
        assert parent_digest in naming.related(child_digest)
        assert child_digest in naming.related(parent_digest)

    def test_relationships_unanswerable_by_filenames(self, record):
        """The relationship query has no filename equivalent at all."""
        convention = FilenameConvention(["domain", "site"])
        child = record.derive({"stage": "event", "domain": "volcano"})
        parent_name = convention.name(record)
        child_name = convention.name(child)
        # The two names share no token that encodes the derivation link.
        assert parent_name != child_name
        parsed_child = convention.parse(child_name)
        assert parent_name not in parsed_child.fields.values()
