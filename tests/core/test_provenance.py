"""Tests for provenance records, PNames, agents and annotations."""

from __future__ import annotations

import pytest

from repro.core import Agent, Annotation, GeoPoint, PName, ProvenanceRecord, Timestamp, merge_provenance
from repro.errors import ProvenanceError


def _record(**extra):
    attributes = {"domain": "traffic", "city": "london"}
    attributes.update(extra)
    return ProvenanceRecord(attributes)


class TestPName:
    def test_pname_requires_full_digest(self):
        with pytest.raises(ProvenanceError):
            PName("abc")

    def test_short_is_prefix(self):
        record = _record()
        pname = record.pname()
        assert pname.digest.startswith(pname.short)
        assert len(pname.short) == 12

    def test_pnames_are_orderable_and_hashable(self):
        a = _record(x=1).pname()
        b = _record(x=2).pname()
        assert len({a, b}) == 2
        assert sorted([a, b]) == sorted([b, a])


class TestIdentity:
    def test_same_attributes_same_pname(self):
        assert _record().pname() == _record().pname()

    def test_different_attributes_different_pname(self):
        assert _record().pname() != _record(extra="x").pname()

    def test_attribute_order_does_not_matter(self):
        a = ProvenanceRecord({"a": 1, "b": 2})
        b = ProvenanceRecord({"b": 2, "a": 1})
        assert a.pname() == b.pname()

    def test_value_type_matters(self):
        assert ProvenanceRecord({"a": 1}).pname() != ProvenanceRecord({"a": 1.0}).pname()

    def test_ancestors_are_part_of_identity(self):
        parent = _record()
        a = ProvenanceRecord({"stage": "x"}, ancestors=(parent.pname(),))
        b = ProvenanceRecord({"stage": "x"})
        assert a.pname() != b.pname()

    def test_agents_are_part_of_identity(self):
        a = ProvenanceRecord({"stage": "x"}, agents=(Agent("program", "p", "1"),))
        b = ProvenanceRecord({"stage": "x"}, agents=(Agent("program", "p", "2"),))
        assert a.pname() != b.pname()

    def test_annotations_do_not_change_identity(self):
        record = _record()
        before = record.pname()
        record.annotate(Annotation("sensor-replaced", "node-7", author="ops"))
        assert record.pname() == before

    def test_duplicate_ancestors_collapse(self):
        parent = _record().pname()
        record = ProvenanceRecord({"stage": "x"}, ancestors=(parent, parent))
        assert record.ancestors == (parent,)

    def test_equality_and_hash_follow_pname(self):
        assert _record() == _record()
        assert hash(_record()) == hash(_record())


class TestValidation:
    def test_empty_attributes_rejected(self):
        with pytest.raises(ProvenanceError):
            ProvenanceRecord({})

    def test_non_pname_ancestor_rejected(self):
        with pytest.raises(ProvenanceError):
            ProvenanceRecord({"a": 1}, ancestors=("not-a-pname",))  # type: ignore[arg-type]

    def test_non_agent_rejected(self):
        with pytest.raises(ProvenanceError):
            ProvenanceRecord({"a": 1}, agents=("someone",))  # type: ignore[arg-type]

    def test_agent_requires_kind_and_name(self):
        with pytest.raises(ProvenanceError):
            Agent("", "gcc")

    def test_annotation_requires_key(self):
        with pytest.raises(ProvenanceError):
            Annotation("", "value")

    def test_annotate_rejects_non_annotation(self):
        with pytest.raises(ProvenanceError):
            _record().annotate("note")  # type: ignore[arg-type]


class TestDerivation:
    def test_derive_links_ancestor(self):
        parent = _record()
        child = parent.derive({"stage": "filtered"}, agent=Agent("program", "filter", "1.0"))
        assert child.has_ancestor(parent.pname())
        assert not child.is_raw()
        assert parent.is_raw()

    def test_derive_with_extra_ancestors(self):
        parent = _record()
        other = _record(city="boston")
        child = parent.derive({"stage": "merged"}, extra_ancestors=(other.pname(),))
        assert child.has_ancestor(parent.pname())
        assert child.has_ancestor(other.pname())

    def test_merge_provenance_lists_every_parent(self):
        parents = [_record(city=c) for c in ("london", "boston", "seattle")]
        merged = merge_provenance({"stage": "merged"}, parents, agent=Agent("program", "m", "1"))
        for parent in parents:
            assert merged.has_ancestor(parent.pname())

    def test_merge_provenance_requires_parents(self):
        with pytest.raises(ProvenanceError):
            merge_provenance({"stage": "merged"}, [])


class TestSerialisation:
    def test_round_trip_preserves_identity(self):
        parent = _record()
        record = ProvenanceRecord(
            {
                "domain": "traffic",
                "window_start": Timestamp(10.0),
                "location": GeoPoint(51.5, -0.1),
                "sensors": ("a", "b"),
                "count": 3,
                "ratio": 0.5,
                "flag": True,
            },
            ancestors=(parent.pname(),),
            agents=(Agent("program", "agg", "2.0", metadata={"window": 300}),),
            annotations=(Annotation("note", "x", author="me", timestamp=5.0),),
        )
        restored = ProvenanceRecord.from_json(record.to_json())
        assert restored.pname() == record.pname()
        assert restored.attributes == record.attributes
        assert restored.ancestors == record.ancestors
        assert len(restored.annotations) == 1

    def test_unknown_serialised_type_rejected(self):
        with pytest.raises(ProvenanceError):
            ProvenanceRecord.from_dict(
                {"attributes": {"a": {"__type__": "mystery"}}, "ancestors": [], "agents": []}
            )


class TestAgent:
    def test_describe_includes_version(self):
        assert Agent("compiler", "gcc", "3.3.3").describe() == "compiler gcc 3.3.3"

    def test_describe_without_version(self):
        assert Agent("person", "alice").describe() == "person alice"

    def test_canonical_is_stable_under_metadata_order(self):
        a = Agent("program", "p", "1", metadata={"a": 1, "b": 2})
        b = Agent("program", "p", "1", metadata={"b": 2, "a": 1})
        assert a.canonical() == b.canonical()
