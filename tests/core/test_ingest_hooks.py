"""Post-commit ingest hooks: ordering guarantees and lifecycle.

The contract (relied on by ``repro.stream``): a hook fires only after
the backend write, the provenance graph/closure edges, every index and
the statistics collector have all committed -- an observer never sees a
half-ingested tuple set, on the single or the batched path.
"""

from __future__ import annotations

from repro.core import PassStore, ProvenanceRecord, Timestamp, TupleSet
from repro.core.attributes import GeoPoint
from repro.core.query import AttributeEquals


def _tuple_set(i: int, parents=()) -> TupleSet:
    record = ProvenanceRecord(
        {
            "domain": "traffic",
            "city": "london",
            "sequence": i,
            "window_start": Timestamp(60.0 * i),
            "window_end": Timestamp(60.0 * i + 59.0),
            "location": GeoPoint(51.5, -0.1),
        },
        ancestors=tuple(parents),
    )
    return TupleSet([], record)


class TestHookOrdering:
    def test_hook_sees_fully_committed_record(self, store):
        observations = []

        def observer(pname, record):
            observations.append(
                {
                    "backend": store.backend.has_record(pname),
                    "payload": store.backend.get_payload(pname) is not None,
                    "graph": pname in store.graph,
                    "attr_index": pname in store.attribute_index.lookup("city", "london"),
                    "queryable": pname in store.query(AttributeEquals("sequence", record.get("sequence"))),
                    "counted": store.stats.ingested,
                }
            )

        store.add_ingest_hook(observer)
        store.ingest(_tuple_set(0))
        assert len(observations) == 1
        seen = observations[0]
        assert seen["backend"] and seen["payload"] and seen["graph"]
        assert seen["attr_index"] and seen["queryable"]
        assert seen["counted"] == 1  # stats committed before the hook

    def test_hook_sees_lineage_edges(self, store):
        parent = _tuple_set(0)
        store.ingest(parent)
        ancestries = []
        store.add_ingest_hook(
            lambda pname, record: ancestries.append(store.ancestors(pname))
        )
        store.ingest(_tuple_set(1, parents=[parent.pname]))
        assert ancestries == [{parent.pname}]

    def test_batched_ingest_fires_after_the_whole_batch(self, store):
        """A hook querying mid-batch must see the complete batch committed."""
        batch = [_tuple_set(i) for i in range(4)]
        sizes = []
        store.add_ingest_hook(lambda pname, record: sizes.append(len(store)))
        store.ingest_many(batch)
        assert sizes == [4, 4, 4, 4]

    def test_metadata_only_ingest_fires(self, store):
        fired = []
        store.add_ingest_hook(lambda pname, record: fired.append(pname))
        record = _tuple_set(0).provenance
        store.ingest_record(record)
        assert fired == [record.pname()]

    def test_idempotent_paths_do_not_fire(self, store):
        fired = []
        ts = _tuple_set(0)
        store.ingest(ts)
        store.add_ingest_hook(lambda pname, record: fired.append(pname))
        store.ingest(ts)  # already stored: nothing new committed
        store.ingest_record(ts.provenance)
        store.ingest_many([ts])
        assert fired == []

    def test_remove_hook(self, store):
        fired = []
        hook = lambda pname, record: fired.append(pname)  # noqa: E731
        store.add_ingest_hook(hook)
        store.remove_ingest_hook(hook)
        store.remove_ingest_hook(hook)  # unknown hooks are ignored
        store.ingest(_tuple_set(0))
        assert fired == []

    def test_multiple_hooks_fire_in_registration_order(self, store):
        calls = []
        store.add_ingest_hook(lambda pname, record: calls.append("first"))
        store.add_ingest_hook(lambda pname, record: calls.append("second"))
        store.ingest(_tuple_set(0))
        assert calls == ["first", "second"]
