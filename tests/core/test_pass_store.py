"""Tests for the local PASS store: ingest, query, lineage, the four properties."""

from __future__ import annotations

import pytest

from repro.core import (
    Agent,
    AgentIs,
    AncestorOf,
    And,
    Annotation,
    AnnotationMatches,
    AttributeEquals,
    DerivedFrom,
    GeoPoint,
    IsRaw,
    PassStore,
    ProvenanceRecord,
    Query,
    SensorReading,
    Timestamp,
    TupleSet,
)
from repro.errors import DuplicateProvenanceError, UnknownEntityError
from repro.storage.sqlite import SQLiteBackend


def _tuple_set(label: str, readings_count: int = 2, ancestors=()):
    record = ProvenanceRecord(
        {
            "domain": "traffic",
            "label": label,
            "window_start": Timestamp(0.0),
            "window_end": Timestamp(300.0),
            "location": GeoPoint(51.5, -0.12),
        },
        ancestors=ancestors,
    )
    readings = [
        SensorReading(f"sensor-{i}", Timestamp(float(i)), {"v": float(i)})
        for i in range(readings_count)
    ]
    return TupleSet(readings, record)


class TestIngest:
    def test_ingest_returns_pname(self, store):
        ts = _tuple_set("a")
        assert store.ingest(ts) == ts.pname
        assert ts.pname in store
        assert len(store) == 1

    def test_ingest_is_idempotent_for_identical_data(self, store):
        ts = _tuple_set("a")
        store.ingest(ts)
        store.ingest(ts)
        assert len(store) == 1

    def test_ingest_rejects_different_data_same_provenance(self, store):
        ts = _tuple_set("a", readings_count=3)
        store.ingest(ts)
        impostor = TupleSet(ts.readings[:1], ts.provenance)
        with pytest.raises(DuplicateProvenanceError):
            store.ingest(impostor)

    def test_ingest_record_metadata_only(self, store):
        record = ProvenanceRecord({"domain": "traffic", "label": "meta"})
        pname = store.ingest_record(record)
        assert pname in store
        assert store.get_readings(pname) == []

    def test_ingest_many_matches_looped_ingest(self):
        sets = [_tuple_set(f"batch-{i}") for i in range(6)]
        child = TupleSet(
            [], sets[0].provenance.derive({"stage": "derived", "domain": "traffic"})
        )
        looped = PassStore()
        for tuple_set in sets + [child]:
            looped.ingest(tuple_set)
        batched = PassStore()
        pnames = batched.ingest_many(sets + [child])
        assert pnames == [ts.pname for ts in sets + [child]]
        assert len(batched) == len(looped)
        assert batched.ancestors(child.pname) == looped.ancestors(child.pname)
        assert batched.stats.ingested == looped.stats.ingested
        assert batched.verify_invariants() == []

    def test_ingest_many_is_idempotent_and_checks_duplicates(self, store):
        ts = _tuple_set("a", readings_count=3)
        store.ingest_many([ts, ts])  # duplicate within a batch is fine
        assert len(store) == 1
        store.ingest_many([ts])  # already stored is fine
        assert len(store) == 1
        impostor = TupleSet(ts.readings[:1], ts.provenance)
        with pytest.raises(DuplicateProvenanceError):
            store.ingest_many([impostor])
        with pytest.raises(DuplicateProvenanceError):
            PassStore().ingest_many([ts, impostor])

    def test_ingest_many_attaches_payload_to_metadata_only_record(self, store):
        ts = _tuple_set("a")
        store.ingest_record(ts.provenance)
        assert store.get_readings(ts.pname) == []
        store.ingest_many([ts])
        assert len(store.get_readings(ts.pname)) == len(ts)

    def test_ingest_many_on_sqlite_backend(self, tmp_path):
        store = PassStore(backend=SQLiteBackend(tmp_path / "batch.db"))
        sets = [_tuple_set(f"durable-{i}") for i in range(5)]
        store.ingest_many(sets)
        reopened = PassStore(backend=SQLiteBackend(tmp_path / "batch.db"))
        assert len(reopened) == 5
        for tuple_set in sets:
            assert tuple_set.pname in reopened

    def test_readings_round_trip(self, store):
        ts = _tuple_set("a")
        store.ingest(ts)
        readings = store.get_readings(ts.pname)
        assert len(readings) == len(ts)
        assert readings[0].sensor_id == "sensor-0"
        assert readings[0].values["v"] == 0.0

    def test_get_tuple_set_round_trip(self, store):
        ts = _tuple_set("a")
        store.ingest(ts)
        rebuilt = store.get_tuple_set(ts.pname)
        assert rebuilt.pname == ts.pname
        assert len(rebuilt) == len(ts)

    def test_get_unknown_record_raises(self, store):
        with pytest.raises(UnknownEntityError):
            store.get_record(_tuple_set("ghost").pname)

    def test_stats_count_ingests(self, store):
        store.ingest(_tuple_set("a"))
        store.ingest(_tuple_set("b"))
        assert store.stats.ingested == 2


class TestQueries:
    def test_attribute_equality_uses_index(self, store):
        ts = _tuple_set("a")
        store.ingest(ts)
        store.ingest(_tuple_set("b"))
        results = store.query(AttributeEquals("label", "a"))
        assert results == [ts.pname]

    def test_and_query_picks_most_selective_index(self, store):
        for label in ("a", "b", "c"):
            store.ingest(_tuple_set(label))
        query = Query(And((AttributeEquals("domain", "traffic"), AttributeEquals("label", "b"))))
        results = store.query(query)
        assert len(results) == 1

    def test_query_records_returns_pairs(self, store):
        ts = _tuple_set("a")
        store.ingest(ts)
        pairs = store.query_records(AttributeEquals("label", "a"))
        assert pairs[0][0] == ts.pname
        assert pairs[0][1].get("label") == "a"

    def test_lookup_attribute(self, store):
        ts = _tuple_set("a")
        store.ingest(ts)
        assert store.lookup_attribute("label", "a") == [ts.pname]

    def test_lineage_predicates_in_queries(self, store):
        parent = _tuple_set("parent")
        store.ingest(parent)
        child_record = parent.provenance.derive({"stage": "derived", "domain": "traffic"})
        child = TupleSet([], child_record)
        store.ingest(child)
        derived = store.query(DerivedFrom(parent.pname))
        ancestors = store.query(AncestorOf(child.pname))
        assert derived == [child.pname]
        assert ancestors == [parent.pname]

    def test_is_raw_query(self, store):
        parent = _tuple_set("parent")
        store.ingest(parent)
        child = TupleSet([], parent.provenance.derive({"stage": "derived", "domain": "traffic"}))
        store.ingest(child)
        assert set(store.query(IsRaw(True))) == {parent.pname}
        assert set(store.query(IsRaw(False))) == {child.pname}

    def test_agent_query(self, store):
        record = ProvenanceRecord(
            {"domain": "traffic", "label": "x"}, agents=(Agent("program", "sharpen", "2.0"),)
        )
        store.ingest(TupleSet([], record))
        assert store.query(AgentIs("sharpen")) == [record.pname()]

    def test_temporal_index_populated(self, store):
        store.ingest(_tuple_set("a"))
        hits = store.temporal_index.overlapping(Timestamp(0.0), Timestamp(100.0))
        assert len(hits) == 1

    def test_spatial_index_populated(self, store):
        ts = _tuple_set("a")
        store.ingest(ts)
        hits = store.spatial_index.within_radius(GeoPoint(51.5, -0.12), 10.0)
        assert ts.pname in hits


class TestAnnotations:
    def test_annotation_persisted_and_queryable(self, store):
        ts = _tuple_set("a")
        store.ingest(ts)
        store.annotate(ts.pname, Annotation("sensor-replaced", "cam-07", author="ops"))
        record = store.get_record(ts.pname)
        assert any(a.key == "sensor-replaced" for a in record.annotations)
        assert store.query(AnnotationMatches("sensor-replaced", "cam-07")) == [ts.pname]


class TestLineage:
    def _chain(self, store, depth=4):
        sets = [_tuple_set("root")]
        store.ingest(sets[0])
        for level in range(depth):
            record = sets[-1].provenance.derive({"stage": f"level-{level}", "domain": "traffic"})
            derived = TupleSet([], record)
            store.ingest(derived)
            sets.append(derived)
        return sets

    def test_ancestors_and_descendants(self, store):
        sets = self._chain(store, depth=3)
        assert store.ancestors(sets[-1].pname) == {ts.pname for ts in sets[:-1]}
        assert store.descendants(sets[0].pname) == {ts.pname for ts in sets[1:]}

    def test_raw_sources(self, store):
        sets = self._chain(store, depth=3)
        assert store.raw_sources(sets[-1].pname) == {sets[0].pname}

    def test_derivation_path(self, store):
        sets = self._chain(store, depth=3)
        path = store.derivation_path(sets[-1].pname, sets[0].pname)
        assert path[0] == sets[-1].pname
        assert path[-1] == sets[0].pname

    def test_is_ancestor_for_unknown_nodes_is_false(self, store):
        assert not store.is_ancestor(_tuple_set("x").pname, _tuple_set("y").pname)

    def test_lineage_of_unknown_node_raises(self, store):
        with pytest.raises(UnknownEntityError):
            store.ancestors(_tuple_set("ghost").pname)

    def test_closure_strategy_choice_does_not_change_answers(self):
        answers = {}
        for strategy in ("naive", "memoized", "labelled"):
            store = PassStore(closure=strategy)
            sets = self._chain(store, depth=5)
            answers[strategy] = store.ancestors(sets[-1].pname)
        assert answers["naive"] == answers["memoized"] == answers["labelled"]

    def test_shared_closure_instance_is_not_corrupted(self):
        """Passing one strategy instance to two stores must not alias state."""
        from repro.core.closure import LabelledClosure

        shared = LabelledClosure()
        first = PassStore(closure=shared)
        second = PassStore(closure=shared)
        # Each store got its own sibling bound to its own graph.
        assert first.closure is not shared and second.closure is not shared
        assert first.closure is not second.closure
        assert first.closure.graph is first.graph
        assert second.closure.graph is second.graph
        # The caller's instance keeps its own (empty) graph untouched.
        first.ingest(_tuple_set("a"))
        second.ingest(_tuple_set("b"))
        assert len(shared.graph) == 0
        assert _tuple_set("b").pname not in first.graph
        assert _tuple_set("a").pname not in second.graph


class TestPassProperties:
    def test_p4_removal_keeps_provenance_and_lineage(self, store):
        parent = _tuple_set("parent")
        store.ingest(parent)
        child = TupleSet([], parent.provenance.derive({"stage": "derived", "domain": "traffic"}))
        store.ingest(child)

        store.remove_data(parent.pname)

        assert store.is_removed(parent.pname)
        assert parent.pname in store  # record still there
        assert store.get_readings(parent.pname) == []  # data gone
        assert store.ancestors(child.pname) == {parent.pname}
        assert store.verify_invariants() == []

    def test_remove_unknown_raises(self, store):
        with pytest.raises(UnknownEntityError):
            store.remove_data(_tuple_set("ghost").pname)

    def test_query_can_exclude_removed(self, store):
        ts = _tuple_set("a")
        store.ingest(ts)
        store.remove_data(ts.pname)
        with_removed = store.query(Query(AttributeEquals("label", "a")))
        without_removed = store.query(Query(AttributeEquals("label", "a"), include_removed=False))
        assert with_removed == [ts.pname]
        assert without_removed == []

    def test_verify_invariants_clean_store(self, populated_store):
        assert populated_store.verify_invariants() == []


class TestSQLiteBackedStore:
    def test_sqlite_round_trip_and_rebuild(self, tmp_path):
        path = tmp_path / "pass.db"
        backend = SQLiteBackend(path)
        store = PassStore(backend=backend)
        parent = _tuple_set("parent")
        store.ingest(parent)
        child = TupleSet([], parent.provenance.derive({"stage": "derived", "domain": "traffic"}))
        store.ingest(child)
        store.remove_data(parent.pname)
        backend.close()

        reopened = PassStore(backend=SQLiteBackend(path))
        assert len(reopened) == 2
        assert reopened.is_removed(parent.pname)
        assert reopened.ancestors(child.pname) == {parent.pname}
        assert reopened.query(AttributeEquals("label", "parent")) == [parent.pname]
