"""Tests for provenance abstraction (Section V's 'gcc 3.3.3' example)."""

from __future__ import annotations

import pytest

from repro.core import Agent, PassStore, ProvenanceRecord
from repro.core.abstraction import (
    AbstractionEngine,
    AgentAbstractionRule,
    AttributeAbstractionRule,
    DepthAbstractionRule,
)
from repro.errors import UnknownEntityError


@pytest.fixture
def toolchain_store():
    """gcc's own history -> binary compiled by gcc -> analysis result."""
    store = PassStore()
    previous = None
    for revision in range(5):
        attributes = {"kind": "toolchain", "tool": "gcc", "tool_version": f"3.3.{revision}"}
        record = ProvenanceRecord(attributes) if previous is None else previous.derive(attributes)
        store.ingest_record(record)
        previous = record
    binary = previous.derive(
        {"kind": "binary", "name": "analyse"}, agent=Agent("compiler", "gcc", "3.3.3")
    )
    store.ingest_record(binary)
    result = binary.derive({"kind": "analysis-result", "study": "zone"}, agent=Agent("program", "analyse", "1.0"))
    store.ingest_record(result)
    return store, result.pname(), binary.pname()


class TestRules:
    def test_agent_rule_summarises_matching_agent(self, toolchain_store):
        store, _, binary = toolchain_store
        rule = AgentAbstractionRule(agent_kind="compiler")
        record = store.get_record(binary)
        assert rule.summarise(binary, record) == "compiler gcc 3.3.3"

    def test_agent_rule_ignores_other_kinds(self, toolchain_store):
        store, focus, _ = toolchain_store
        rule = AgentAbstractionRule(agent_kind="compiler")
        assert rule.summarise(focus, store.get_record(focus)) is None

    def test_attribute_rule_uses_label_attribute(self, toolchain_store):
        store, _, binary = toolchain_store
        record = store.get_record(binary)
        toolchain_record = store.get_record(record.ancestors[0])
        rule = AttributeAbstractionRule("kind", "toolchain", label_attribute="tool_version")
        assert rule.summarise(record.ancestors[0], toolchain_record) == "3.3.4"

    def test_attribute_rule_falls_back_to_pair(self):
        rule = AttributeAbstractionRule("kind", "toolchain")
        record = ProvenanceRecord({"kind": "toolchain"})
        assert rule.summarise(record.pname(), record) == "kind=toolchain"

    def test_rules_handle_missing_record(self):
        record = ProvenanceRecord({"kind": "x"})
        assert AgentAbstractionRule("compiler").summarise(record.pname(), None) is None
        assert AttributeAbstractionRule("kind", "x").summarise(record.pname(), None) is None


class TestEngine:
    def test_report_without_rules_expands_everything(self, toolchain_store):
        store, focus, _ = toolchain_store
        report = store.report_lineage(focus)
        assert report.hidden_count == 0
        assert report.reported_size() == 6  # binary + 5 toolchain revisions
        assert report.compression_ratio() == pytest.approx(1.0)

    def test_agent_rule_collapses_tool_history(self, toolchain_store):
        store, focus, binary = toolchain_store
        store.add_abstraction_rule(AgentAbstractionRule(agent_kind="compiler"))
        report = store.report_lineage(focus)
        assert binary in report.summaries
        assert report.summaries[binary] == "compiler gcc 3.3.3"
        # The five toolchain revisions are hidden behind the summary.
        assert report.hidden_count == 5
        assert report.reported_size() == 1
        assert report.compression_ratio() > 1.0

    def test_depth_limit_hides_deep_history(self, toolchain_store):
        store, focus, _ = toolchain_store
        report = store.report_lineage(focus, max_depth=1)
        assert report.reported_size() == 1
        assert report.hidden_count == 5

    def test_depth_rule_acts_like_max_depth(self, toolchain_store):
        store, focus, _ = toolchain_store
        store.add_abstraction_rule(DepthAbstractionRule(max_depth=2))
        report = store.report_lineage(focus)
        assert report.full_size() == 6
        assert report.reported_size() == 2

    def test_unknown_focus_raises(self, toolchain_store):
        store, _, _ = toolchain_store
        with pytest.raises(UnknownEntityError):
            store.report_lineage(ProvenanceRecord({"x": 1}).pname())

    def test_engine_usable_standalone(self, toolchain_store):
        store, focus, _ = toolchain_store
        engine = AbstractionEngine(
            store.graph, resolver=lambda p: store.backend.get_record(p), rules=()
        )
        report = engine.report(focus)
        assert report.focus == focus
        assert report.full_size() == 6
