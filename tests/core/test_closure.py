"""Tests for the transitive-closure strategies (naive, memoized, labelled)."""

from __future__ import annotations

import pytest

from repro.core import ProvenanceGraph, ProvenanceRecord
from repro.core.closure import LabelledClosure, MemoizedClosure, NaiveClosure, make_closure
from repro.errors import UnknownEntityError

STRATEGIES = ["naive", "memoized", "labelled"]


def _pname(label: str):
    return ProvenanceRecord({"label": label}).pname()


def _build(strategy_name, edges):
    closure = make_closure(strategy_name)
    nodes = set()
    for child, parent in edges:
        nodes.add(child)
        nodes.add(parent)
    for node in sorted(nodes, key=lambda p: p.digest):
        closure.add_node(node)
    for child, parent in edges:
        closure.add_edge(child, parent)
    return closure


@pytest.fixture
def names():
    return {label: _pname(label) for label in ("raw1", "raw2", "mid", "top", "side")}


@pytest.fixture
def edges(names):
    """raw1,raw2 -> mid -> top, plus side -> raw1."""
    return [
        (names["mid"], names["raw1"]),
        (names["mid"], names["raw2"]),
        (names["top"], names["mid"]),
        (names["side"], names["raw1"]),
    ]


class TestFactory:
    def test_make_closure_known_names(self):
        assert isinstance(make_closure("naive"), NaiveClosure)
        assert isinstance(make_closure("memoized"), MemoizedClosure)
        assert isinstance(make_closure("labelled"), LabelledClosure)

    def test_make_closure_unknown_name(self):
        with pytest.raises(UnknownEntityError):
            make_closure("btree")


@pytest.mark.parametrize("strategy", STRATEGIES)
class TestClosureCorrectness:
    def test_ancestors(self, strategy, names, edges):
        closure = _build(strategy, edges)
        assert closure.ancestors(names["top"]) == {names["mid"], names["raw1"], names["raw2"]}

    def test_descendants(self, strategy, names, edges):
        closure = _build(strategy, edges)
        assert closure.descendants(names["raw1"]) == {names["mid"], names["top"], names["side"]}

    def test_reachable(self, strategy, names, edges):
        closure = _build(strategy, edges)
        assert closure.reachable(names["raw1"], names["top"])
        assert not closure.reachable(names["top"], names["raw1"])
        assert not closure.reachable(names["side"], names["top"])

    def test_roots_have_no_ancestors(self, strategy, names, edges):
        closure = _build(strategy, edges)
        assert closure.ancestors(names["raw2"]) == set()

    def test_unknown_node_raises(self, strategy, names, edges):
        closure = _build(strategy, edges)
        with pytest.raises(UnknownEntityError):
            closure.ancestors(_pname("missing"))

    def test_incremental_edge_updates_results(self, strategy, names, edges):
        closure = _build(strategy, edges)
        late = _pname("late")
        closure.add_node(late)
        closure.add_edge(late, names["top"])
        assert names["raw1"] in closure.ancestors(late)
        assert late in closure.descendants(names["raw1"])

    def test_strategies_agree_on_random_dag(self, strategy, names, edges):
        import random

        rng = random.Random(7)
        nodes = [_pname(f"n{i}") for i in range(30)]
        dag_edges = []
        for index in range(1, len(nodes)):
            for parent_index in rng.sample(range(index), k=min(index, 2)):
                dag_edges.append((nodes[index], nodes[parent_index]))
        subject = _build(strategy, dag_edges)
        reference = _build("naive", dag_edges)
        for node in nodes:
            assert subject.ancestors(node) == reference.ancestors(node)
            assert subject.descendants(node) == reference.descendants(node)


class TestCostProfiles:
    def _chain(self, strategy_name, depth):
        nodes = [_pname(f"c{i}") for i in range(depth + 1)]
        edges = [(nodes[i + 1], nodes[i]) for i in range(depth)]
        return _build(strategy_name, edges), nodes

    def test_naive_cost_grows_with_repeated_queries(self):
        closure, nodes = self._chain("naive", 30)
        closure.reset_counters()
        closure.ancestors(nodes[-1])
        single = closure.operations
        closure.ancestors(nodes[-1])
        assert closure.operations == pytest.approx(2 * single)

    def test_memoized_second_query_is_cheap(self):
        closure, nodes = self._chain("memoized", 30)
        closure.reset_counters()
        closure.ancestors(nodes[-1])
        first = closure.operations
        closure.ancestors(nodes[-1])
        assert closure.operations - first <= 2

    def test_memoized_cache_invalidated_by_new_edge(self):
        closure, nodes = self._chain("memoized", 10)
        closure.ancestors(nodes[-1])
        extra = _pname("extra-root")
        closure.add_node(extra)
        closure.add_edge(nodes[0], extra)
        assert extra in closure.ancestors(nodes[-1])

    def test_labelled_query_cost_constant_in_depth(self):
        shallow, shallow_nodes = self._chain("labelled", 5)
        deep, deep_nodes = self._chain("labelled", 60)
        shallow.reset_counters()
        shallow.ancestors(shallow_nodes[-1])
        deep.reset_counters()
        deep.ancestors(deep_nodes[-1])
        assert deep.operations == shallow.operations == 1

    def test_labelled_prebuilt_graph(self):
        graph = ProvenanceGraph()
        a, b, c = _pname("a"), _pname("b"), _pname("c")
        graph.add_edge(b, a)
        graph.add_edge(c, b)
        closure = LabelledClosure(graph)
        assert closure.ancestors(c) == {a, b}
        assert closure.descendants(a) == {b, c}
