"""Tests for typed attribute values, canonical encoding and comparison."""

from __future__ import annotations

import math
from datetime import datetime, timezone

import pytest

from repro.core.attributes import (
    GeoPoint,
    Timestamp,
    canonical_encode,
    coerce_value,
    compare_values,
    ensure_attribute_map,
    merge_attribute_maps,
    value_matches,
    values_equal,
)
from repro.errors import ConfigurationError


class TestGeoPoint:
    def test_valid_point(self):
        point = GeoPoint(51.5, -0.12)
        assert point.latitude == 51.5
        assert point.longitude == -0.12

    def test_latitude_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            GeoPoint(91.0, 0.0)

    def test_longitude_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            GeoPoint(0.0, -181.0)

    def test_distance_to_self_is_zero(self):
        point = GeoPoint(42.36, -71.06)
        assert point.distance_km(point) == pytest.approx(0.0, abs=1e-9)

    def test_london_to_boston_distance(self):
        london = GeoPoint(51.5074, -0.1278)
        boston = GeoPoint(42.3601, -71.0589)
        assert london.distance_km(boston) == pytest.approx(5265, rel=0.02)

    def test_distance_is_symmetric(self):
        a = GeoPoint(10.0, 20.0)
        b = GeoPoint(-30.0, 140.0)
        assert a.distance_km(b) == pytest.approx(b.distance_km(a))


class TestTimestamp:
    def test_ordering(self):
        assert Timestamp(1.0) < Timestamp(2.0)

    def test_add_seconds(self):
        assert (Timestamp(10.0) + 5).seconds == 15.0

    def test_subtract_timestamp_gives_seconds(self):
        assert Timestamp(30.0) - Timestamp(10.0) == 20.0

    def test_subtract_number(self):
        assert Timestamp(30.0) - 10.0 == 20.0

    def test_datetime_round_trip(self):
        dt = datetime(2005, 4, 5, 12, 0, 0, tzinfo=timezone.utc)
        ts = Timestamp.from_datetime(dt)
        assert ts.to_datetime() == dt

    def test_naive_datetime_treated_as_utc(self):
        naive = datetime(2005, 4, 5, 12, 0, 0)
        aware = datetime(2005, 4, 5, 12, 0, 0, tzinfo=timezone.utc)
        assert Timestamp.from_datetime(naive).seconds == Timestamp.from_datetime(aware).seconds


class TestCanonicalEncoding:
    def test_int_and_float_encode_differently(self):
        assert canonical_encode(1) != canonical_encode(1.0)

    def test_bool_and_int_encode_differently(self):
        assert canonical_encode(True) != canonical_encode(1)

    def test_string_number_differs_from_number(self):
        assert canonical_encode("1") != canonical_encode(1)

    def test_same_value_encodes_identically(self):
        assert canonical_encode(GeoPoint(1.0, 2.0)) == canonical_encode(GeoPoint(1.0, 2.0))

    def test_list_encoding_preserves_order(self):
        assert canonical_encode(("a", "b")) != canonical_encode(("b", "a"))

    def test_unsupported_type_rejected(self):
        with pytest.raises(ConfigurationError):
            canonical_encode(object())  # type: ignore[arg-type]


class TestCoercion:
    def test_datetime_coerced_to_timestamp(self):
        value = coerce_value(datetime(2005, 1, 1, tzinfo=timezone.utc))
        assert isinstance(value, Timestamp)

    def test_list_coerced_to_tuple(self):
        assert coerce_value([1, 2, 3]) == (1, 2, 3)

    def test_nested_list_rejected(self):
        with pytest.raises(ConfigurationError):
            coerce_value([[1, 2], [3]])

    def test_unsupported_object_rejected(self):
        with pytest.raises(ConfigurationError):
            coerce_value({"a": 1})


class TestComparison:
    def test_numeric_ordering(self):
        assert compare_values(1, 2.5) == -1
        assert compare_values(3, 3.0) == 0
        assert compare_values(4, 2) == 1

    def test_timestamp_compares_with_numbers(self):
        assert compare_values(Timestamp(5.0), 10) == -1

    def test_string_ordering(self):
        assert compare_values("apple", "banana") == -1

    def test_cross_kind_comparison_rejected(self):
        with pytest.raises(ConfigurationError):
            compare_values("apple", 3)

    def test_values_equal_is_type_strict(self):
        assert values_equal(2, 2)
        assert not values_equal(2, 2.0)

    def test_value_matches(self):
        assert value_matches("b", ["a", "b", "c"])
        assert not value_matches("d", ["a", "b", "c"])


class TestAttributeMaps:
    def test_ensure_map_coerces_values(self):
        result = ensure_attribute_map({"count": [1, 2]})
        assert result["count"] == (1, 2)

    def test_ensure_map_rejects_empty_keys(self):
        with pytest.raises(ConfigurationError):
            ensure_attribute_map({"": 1})

    def test_ensure_map_rejects_non_dict(self):
        with pytest.raises(ConfigurationError):
            ensure_attribute_map([("a", 1)])  # type: ignore[arg-type]

    def test_ensure_map_does_not_mutate_input(self):
        original = {"a": [1]}
        ensure_attribute_map(original)
        assert original == {"a": [1]}

    def test_merge_later_maps_win(self):
        merged = merge_attribute_maps([{"a": 1, "b": 2}, {"b": 3}])
        assert merged == {"a": 1, "b": 3}
