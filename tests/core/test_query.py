"""Tests for the query predicates and query evaluation."""

from __future__ import annotations

import pytest

from repro.core import (
    TRUE,
    Agent,
    AgentIs,
    AncestorOf,
    And,
    Annotation,
    AnnotationMatches,
    AttributeContains,
    AttributeEquals,
    AttributeExists,
    AttributeIn,
    AttributeRange,
    DerivedFrom,
    GeoPoint,
    IsRaw,
    NearLocation,
    Not,
    Or,
    ProvenanceRecord,
    Query,
    Timestamp,
)
from repro.errors import QueryError


@pytest.fixture
def record():
    return ProvenanceRecord(
        {
            "domain": "traffic",
            "city": "london",
            "vehicle_count": 42,
            "window_start": Timestamp(600.0),
            "location": GeoPoint(51.5074, -0.1278),
            "description": "Congestion Zone cameras",
        },
        agents=(Agent("program", "sharpen", "2.0"),),
        annotations=(Annotation("sensor-replaced", "cam-07"),),
    )


@pytest.fixture
def pname(record):
    return record.pname()


class TestAttributePredicates:
    def test_equals_matches(self, record, pname):
        assert AttributeEquals("city", "london").matches(pname, record)
        assert not AttributeEquals("city", "boston").matches(pname, record)

    def test_equals_is_type_strict(self, record, pname):
        assert not AttributeEquals("vehicle_count", 42.0).matches(pname, record)

    def test_equals_missing_attribute(self, record, pname):
        assert not AttributeEquals("missing", 1).matches(pname, record)

    def test_range_inclusive_bounds(self, record, pname):
        assert AttributeRange("vehicle_count", low=42, high=42).matches(pname, record)
        assert not AttributeRange("vehicle_count", low=42, high=42, include_low=False).matches(
            pname, record
        )

    def test_range_half_open(self, record, pname):
        assert AttributeRange("vehicle_count", low=10).matches(pname, record)
        assert AttributeRange("vehicle_count", high=100).matches(pname, record)
        assert not AttributeRange("vehicle_count", high=10).matches(pname, record)

    def test_range_needs_a_bound(self):
        with pytest.raises(QueryError):
            AttributeRange("x")

    def test_range_on_timestamps(self, record, pname):
        predicate = AttributeRange("window_start", low=Timestamp(0.0), high=Timestamp(3600.0))
        assert predicate.matches(pname, record)

    def test_range_incompatible_type_is_false(self, record, pname):
        assert not AttributeRange("city", low=1, high=5).matches(pname, record)

    def test_contains_case_insensitive(self, record, pname):
        assert AttributeContains("description", "congestion zone").matches(pname, record)
        assert not AttributeContains("description", "weather").matches(pname, record)

    def test_contains_non_string_is_false(self, record, pname):
        assert not AttributeContains("vehicle_count", "4").matches(pname, record)

    def test_in_predicate(self, record, pname):
        assert AttributeIn("city", ("boston", "london")).matches(pname, record)
        assert not AttributeIn("city", ("boston", "seattle")).matches(pname, record)

    def test_exists(self, record, pname):
        assert AttributeExists("location").matches(pname, record)
        assert not AttributeExists("nope").matches(pname, record)

    def test_near_location(self, record, pname):
        near = NearLocation("location", GeoPoint(51.50, -0.12), radius_km=5.0)
        far = NearLocation("location", GeoPoint(42.36, -71.06), radius_km=5.0)
        assert near.matches(pname, record)
        assert not far.matches(pname, record)

    def test_agent_is(self, record, pname):
        assert AgentIs("sharpen").matches(pname, record)
        assert AgentIs("sharpen", kind="program", version="2.0").matches(pname, record)
        assert not AgentIs("sharpen", version="1.0").matches(pname, record)
        assert not AgentIs("blur").matches(pname, record)

    def test_annotation_matches(self, record, pname):
        assert AnnotationMatches("sensor-replaced").matches(pname, record)
        assert AnnotationMatches("sensor-replaced", "cam-07").matches(pname, record)
        assert not AnnotationMatches("sensor-replaced", "cam-99").matches(pname, record)

    def test_is_raw(self, record, pname):
        derived = record.derive({"stage": "x"})
        assert IsRaw(True).matches(pname, record)
        assert IsRaw(False).matches(derived.pname(), derived)


class TestCombinators:
    def test_and_or_not(self, record, pname):
        in_london = AttributeEquals("city", "london")
        is_weather = AttributeEquals("domain", "weather")
        assert (in_london & ~is_weather).matches(pname, record)
        assert (in_london | is_weather).matches(pname, record)
        assert not (in_london & is_weather).matches(pname, record)

    def test_empty_combinators_rejected(self):
        with pytest.raises(QueryError):
            And(())
        with pytest.raises(QueryError):
            Or(())

    def test_requires_lineage_propagates(self, pname):
        plain = AttributeEquals("a", 1)
        lineage = DerivedFrom(pname)
        assert not plain.requires_lineage
        assert lineage.requires_lineage
        assert And((plain, lineage)).requires_lineage
        assert Or((plain, lineage)).requires_lineage
        assert Not(lineage).requires_lineage

    def test_attributes_referenced_collected(self, pname):
        predicate = And((AttributeEquals("a", 1), Or((AttributeRange("b", low=0), Not(AttributeExists("c"))))))
        assert sorted(predicate.attributes_referenced()) == ["a", "b", "c"]


class TestCombinatorOperators:
    """The ``&`` / ``|`` / ``~`` overloads build the right predicate tree."""

    def test_and_operator_builds_And(self):
        left = AttributeEquals("city", "london")
        right = AttributeEquals("domain", "traffic")
        combined = left & right
        assert isinstance(combined, And)
        assert combined.parts == (left, right)

    def test_or_operator_builds_Or(self):
        left = AttributeEquals("city", "london")
        right = AttributeEquals("city", "boston")
        combined = left | right
        assert isinstance(combined, Or)
        assert combined.parts == (left, right)

    def test_invert_operator_builds_Not(self):
        part = AttributeExists("patient")
        negated = ~part
        assert isinstance(negated, Not)
        assert negated.part is part

    def test_double_negation_wraps_twice(self, record, pname):
        part = AttributeEquals("city", "london")
        twice = ~~part
        assert isinstance(twice, Not) and isinstance(twice.part, Not)
        assert twice.matches(pname, record) == part.matches(pname, record)

    def test_operators_nest_and_evaluate(self, record, pname):
        predicate = (AttributeEquals("city", "london") | AttributeEquals("city", "boston")) & ~(
            AttributeEquals("domain", "weather")
        )
        assert isinstance(predicate, And)
        assert predicate.matches(pname, record)

    def test_operators_propagate_requires_lineage(self, pname):
        lineage = DerivedFrom(pname)
        plain = AttributeEquals("a", 1)
        assert (plain & lineage).requires_lineage
        assert (plain | lineage).requires_lineage
        assert (~lineage).requires_lineage
        assert not (plain & plain).requires_lineage


class TestLineagePredicates:
    def test_lineage_without_oracle_raises(self, record, pname):
        with pytest.raises(QueryError):
            DerivedFrom(pname).matches(pname, record)

    def test_derived_from_with_oracle(self, record, pname):
        class Oracle:
            def is_ancestor(self, ancestor, descendant):
                return ancestor.digest == pname.digest

        child = record.derive({"stage": "x"})
        assert DerivedFrom(pname).matches(child.pname(), child, Oracle())
        assert not DerivedFrom(pname).matches(pname, record, Oracle())
        assert DerivedFrom(pname, include_self=True).matches(pname, record, Oracle())

    def test_ancestor_of_with_oracle(self, record, pname):
        child = record.derive({"stage": "x"})

        class Oracle:
            def is_ancestor(self, ancestor, descendant):
                return ancestor.digest == pname.digest and descendant.digest == child.pname().digest

        assert AncestorOf(child.pname()).matches(pname, record, Oracle())
        assert not AncestorOf(child.pname()).matches(child.pname(), child, Oracle())


class TestQueryEvaluation:
    def _candidates(self):
        records = [
            ProvenanceRecord({"domain": "traffic", "city": city, "rank": rank})
            for rank, city in enumerate(["london", "boston", "seattle"])
        ]
        return [(record.pname(), record) for record in records]

    def test_true_matches_everything(self):
        candidates = self._candidates()
        assert len(Query(TRUE).evaluate(candidates)) == 3

    def test_limit_applied(self):
        candidates = self._candidates()
        assert len(Query(TRUE, limit=2).evaluate(candidates)) == 2

    def test_limit_must_be_positive(self):
        with pytest.raises(QueryError):
            Query(TRUE, limit=0)

    def test_order_by(self):
        candidates = self._candidates()
        ordered = Query(TRUE, order_by="city").evaluate(candidates)
        cities = [dict(candidates)[p].get("city") for p in ordered]
        assert cities == sorted(cities)

    def test_order_by_missing_attribute_sorts_last(self):
        records = [
            ProvenanceRecord({"domain": "traffic", "city": "london"}),
            ProvenanceRecord({"domain": "traffic"}),
        ]
        candidates = [(record.pname(), record) for record in records]
        ordered = Query(TRUE, order_by="city").evaluate(candidates)
        assert ordered[0] == records[0].pname()

    def test_exclude_removed(self):
        candidates = self._candidates()
        removed = {candidates[0][0].digest}
        results = Query(TRUE, include_removed=False).evaluate(
            candidates, removed=lambda p: p.digest in removed
        )
        assert candidates[0][0] not in results
        assert len(results) == 2
