"""End-to-end integration tests across subsystems.

Each test tells one of the paper's stories from start to finish:
collection -> derivation -> storage -> querying (local and distributed),
including the cross-domain federation and privacy scenarios.
"""

from __future__ import annotations

import pytest

from repro.core import (
    Agent,
    AgentIs,
    And,
    AttributeEquals,
    AttributeRange,
    DerivedFrom,
    NearLocation,
    PassStore,
    Query,
    Timestamp,
)
from repro.core.abstraction import AgentAbstractionRule
from repro.distributed import LocaleAwarePass
from repro.eval.scenario import origin_site_for, publish_all, standard_topology
from repro.pipeline import MergeOperator, TaintAnalysis
from repro.security import AccessRule, PolicyEngine, Principal, PrivacyAggregator
from repro.sensors.workloads import (
    CITY_CENTRES,
    MedicalWorkload,
    TrafficWorkload,
    WeatherWorkload,
)
from repro.storage import SQLiteBackend


class TestCongestionZoneStory:
    """The introduction's London Congestion Zone scenario, end to end."""

    @pytest.fixture(scope="class")
    def setting(self):
        traffic = TrafficWorkload(seed=101, cities=("london", "boston"), stations_per_city=3)
        weather = WeatherWorkload(seed=101, regions=("london",), stations_per_region=2)
        traffic_raw, traffic_derived = traffic.all_sets(hours=3.0)
        weather_raw, weather_derived = weather.all_sets(hours=3.0)
        store = PassStore()
        for tuple_set in traffic_raw + traffic_derived + weather_raw + weather_derived:
            store.ingest(tuple_set)
        return store, traffic_raw, traffic_derived, weather_raw

    def test_historical_aggregation_by_time(self, setting):
        store, *_ = setting
        morning = store.query(
            Query(
                And(
                    (
                        AttributeEquals("domain", "traffic"),
                        AttributeEquals("stage", "aggregated"),
                        AttributeRange("window_start", low=Timestamp(0.0), high=Timestamp(3 * 3600.0)),
                    )
                )
            )
        )
        assert morning

    def test_geographic_cross_city_query(self, setting):
        store, *_ = setting
        near_london = store.query(
            NearLocation("location", CITY_CENTRES["london"], radius_km=50.0)
        )
        near_boston = store.query(
            NearLocation("location", CITY_CENTRES["boston"], radius_km=50.0)
        )
        assert near_london and near_boston
        assert not set(near_london) & set(near_boston)

    def test_cross_domain_merge_with_provenance(self, setting):
        store, traffic_raw, traffic_derived, weather_raw = setting
        merge = MergeOperator(
            "traffic-weather-join", version="1.0", carry_attributes=("city", "region")
        )
        london_traffic = [ts for ts in traffic_derived if ts.provenance.get("city") == "london"][:1]
        london_weather = weather_raw[:1]
        joined = merge.apply_many(london_traffic + london_weather)
        store.ingest(joined)
        # The joined data set's raw sources span both domains.
        sources = store.raw_sources(joined.pname)
        domains = {store.get_record(p).get("domain") for p in sources}
        assert domains == {"traffic", "weather"}

    def test_suspect_sensor_taint_analysis(self, setting):
        store, traffic_raw, *_ = setting
        taint = TaintAnalysis(store)
        tainted = taint.tainted_by_data(traffic_raw[0].pname)
        assert len(tainted) > 1
        # Everything tainted is genuinely downstream of the suspect window.
        for pname in tainted - {traffic_raw[0].pname}:
            assert store.is_ancestor(traffic_raw[0].pname, pname)


class TestEmergencyMedicineStory:
    """Section III-C: vitals flow from the incident to the hospital, with privacy."""

    @pytest.fixture(scope="class")
    def setting(self):
        workload = MedicalWorkload(seed=55, patients=5, emts=2)
        raw, derived = workload.all_sets(hours=0.5)
        store = PassStore()
        for tuple_set in raw + derived:
            store.ingest(tuple_set)
        return workload, store, raw, derived

    def test_patient_and_system_queries(self, setting):
        workload, store, raw, derived = setting
        suite = workload.query_suite()
        per_patient = store.query(suite["everything_for_patient"])
        per_emt = store.query(suite["handled_by_emt"])
        assert per_patient and per_emt
        diagnosis = store.query(suite["patient_diagnosis"])
        assert len(diagnosis) == 1

    def test_diagnostic_output_traces_back_to_raw_vitals(self, setting):
        workload, store, raw, derived = setting
        diagnosis = store.query(
            And((AttributeEquals("patient", "patient-000"), AttributeEquals("stage", "diagnosis")))
        )[0]
        sources = store.raw_sources(diagnosis)
        assert sources
        assert all(store.get_record(p).get("patient") == "patient-000" for p in sources)

    def test_policy_blocks_press_but_allows_clinicians(self, setting):
        workload, store, raw, derived = setting
        engine = PolicyEngine(
            rules=[
                AccessRule(
                    "clinicians",
                    applies_to=AttributeEquals("domain", "medical"),
                    allowed_roles={"doctor", "emt"},
                )
            ],
            protected_domains={"medical"},
        )
        target = raw[0]
        record = store.get_record(target.pname)
        assert engine.check(Principal("emt-00", "emt"), target.pname, record).allowed
        assert not engine.check(Principal("reporter", "press"), target.pname, record).allowed

    def test_privacy_aggregate_is_queryable_but_deidentified(self, setting):
        workload, store, raw, derived = setting
        aggregator = PrivacyAggregator(
            group_by=["incident"], identifying_attributes=["patient", "emt"], k=3
        )
        report = aggregator.aggregate(raw)
        assert report.groups_published == 1
        aggregate = report.aggregates[0]
        store.ingest(aggregate)
        found = store.query(AttributeEquals("stage", "privacy-aggregate"))
        assert found == [aggregate.pname]
        assert store.get_record(aggregate.pname).get("patient") is None
        # Lineage still reaches the identified inputs for authorised auditors.
        assert len(store.ancestors(aggregate.pname)) >= 3


class TestDistributedArchiveStory:
    """Section V's second goal: local PASS installations merged into a global archive."""

    def test_locale_aware_archive_over_sqlite_local_stores(self, tmp_path):
        topology = standard_topology()
        archive = LocaleAwarePass(topology)
        traffic = TrafficWorkload(seed=9, cities=("london", "boston"), stations_per_city=2)
        raw, derived = traffic.all_sets(hours=1.0)
        publish_all(archive, raw + derived, topology)

        # A London consumer's query stays in Europe; a taint query started in
        # Tokyo still finds everything derived from a London window.
        local = archive.query(Query(AttributeEquals("city", "london")), "london-site")
        assert local.pnames
        assert set(local.sites_contacted) <= {"london-site", "boston-site"}

        taint = archive.descendants(raw[0].pname, "tokyo-site")
        truth = PassStore()
        for tuple_set in raw + derived:
            truth.ingest(tuple_set)
        assert taint.pname_set() == truth.descendants(raw[0].pname)

    def test_durable_local_store_survives_restart_and_reports_lineage(self, tmp_path):
        path = tmp_path / "site.db"
        store = PassStore(backend=SQLiteBackend(path))
        workload = TrafficWorkload(seed=13, stations_per_city=2)
        raw, derived = workload.all_sets(hours=1.0)
        for tuple_set in raw + derived:
            store.ingest(tuple_set)
        store.add_abstraction_rule(AgentAbstractionRule(agent_kind="sensor-network"))
        store.backend.close()

        reopened = PassStore(backend=SQLiteBackend(path))
        assert len(reopened) == len(raw) + len(derived)
        deepest = derived[-1]
        assert reopened.ancestors(deepest.pname)
        hits = reopened.query(AgentIs("hourly-aggregator"))
        assert hits
        assert reopened.query(DerivedFrom(raw[0].pname))
