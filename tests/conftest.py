"""Shared fixtures for the test suite.

Fixtures build small, deterministic workloads so individual tests stay
fast; anything that needs scale builds its own data.
"""

from __future__ import annotations

import pytest

from repro.core import Agent, GeoPoint, PassStore, ProvenanceRecord, SensorReading, Timestamp, TupleSet
from repro.eval.scenario import build_all_models, standard_topology
from repro.sensors.workloads import MedicalWorkload, TrafficWorkload


@pytest.fixture
def sample_record() -> ProvenanceRecord:
    """A minimal raw provenance record."""
    return ProvenanceRecord(
        attributes={
            "domain": "traffic",
            "city": "london",
            "network": "london-congestion-zone",
            "window_start": Timestamp(0.0),
            "window_end": Timestamp(300.0),
            "location": GeoPoint(51.5074, -0.1278),
        },
        agents=(Agent("sensor-network", "london-congestion-zone", "1.0"),),
    )


@pytest.fixture
def sample_tuple_set(sample_record) -> TupleSet:
    """A small tuple set with three readings."""
    readings = [
        SensorReading(
            sensor_id=f"london-cam-{i:03d}",
            timestamp=Timestamp(10.0 * i),
            values={"vehicle_count": 5 + i, "mean_speed_kph": 30.0 + i},
            location=GeoPoint(51.5074, -0.1278),
        )
        for i in range(3)
    ]
    return TupleSet(readings, sample_record)


@pytest.fixture
def store() -> PassStore:
    """An empty in-memory PASS store."""
    return PassStore()


@pytest.fixture
def traffic_workload() -> TrafficWorkload:
    """A small two-city traffic workload."""
    return TrafficWorkload(seed=42, cities=("london", "boston"), stations_per_city=2)


@pytest.fixture
def traffic_sets(traffic_workload):
    """(raw, derived) tuple sets for one hour of the traffic workload."""
    return traffic_workload.all_sets(hours=1.0)


@pytest.fixture
def populated_store(traffic_sets) -> PassStore:
    """A store holding the small traffic workload, raw and derived."""
    raw, derived = traffic_sets
    store = PassStore()
    for tuple_set in raw + derived:
        store.ingest(tuple_set)
    return store


@pytest.fixture
def medical_workload() -> MedicalWorkload:
    """A small EMT workload."""
    return MedicalWorkload(seed=7, patients=3, emts=2)


@pytest.fixture
def topology():
    """The standard four-city + warehouse evaluation topology."""
    return standard_topology()


@pytest.fixture
def all_models(topology):
    """Every architecture model over the standard topology."""
    return build_all_models(topology)
