"""Smoke tests: every example script runs end-to-end and prints its story."""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_has_expected_scripts():
    names = {path.name for path in EXAMPLES}
    assert {"quickstart.py", "traffic_congestion_zone.py", "emergency_medical.py",
            "scientific_derivation.py", "federated_cross_domain.py"} <= names


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda path: path.stem)
def test_example_runs_cleanly(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    captured = capsys.readouterr()
    assert captured.out.strip(), f"{script.name} printed nothing"
    assert "Traceback" not in captured.err


def test_quickstart_reports_surviving_provenance(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "provenance survives: True" in out
    assert "invariants violated: none" in out


def test_federated_example_reports_quality_for_every_model(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "federated_cross_domain.py"), run_name="__main__")
    out = capsys.readouterr().out
    for model in ("federated", "soft-state", "locale-aware-pass"):
        assert f"[{model}]" in out
    assert "refused (no transitive closure)" in out
