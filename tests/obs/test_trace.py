"""The span API: nesting, propagation, wire contexts, Chrome export."""

from __future__ import annotations

import json

import pytest

from repro.obs import SpanContext, chrome_trace, span
from repro.obs import trace as tracing


@pytest.fixture(autouse=True)
def _tracing_on():
    tracing.enable()
    tracing.clear()
    yield
    tracing.disable()
    tracing.clear()


def _by_name(spans):
    return {item.name: item for item in spans}


class TestSpanTree:
    def test_nested_spans_share_a_trace_and_parent_correctly(self):
        with span("outer"):
            with span("middle"):
                with span("inner"):
                    pass
        tree = _by_name(tracing.drain())
        assert set(tree) == {"outer", "middle", "inner"}
        outer, middle, inner = tree["outer"], tree["middle"], tree["inner"]
        assert outer.trace_id == middle.trace_id == inner.trace_id
        assert outer.parent_id is None
        assert middle.parent_id == outer.span_id
        assert inner.parent_id == middle.span_id

    def test_sibling_roots_get_distinct_traces(self):
        with span("first"):
            pass
        with span("second"):
            pass
        first, second = tracing.drain()
        assert first.trace_id != second.trace_id

    def test_explicit_parent_overrides_the_context(self):
        remote = SpanContext(trace_id="t" * 16, span_id="s" * 16)
        with span("stitched", parent=remote):
            pass
        (recorded,) = tracing.drain()
        assert recorded.trace_id == remote.trace_id
        assert recorded.parent_id == remote.span_id

    def test_wire_dict_parent_is_decoded(self):
        payload = {"trace_id": "a" * 16, "span_id": "b" * 16}
        with span("from-wire", parent=payload):
            pass
        (recorded,) = tracing.drain()
        assert recorded.trace_id == "a" * 16
        assert recorded.parent_id == "b" * 16

    def test_malformed_wire_parent_means_new_trace(self):
        with span("orphan", parent={"nope": 1}):
            pass
        (recorded,) = tracing.drain()
        assert recorded.parent_id is None

    def test_exceptions_are_recorded_and_propagate(self):
        with pytest.raises(ValueError):
            with span("failing"):
                raise ValueError("boom")
        (recorded,) = tracing.drain()
        assert recorded.error == "ValueError"

    def test_current_context_tracks_the_open_span(self):
        assert tracing.current_context() is None
        with span("open"):
            inside = tracing.current_context()
            assert inside is not None
        assert tracing.current_context() is None
        (recorded,) = tracing.drain()
        assert inside.span_id == recorded.span_id

    def test_attrs_and_duration_land_on_the_span(self):
        with span("attributed", attrs={"rows": 3}):
            pass
        (recorded,) = tracing.drain()
        assert recorded.attrs == {"rows": 3}
        assert recorded.duration_ns >= 0
        assert recorded.duration_ms == recorded.duration_ns / 1e6


class TestDisabledPath:
    def test_disabled_tracer_records_nothing(self):
        tracing.disable()
        with span("invisible"):
            pass
        assert tracing.spans() == []

    def test_disabled_span_is_the_shared_null_object(self):
        tracing.disable()
        assert span("a") is span("b")


class TestBuffer:
    def test_capacity_bounds_the_buffer_and_counts_drops(self):
        tracing.enable(capacity=4)
        try:
            for index in range(6):
                with span(f"s{index}"):
                    pass
            kept = tracing.drain()
            assert [item.name for item in kept] == ["s2", "s3", "s4", "s5"]
            assert tracing._TRACER.dropped == 2
        finally:
            tracing.enable(capacity=8192)
            tracing.clear()

    def test_truncated_exports_are_counted_once_per_drop_burst(self):
        tracing.enable(capacity=2)
        try:
            for index in range(5):
                with span(f"s{index}"):
                    pass
            tracing.drain()  # exported after drops: one truncation
            tracing.drain()  # no new drops since: not a truncation
            counters = tracing.ring_counters()
            assert counters["trace.spans_dropped"] == 3
            assert counters["trace.exports_truncated"] == 1
        finally:
            tracing.enable(capacity=8192)
            tracing.clear()

    def test_ring_counters_reset_with_clear(self):
        tracing.enable(capacity=2)
        try:
            for index in range(4):
                with span(f"s{index}"):
                    pass
            tracing.spans()
            tracing.clear()
            counters = tracing.ring_counters()
            assert counters == {
                "trace.spans_dropped": 0,
                "trace.exports_truncated": 0,
            }
        finally:
            tracing.enable(capacity=8192)
            tracing.clear()

    def test_drain_empties_spans_copies(self):
        with span("kept"):
            pass
        assert len(tracing.spans()) == 1
        assert len(tracing.spans()) == 1  # spans() is a copy
        assert len(tracing.drain()) == 1
        assert tracing.spans() == []


class TestChromeExport:
    def test_export_is_valid_chrome_trace_json(self):
        with span("outer", attrs={"k": "v"}):
            with span("inner"):
                pass
        document = chrome_trace(tracing.drain())
        parsed = json.loads(json.dumps(document))
        assert parsed["displayTimeUnit"] == "ms"
        events = parsed["traceEvents"]
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert isinstance(event["ts"], float)
            assert isinstance(event["dur"], float)
            assert event["pid"] == 1
            assert event["args"]["trace_id"]
        inner = next(event for event in events if event["name"] == "inner")
        outer = next(event for event in events if event["name"] == "outer")
        assert inner["args"]["parent_id"] == outer["args"]["span_id"]
        assert outer["args"]["k"] == "v"
        assert outer["cat"] == "outer"

    def test_chrome_trace_without_argument_drains_the_tracer(self):
        with span("drained"):
            pass
        document = chrome_trace()
        assert len(document["traceEvents"]) == 1
        assert tracing.spans() == []
