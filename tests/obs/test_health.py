"""Health checks: probe builders, aggregation, and client surfaces."""

from __future__ import annotations

import pytest

from repro.api import connect
from repro.obs import HealthCheck, evaluate, trace
from repro.obs.health import (
    closure_check,
    storage_check,
    subscription_check,
    trace_ring_check,
)


def _check(ok, critical=True, name="probe"):
    return HealthCheck(name=name, probe=lambda: (ok, "detail"), critical=critical)


class TestEvaluate:
    def test_all_ok(self):
        report = evaluate([_check(True), _check(True, critical=False, name="soft")])
        assert report["status"] == "ok"
        assert set(report["checks"]) == {"probe", "soft"}
        assert report["checks"]["probe"] == {
            "ok": True,
            "critical": True,
            "detail": "detail",
        }

    def test_failing_critical_fails_the_report(self):
        report = evaluate([_check(False), _check(True, critical=False, name="soft")])
        assert report["status"] == "failing"

    def test_failing_noncritical_only_degrades(self):
        report = evaluate([_check(True), _check(False, critical=False, name="soft")])
        assert report["status"] == "degraded"

    def test_critical_failure_wins_over_degraded(self):
        report = evaluate(
            [_check(False, critical=False, name="soft"), _check(False, name="hard")]
        )
        assert report["status"] == "failing"

    def test_a_raising_probe_fails_but_never_propagates(self):
        def boom():
            raise RuntimeError("kaput")

        report = evaluate([HealthCheck(name="bad", probe=boom)])
        assert report["status"] == "failing"
        assert "kaput" in report["checks"]["bad"]["detail"]


class TestBuilders:
    def test_storage_check_on_a_live_memory_store(self):
        with connect("memory://") as client:
            ok, detail = storage_check(client.store).probe()
        assert ok
        assert "in-memory" in detail

    def test_storage_check_fails_on_a_closed_sqlite_backend(self, tmp_path):
        client = connect(f"sqlite:///{tmp_path}/pass.db")
        check = storage_check(client.store)
        client.close()
        ok, detail = check.probe()
        assert not ok
        assert "closed" in detail

    def test_closure_check_reports_strategy_and_dirty_edges(self):
        with connect("memory://") as client:
            ok, detail = closure_check(client.store).probe()
        assert ok
        assert "dirty edge(s)" in detail

    def test_closure_check_fails_over_the_dirty_limit(self):
        class FakeClosure:
            def index_stats(self):
                return {"strategy": "interval", "dirty_edges": 50}

        class FakeStore:
            closure = FakeClosure()

        ok, detail = closure_check(FakeStore(), max_dirty_edges=10).probe()
        assert not ok
        assert "limit 10" in detail

    def test_subscription_check_flags_drops(self):
        class FakeSub:
            id = "s1"
            dropped = 3
            queue = None

        ok, detail = subscription_check(lambda: [FakeSub()]).probe()
        assert not ok
        assert "dropped" in detail

    def test_subscription_check_flags_saturated_queues(self):
        class FakeQueue:
            maxsize = 10

            def __len__(self):
                return 10

        class FakeSub:
            id = "s1"
            dropped = 0
            queue = FakeQueue()

        ok, detail = subscription_check(lambda: [FakeSub()]).probe()
        assert not ok
        assert "full" in detail

    def test_trace_ring_check_is_stateful(self):
        check = trace_ring_check()
        ok, _ = check.probe()
        assert ok
        tracer = trace._TRACER
        tracer.dropped += 5  # simulate ring evictions since the baseline
        try:
            ok, detail = check.probe()
            assert not ok and "5 span(s)" in detail
            # The burst was reported once; a recovered process is ok again.
            ok, _ = check.probe()
            assert ok
        finally:
            tracer.dropped -= 5


class TestClientHealth:
    def test_local_client_health_runs_the_standard_checks(self):
        with connect("memory://") as client:
            report = client.health()
        assert report["status"] == "ok"
        assert {"storage", "closure", "subscriptions", "trace-ring"} <= set(
            report["checks"]
        )

    def test_model_client_health_has_at_least_the_trace_ring(self):
        with connect("centralized://") as client:
            report = client.health()
        assert report["status"] == "ok"
        assert "trace-ring" in report["checks"]

    def test_check_list_is_cached_so_rate_baselines_survive(self):
        with connect("memory://") as client:
            client.health()
            first = client._health_check_list
            client.health()
            assert client._health_check_list is first
