"""Daemon introspection: access log, metrics op, slow queries, stitching."""

from __future__ import annotations

import logging

import pytest

from repro.api import Q, connect
from repro.obs import trace
from repro.sensors.workloads import TrafficWorkload
from repro.server import PassDaemon


@pytest.fixture(scope="module")
def workload_sets():
    workload = TrafficWorkload(seed=5, cities=("london",), stations_per_city=2)
    raw, derived = workload.all_sets(hours=0.25)
    return raw, derived


def _publish(client, workload_sets):
    raw, derived = workload_sets
    client.publish_many(raw + derived)
    client.refresh()


class TestAccessLog:
    def test_every_request_logs_op_tenant_duration_status(self, caplog, workload_sets):
        with PassDaemon() as daemon:
            with caplog.at_level(logging.INFO, logger="repro.server"):
                with connect(daemon.address.url) as client:
                    _publish(client, workload_sets)
                    client.query(Q.attr("city") == "london", limit=3)
                    client.stats()  # dispatch is sequential: query's line exists now
        lines = [record.getMessage() for record in caplog.records]
        query_lines = [line for line in lines if line.startswith("op=query ")]
        assert query_lines, f"no query access-log line in {lines}"
        assert "tenant=default" in query_lines[0]
        assert "duration_ms=" in query_lines[0]
        assert "status=ok" in query_lines[0]

    def test_failures_log_the_typed_error_code(self, caplog):
        with PassDaemon(tokens={"secret": "alpha"}) as daemon:
            with caplog.at_level(logging.INFO, logger="repro.server"):
                from repro.errors import AuthError

                with pytest.raises(AuthError):
                    connect(daemon.address.url)  # no token: hello is refused
        lines = [record.getMessage() for record in caplog.records]
        assert any("op=hello" in line and "status=auth" in line for line in lines), lines


class TestMetricsOp:
    def test_metrics_reports_rates_percentiles_and_subscriptions(self, workload_sets):
        with PassDaemon() as daemon:
            with connect(daemon.address.url) as client:
                _publish(client, workload_sets)
                for _ in range(3):
                    client.query(Q.attr("city") == "london", limit=3)
                client.subscribe(Q.attr("city") == "london")
                snapshot = client.daemon_metrics()
        assert snapshot["uptime_s"] > 0
        default = snapshot["tenants"]["default"]
        assert default["active_subscriptions"] == 1
        query = default["ops"]["query"]
        assert query["count"] == 3
        assert query["errors"] == 0
        assert query["rate_per_s"] > 0
        assert query["p50_ms"] is not None
        assert query["p99_ms"] >= query["p50_ms"]

    def test_token_scoped_metrics_hide_other_tenants(self, workload_sets):
        tokens = {"ta": "alpha", "tb": "beta"}
        with PassDaemon(tokens=tokens) as daemon:
            url = daemon.address.url
            with connect(f"{url}?token=tb") as other:
                _publish(other, workload_sets)
            with connect(f"{url}?token=ta") as client:
                client.query(None, limit=1)
                snapshot = client.daemon_metrics()
        assert set(snapshot["tenants"]) == {"alpha"}

    def test_open_daemon_metrics_show_every_tenant(self, workload_sets):
        with PassDaemon() as daemon:
            url = daemon.address.url
            with connect(f"{url}?tenant=alpha") as first:
                _publish(first, workload_sets)
                with connect(f"{url}?tenant=beta") as second:
                    second.query(None, limit=1)
                    snapshot = first.daemon_metrics()
        assert {"alpha", "beta"} <= set(snapshot["tenants"])


class TestSlowQueryLog:
    def test_slow_queries_capture_the_explain_tree(self, caplog, workload_sets):
        with PassDaemon(slow_query_ms=0.0) as daemon:  # everything is "slow"
            with caplog.at_level(logging.INFO, logger="repro.server"):
                with connect(daemon.address.url) as client:
                    _publish(client, workload_sets)
                    client.query(Q.attr("city") == "london", limit=3)
                    snapshot = client.daemon_metrics()
        warnings = [
            record for record in caplog.records if record.levelno == logging.WARNING
        ]
        assert warnings, "no slow-query WARNING logged"
        message = warnings[0].getMessage()
        assert "slow query" in message
        assert "tenant=default" in message
        assert "duration:" in message  # the Explain tree rode along
        slow = snapshot["slow_queries"]
        assert slow and slow[0]["tenant"] == "default"
        assert slow[0]["duration_ms"] >= 0
        assert "rows" in slow[0]["explain"]

    def test_disabled_threshold_logs_nothing_slow(self, caplog, workload_sets):
        with PassDaemon() as daemon:  # slow_query_ms=None
            with caplog.at_level(logging.INFO, logger="repro.server"):
                with connect(daemon.address.url) as client:
                    _publish(client, workload_sets)
                    client.query(Q.attr("city") == "london", limit=3)
                    snapshot = client.daemon_metrics()
        assert snapshot["slow_queries"] == []
        assert not [r for r in caplog.records if r.levelno == logging.WARNING]


class TestWireStitching:
    @pytest.fixture(autouse=True)
    def _tracing(self):
        trace.enable()
        trace.clear()
        yield
        trace.disable()
        trace.clear()

    def test_traced_query_yields_one_stitched_tree(self, workload_sets):
        # Embedded daemon: both sides of the socket share the process
        # tracer, so the full cross-wire tree lands in one buffer.
        with PassDaemon() as daemon:
            with connect(daemon.address.url) as client:
                _publish(client, workload_sets)
                trace.clear()
                with trace.span("test.root"):
                    client.query(Q.attr("city") == "london", limit=3)
        spans = trace.drain()
        by_name = {}
        for item in spans:
            by_name.setdefault(item.name, []).append(item)
        assert len({item.trace_id for item in spans}) == 1, (
            f"spans split into multiple traces: {[s.name for s in spans]}"
        )
        (rpc,) = by_name["rpc.query"]
        (daemon_span,) = by_name["daemon.query"]
        # The daemon's handler span hangs off the caller's rpc span even
        # though it ran on another thread, via the wire-carried context.
        assert daemon_span.parent_id == rpc.span_id
        assert daemon_span.thread != rpc.thread
        # ... and the tenant store's execution nests beneath the handler.
        executor_spans = by_name.get("query.execute")
        assert executor_spans, f"no executor span in {sorted(by_name)}"
        assert executor_spans[0].attrs["path"]

    def test_untraced_wire_calls_carry_no_context(self, workload_sets):
        trace.disable()
        with PassDaemon() as daemon:
            with connect(daemon.address.url) as client:
                _publish(client, workload_sets)
                client.query(Q.attr("city") == "london", limit=3)
        assert trace.spans() == []


class TestExplainDuration:
    def test_explain_duration_crosses_the_wire(self, workload_sets):
        with PassDaemon() as daemon:
            with connect(daemon.address.url) as client:
                _publish(client, workload_sets)
                explain = client.explain(Q.attr("city") == "london")
        assert explain.duration_ms > 0
        assert "duration:" in explain.format()

    def test_local_explain_measures_duration(self, workload_sets):
        with connect("memory://") as client:
            _publish(client, workload_sets)
            explain = client.explain(Q.attr("city") == "london")
        assert explain.duration_ms > 0
