"""The daemon's monitoring surface: sampler, wire ops, HTTP, sim parity."""

from __future__ import annotations

import json
import socket
import time

import pytest

from repro.api import Q, connect
from repro.core import ProvenanceRecord, Timestamp, TupleSet
from repro.errors import ConfigurationError
from repro.server import PassDaemon

RULES = [
    {
        "name": "query-rate-spike",
        "kind": "threshold",
        "series": "daemon.default.query.calls",
        "stat": "rate",
        "op": ">",
        "value": 5.0,
        "window_s": 30,
        "for_s": 0,
    }
]


def _wait_for(predicate, timeout=10.0, interval=0.05):
    deadline = time.time() + timeout
    while time.time() < deadline:
        result = predicate()
        if result:
            return result
        time.sleep(interval)
    return predicate()


class TestSampler:
    def test_sampler_builds_per_op_series(self):
        with PassDaemon(sample_interval_s=0.05) as daemon:
            with connect(daemon.address.url) as client:
                for _ in range(5):
                    client.query(None, limit=1)

                def sampled():
                    names = daemon.timeseries.names()
                    return "daemon.default.query.calls" in names and names

                names = _wait_for(sampled)
        assert "daemon.default.query.calls" in names
        assert "daemon.default.query.ms" in names
        assert "daemon.connections" in names
        assert "trace.spans_dropped" in names
        assert daemon.timeseries.kind("daemon.default.query.ms") == "histogram"

    def test_sampler_off_disables_timeseries_and_alerts(self):
        with PassDaemon(sample_interval_s=None) as daemon:
            with connect(daemon.address.url) as client:
                ts = client.timeseries()
                alerts = client.alerts()
        assert ts == {"enabled": False, "reason": "sampler disabled"}
        assert alerts["enabled"] is False

    def test_alert_rules_without_a_sampler_are_refused(self):
        with pytest.raises(ConfigurationError):
            PassDaemon(sample_interval_s=None, alert_rules=RULES)


class TestWireOps:
    def test_metrics_export_serves_openmetrics_text(self):
        with PassDaemon(sample_interval_s=0.05) as daemon:
            with connect(daemon.address.url) as client:
                client.query(None, limit=1)
                export = _wait_for(
                    lambda: (e := client.metrics_export())
                    and "daemon_default_query_calls_total" in e["text"]
                    and e
                )
        assert export["content_type"].startswith("application/openmetrics-text")
        assert export["text"].rstrip().endswith("# EOF")

    def test_health_op_reports_per_tenant_checks(self):
        with PassDaemon() as daemon:
            with connect(daemon.address.url) as client:
                report = client.health()
        assert report["status"] == "ok"
        assert {"storage:default", "closure:default", "subscriptions", "trace-ring"} <= set(
            report["checks"]
        )

    def test_alert_rules_evaluate_on_the_tick(self):
        with PassDaemon(sample_interval_s=0.05, alert_rules=RULES) as daemon:
            with connect(daemon.address.url) as client:

                def drive_until_firing():
                    # Keep load flowing so the sampler sees the counter
                    # *rising*; a finished burst rates at zero.
                    for _ in range(20):
                        client.query(None, limit=1)
                    s = client.alerts()
                    return s if "query-rate-spike" in s.get("firing", []) else None

                snapshot = drive_until_firing() or _wait_for(drive_until_firing)
        assert snapshot["enabled"] is True
        assert "query-rate-spike" in snapshot["firing"]

    def test_timeseries_op_serves_the_snapshot_schema(self):
        with PassDaemon(sample_interval_s=0.05) as daemon:
            with connect(daemon.address.url) as client:
                client.query(None, limit=1)
                snapshot = _wait_for(
                    lambda: (s := client.timeseries()) and s.get("series") and s
                )
        assert snapshot["enabled"] is True
        assert snapshot["interval_s"] == pytest.approx(0.05)
        entry = snapshot["series"]["daemon.default.query.calls"]
        assert entry["kind"] == "counter"
        assert entry["points"]

    def test_token_scoping_hides_other_tenants_series(self):
        tokens = {"ta": "alpha", "tb": "beta"}
        with PassDaemon(tokens=tokens, sample_interval_s=0.05) as daemon:
            url = daemon.address.url
            with connect(f"{url}?token=tb") as other:
                other.query(None, limit=1)
            with connect(f"{url}?token=ta") as client:
                client.query(None, limit=1)
                export = _wait_for(
                    lambda: (e := client.metrics_export())
                    and "daemon_alpha_query_calls_total" in e["text"]
                    and e
                )
                snapshot = client.timeseries()
        assert "daemon_beta" not in export["text"]
        assert "daemon_connections" in export["text"]  # global series stay
        assert all(
            name.startswith(("daemon.alpha.", "trace.")) or name == "daemon.connections"
            for name in snapshot["series"]
        )


class TestMetricsHttpEndpoint:
    def _get(self, address, path):
        with socket.create_connection((address.host, address.port), timeout=5) as sock:
            sock.sendall(f"GET {path} HTTP/1.1\r\nHost: x\r\n\r\n".encode())
            sock.settimeout(5)
            data = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                data += chunk
        head, _, body = data.partition(b"\r\n\r\n")
        return head.decode(), body.decode()

    def test_metrics_path_serves_openmetrics(self):
        with PassDaemon(sample_interval_s=0.05, metrics_port=0) as daemon:
            with connect(daemon.address.url) as client:
                client.query(None, limit=1)
                _wait_for(
                    lambda: "daemon.default.query.calls" in daemon.timeseries.names()
                )
            head, body = self._get(daemon.metrics_address, "/metrics")
        assert "200" in head.splitlines()[0]
        assert "application/openmetrics-text" in head
        assert "daemon_default_query_calls_total" in body
        assert body.rstrip().endswith("# EOF")

    def test_health_path_serves_json(self):
        with PassDaemon(metrics_port=0) as daemon:
            head, body = self._get(daemon.metrics_address, "/health")
        assert "200" in head.splitlines()[0]
        report = json.loads(body)
        assert report["status"] == "ok"

    def test_unknown_path_is_404(self):
        with PassDaemon(metrics_port=0) as daemon:
            head, _ = self._get(daemon.metrics_address, "/nope")
        assert "404" in head.splitlines()[0]


class TestServeSimParity:
    """Acceptance: a live daemon and a sim run emit the same schema."""

    def _sim_report(self):
        from repro.sim.workload import simulate_publish_workload

        sets = [
            TupleSet(
                [],
                ProvenanceRecord(
                    {
                        "domain": "traffic",
                        "city": "london",
                        "sequence": i,
                        "window_start": Timestamp(i * 60.0),
                        "window_end": Timestamp((i + 1) * 60.0),
                    }
                ),
            )
            for i in range(40)
        ]
        with connect("centralized://") as client:
            return simulate_publish_workload(
                client.model, sets, clients=4, sample_interval_ms=1000.0
            )

    def _daemon_snapshot(self):
        with PassDaemon(sample_interval_s=0.05) as daemon:
            with connect(daemon.address.url) as client:
                for _ in range(5):
                    client.query(Q.attr("city") == "london", limit=1)
                return _wait_for(
                    lambda: (s := client.timeseries())
                    and "daemon.default.query.ms" in s.get("series", {})
                    and s
                )

    def test_timeseries_snapshots_are_schema_identical(self):
        sim = self._sim_report().snapshot()["timeseries"]
        live = self._daemon_snapshot()
        live.pop("enabled")
        assert set(sim) == set(live) == {"interval_s", "retention", "series"}

        def shapes(snapshot):
            out = {}
            for name, entry in snapshot["series"].items():
                assert set(entry) == {"kind", "points"}
                point = entry["points"][0]
                assert len(point) == 2 and isinstance(point[0], (int, float))
                value_shape = (
                    tuple(sorted(point[1]))
                    if isinstance(point[1], dict)
                    else type(point[1]).__name__
                )
                out[entry["kind"]] = value_shape
            return out

        sim_shapes, live_shapes = shapes(sim), shapes(live)
        # Both runs produced all three kinds, with identical value shapes.
        for kind in ("counter", "gauge", "histogram"):
            assert kind in sim_shapes, f"sim emitted no {kind} series"
            assert kind in live_shapes, f"daemon emitted no {kind} series"
            assert sim_shapes[kind] == live_shapes[kind]

    def test_sim_series_render_through_the_same_exposition(self):
        from repro.obs import openmetrics

        report = self._sim_report()
        text = openmetrics(report.timeseries)
        assert "# TYPE ops_completed counter" in text
        assert 'op_latency_ms{quantile="0.99"}' in text
        assert text.endswith("# EOF\n")

    def test_same_rules_evaluate_against_simulated_deployments(self):
        from repro.sim.workload import simulate_publish_workload

        sets = [
            TupleSet([], ProvenanceRecord({"domain": "t", "sequence": i}))
            for i in range(30)
        ]
        rules = [
            {
                "name": "sim-op-rate",
                "kind": "threshold",
                "series": "ops.completed",
                "stat": "rate",
                "op": ">",
                "value": 0.0,
                "window_s": 3600,
                "for_s": 0,
            }
        ]
        with connect("centralized://") as client:
            report = simulate_publish_workload(
                client.model, sets, clients=4, alert_rules=rules
            )
        assert report.alerts is not None
        assert "sim-op-rate" in report.alerts["firing"]
