"""The metrics registry: instruments, streaming quantiles, providers."""

from __future__ import annotations

import random

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestInstruments:
    def test_counter_increments(self):
        counter = Counter("hits")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_gauge_set_and_callback(self):
        gauge = Gauge("level")
        assert gauge.read() is None
        gauge.set(7)
        assert gauge.read() == 7
        computed = Gauge("derived", fn=lambda: 42)
        assert computed.read() == 42


class TestHistogram:
    def test_empty_histogram_snapshot(self):
        snapshot = Histogram("empty").snapshot()
        assert snapshot["count"] == 0
        assert snapshot["mean"] is None
        assert snapshot["p50"] is None

    @pytest.mark.parametrize("quantile", [0.50, 0.95, 0.99])
    def test_quantiles_track_sorted_samples_within_bucket_error(self, quantile):
        # Log buckets with base 1.1 promise <= ~5% relative error; allow
        # 6% for the rank-rounding difference against nearest-rank.
        rng = random.Random(7)
        samples = [rng.lognormvariate(1.0, 1.5) for _ in range(5000)]
        histogram = Histogram("latency")
        for value in samples:
            histogram.observe(value)
        ordered = sorted(samples)
        exact = ordered[min(len(ordered) - 1, int(quantile * len(ordered)))]
        estimated = histogram.quantile(quantile)
        assert estimated == pytest.approx(exact, rel=0.06)

    def test_min_max_mean_are_exact(self):
        histogram = Histogram("d")
        for value in (2.0, 4.0, 6.0):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        assert snapshot["min"] == 2.0
        assert snapshot["max"] == 6.0
        assert snapshot["mean"] == pytest.approx(4.0)
        assert snapshot["count"] == 3

    def test_non_positive_values_share_the_underflow_bucket(self):
        histogram = Histogram("z")
        histogram.observe(0.0)
        histogram.observe(-3.0)
        histogram.observe(10.0)
        assert histogram.quantile(0.01) == -3.0  # underflow answers min
        assert histogram.snapshot()["min"] == -3.0

    def test_sub_one_values_bucket_correctly(self):
        histogram = Histogram("small")
        for value in (0.001, 0.01, 0.5):
            histogram.observe(value)
        assert histogram.quantile(0.01) == pytest.approx(0.001, rel=0.06)
        assert histogram.quantile(0.99) == pytest.approx(0.5, rel=0.06)

    def test_quantile_never_leaves_observed_range(self):
        histogram = Histogram("clamped")
        histogram.observe(5.0)
        for quantile in (0.01, 0.5, 0.99):
            assert histogram.quantile(quantile) == 5.0


class TestRegistry:
    def test_instruments_are_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")
        assert registry.gauge("g") is registry.gauge("g")

    def test_record_op_builds_the_documented_names(self):
        registry = MetricsRegistry()
        registry.record_op("query", 12.5)
        registry.record_op("query", 2.5, failed=True)
        obs = registry.obs_snapshot()
        assert obs["counters"]["client.query"] == 2
        assert obs["counters"]["client.query.errors"] == 1
        assert obs["histograms"]["client.query.ms"]["count"] == 2

    def test_collect_serves_providers_in_order_plus_obs(self):
        registry = MetricsRegistry()
        registry.register_provider("store", lambda: {"records": 3})
        registry.register_provider("planner", lambda: {"cache": "cold"})
        facts = registry.collect()
        assert list(facts) == ["store", "planner", "obs"]
        assert facts["store"] == {"records": 3}
        assert set(facts["obs"]) == {"counters", "gauges", "histograms"}

    def test_gauge_callbacks_are_read_at_collection_time(self):
        registry = MetricsRegistry()
        state = {"n": 1}
        registry.gauge("live", fn=lambda: state["n"])
        assert registry.obs_snapshot()["gauges"]["live"] == 1
        state["n"] = 9
        assert registry.obs_snapshot()["gauges"]["live"] == 9
