"""The time-series store: slot rings, rate derivation, exposition."""

from __future__ import annotations

import random

import pytest

from repro.obs import Histogram, MetricsRegistry, TimeSeriesStore, openmetrics
from repro.obs.export import metric_name


class TestSlots:
    def test_interval_and_retention_are_validated(self):
        with pytest.raises(ValueError):
            TimeSeriesStore(interval_s=0)
        with pytest.raises(ValueError):
            TimeSeriesStore(retention=1)

    def test_gauge_same_slot_keeps_last_value(self):
        store = TimeSeriesStore(interval_s=1.0, retention=10)
        store.observe_gauge("g", 5.1, 1.0)
        store.observe_gauge("g", 5.9, 2.0)
        assert store.points("g") == [(5.0, 2.0)]

    def test_points_carry_slot_start_times(self):
        store = TimeSeriesStore(interval_s=2.0, retention=10)
        store.observe_gauge("g", 1.0, 10.0)
        store.observe_gauge("g", 4.5, 20.0)
        assert store.points("g") == [(0.0, 10.0), (4.0, 20.0)]

    def test_retention_evicts_oldest_slots(self):
        store = TimeSeriesStore(interval_s=1.0, retention=3)
        for t in range(6):
            store.observe_gauge("g", float(t), float(t))
        assert [t for t, _ in store.points("g")] == [3.0, 4.0, 5.0]

    def test_kind_conflicts_are_refused(self):
        store = TimeSeriesStore()
        store.observe_gauge("x", 0.0, 1.0)
        with pytest.raises(ValueError):
            store.observe_counter("x", 1.0, 2.0)

    def test_window_filters_points(self):
        store = TimeSeriesStore(interval_s=1.0, retention=100)
        for t in range(10):
            store.observe_gauge("g", float(t), float(t))
        assert store.points("g", start=7.0) == [(7.0, 7.0), (8.0, 8.0), (9.0, 9.0)]
        assert store.latest("g") == (9.0, 9.0)
        assert store.latest("missing") is None


class TestRate:
    def test_rate_is_increase_over_span(self):
        store = TimeSeriesStore(interval_s=1.0, retention=100)
        for t in range(5):
            store.observe_counter("c", float(t), float(t * 10))
        assert store.rate("c") == pytest.approx(10.0)

    def test_rate_survives_counter_resets(self):
        store = TimeSeriesStore(interval_s=1.0, retention=100)
        # 0 -> 30 then a restart back to 0 -> 10: the negative step is
        # dropped, not summed as a -30 spike.
        for t, value in enumerate([0, 30, 0, 10]):
            store.observe_counter("c", float(t), float(value))
        assert store.rate("c") == pytest.approx((30 + 10) / 3.0)

    def test_rate_needs_two_points_and_a_counter(self):
        store = TimeSeriesStore(interval_s=1.0, retention=100)
        store.observe_counter("c", 0.0, 5.0)
        assert store.rate("c") is None
        store.observe_gauge("g", 0.0, 5.0)
        store.observe_gauge("g", 1.0, 6.0)
        assert store.rate("g") is None

    def test_rate_windows_use_recent_points_only(self):
        store = TimeSeriesStore(interval_s=1.0, retention=100)
        for t, value in enumerate([0, 100, 110, 120]):
            store.observe_counter("c", float(t), float(value))
        assert store.rate("c", window_s=2.0) == pytest.approx(10.0)


class TestHistogramSeries:
    def test_deltas_hold_only_the_intervals_observations(self):
        store = TimeSeriesStore(interval_s=1.0, retention=100)
        histogram = Histogram("ms")
        histogram.observe(10.0)
        store.observe_histogram("ms", 0.0, histogram.state())
        histogram.observe(20.0)
        histogram.observe(30.0)
        store.observe_histogram("ms", 1.0, histogram.state())
        points = store.points("ms")
        assert [state.count for _, state in points] == [1, 2]
        assert points[1][1].total == pytest.approx(50.0)

    def test_window_percentiles_match_the_live_histogram(self):
        """Merged per-interval deltas == the cumulative distribution."""
        rng = random.Random(11)
        store = TimeSeriesStore(interval_s=1.0, retention=600)
        histogram = Histogram("ms")
        for t in range(50):
            for _ in range(40):
                histogram.observe(rng.lognormvariate(2.0, 0.8))
            store.observe_histogram("ms", float(t), histogram.state())
        merged = store.window_state("ms")
        assert merged.count == 2000
        for q in (0.5, 0.95, 0.99):
            assert store.quantile("ms", q) == pytest.approx(histogram.quantile(q))

    def test_quantile_without_data_is_none(self):
        store = TimeSeriesStore()
        assert store.quantile("missing", 0.5) is None


class TestSampleRegistry:
    def test_scrapes_every_instrument_kind(self):
        registry = MetricsRegistry()
        registry.counter("reqs").inc(3)
        registry.gauge("depth").set(7)
        registry.histogram("ms").observe(12.0)
        store = TimeSeriesStore(interval_s=1.0, retention=10)
        store.sample_registry(registry, 0.0, prefix="node.")
        assert store.names() == ["node.depth", "node.ms", "node.reqs"]
        assert store.kind("node.reqs") == "counter"
        assert store.kind("node.depth") == "gauge"
        assert store.kind("node.ms") == "histogram"

    def test_non_numeric_gauges_are_skipped(self):
        registry = MetricsRegistry()
        registry.gauge("label", fn=lambda: "blue")
        store = TimeSeriesStore()
        store.sample_registry(registry, 0.0)
        assert store.names() == []


class TestSnapshot:
    def test_snapshot_is_json_safe_and_schema_stable(self):
        import json

        store = TimeSeriesStore(interval_s=1.0, retention=10)
        store.observe_counter("c", 0.0, 1.0)
        store.observe_gauge("g", 0.0, 2.0)
        histogram = Histogram("ms")
        histogram.observe(5.0)
        store.observe_histogram("ms", 0.0, histogram.state())
        snapshot = store.snapshot()
        json.dumps(snapshot)  # JSON-safe end to end
        assert set(snapshot) == {"interval_s", "retention", "series"}
        for entry in snapshot["series"].values():
            assert set(entry) == {"kind", "points"}
        summary = snapshot["series"]["ms"]["points"][0][1]
        assert set(summary) == {"count", "mean", "min", "max", "p50", "p95", "p99"}

    def test_snapshot_names_scopes_the_document(self):
        store = TimeSeriesStore()
        store.observe_gauge("a", 0.0, 1.0)
        store.observe_gauge("b", 0.0, 2.0)
        assert set(store.snapshot(names=["b"])["series"]) == {"b"}


class TestOpenMetrics:
    def test_exposition_grammar(self):
        store = TimeSeriesStore(interval_s=1.0, retention=10)
        for t in range(3):
            store.observe_counter("daemon.default.query.calls", float(t), float(t))
        store.observe_gauge("daemon.connections", 2.0, 4.0)
        histogram = Histogram("ms")
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        store.observe_histogram("daemon.default.query.ms", 2.0, histogram.state())
        text = openmetrics(store, extra_gauges={"daemon.uptime_s": 12.5})
        assert text.endswith("# EOF\n")
        assert "# TYPE daemon_default_query_calls counter" in text
        assert "daemon_default_query_calls_total 2" in text
        assert "# TYPE daemon_connections gauge" in text
        assert "daemon_connections 4" in text
        assert 'daemon_default_query_ms{quantile="0.99"}' in text
        assert "daemon_default_query_ms_count 3" in text
        assert "daemon_default_query_ms_sum 6" in text
        assert "daemon_uptime_s 12.5" in text

    def test_names_scoping_limits_series(self):
        store = TimeSeriesStore()
        store.observe_gauge("daemon.alpha.depth", 0.0, 1.0)
        store.observe_gauge("daemon.beta.depth", 0.0, 2.0)
        text = openmetrics(store, names=["daemon.alpha.depth"])
        assert "daemon_alpha_depth" in text
        assert "daemon_beta_depth" not in text

    def test_metric_name_sanitizes_to_charset(self):
        assert metric_name("daemon.default.query.ms") == "daemon_default_query_ms"
        assert metric_name("9lives") == "_9lives"

    def test_empty_store_is_just_eof(self):
        assert openmetrics(TimeSeriesStore()) == "# EOF\n"
