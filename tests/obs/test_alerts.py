"""Alert rules: loading, the rule state machine, and the live daemon e2e."""

from __future__ import annotations

import json
import logging
import os
import subprocess
import sys
import time

import pytest

from repro.errors import ConfigurationError
from repro.obs import AlertEngine, AlertRule, Histogram, TimeSeriesStore, load_rules

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "..", "examples", "alerts.json")


def _threshold(**overrides):
    raw = {
        "name": "r",
        "kind": "threshold",
        "series": "g",
        "stat": "latest",
        "op": ">",
        "value": 10.0,
    }
    raw.update(overrides)
    return raw


class TestLoadRules:
    def test_loads_the_checked_in_example_file(self):
        rules = load_rules(EXAMPLES)
        assert [r.name for r in rules] == [
            "query-p99-high",
            "query-rate-spike",
            "publish-slo-burn",
        ]
        assert rules[0].kind == "threshold"
        assert rules[2].kind == "burn_rate"
        assert rules[2].objective == 0.999

    def test_accepts_a_dict_with_rules_key_or_a_list(self):
        assert len(load_rules({"rules": [_threshold()]})) == 1
        assert len(load_rules([_threshold()])) == 1

    def test_duplicate_names_are_refused(self):
        with pytest.raises(ConfigurationError):
            load_rules([_threshold(), _threshold()])

    def test_bad_shapes_are_refused(self):
        with pytest.raises(ConfigurationError):
            load_rules([{"kind": "threshold"}])  # no name
        with pytest.raises(ConfigurationError):
            load_rules([_threshold(kind="sorcery")])
        with pytest.raises(ConfigurationError):
            load_rules([_threshold(op="!=")])
        with pytest.raises(ConfigurationError):
            load_rules([_threshold(stat="p42")])
        with pytest.raises(ConfigurationError):
            load_rules([{"name": "b", "kind": "burn_rate", "errors": "e"}])  # no total

    def test_missing_file_is_a_configuration_error(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_rules(str(tmp_path / "nope.json"))

    def test_describe_renders_the_condition(self):
        rule = load_rules([_threshold(stat="p99", series="q.ms", value=250.0)])[0]
        assert "p99(q.ms) > 250.0" == rule.describe()["condition"]


class TestStateMachine:
    def _engine(self, **overrides):
        store = TimeSeriesStore(interval_s=1.0, retention=100)
        rules = load_rules([_threshold(**overrides)])
        return store, AlertEngine(store, rules)

    def test_threshold_fires_and_resolves(self):
        store, engine = self._engine()
        store.observe_gauge("g", 0.0, 5.0)
        engine.evaluate(0.0)
        assert engine.firing() == []
        store.observe_gauge("g", 1.0, 50.0)
        engine.evaluate(1.0)
        assert engine.firing() == ["r"]
        store.observe_gauge("g", 2.0, 5.0)
        engine.evaluate(2.0)
        assert engine.firing() == []
        assert [t["to"] for t in engine.transitions] == ["firing", "resolved"]

    def test_for_s_requires_a_sustained_breach(self):
        store, engine = self._engine(for_s=2)
        for t in range(2):
            store.observe_gauge("g", float(t), 50.0)
            engine.evaluate(float(t))
            assert engine.firing() == []  # breached but not held long enough
        store.observe_gauge("g", 2.0, 50.0)
        engine.evaluate(2.0)
        assert engine.firing() == ["r"]
        states = [t["to"] for t in engine.transitions]
        assert states == ["pending", "firing"]

    def test_a_blip_resets_the_hold_timer(self):
        store, engine = self._engine(for_s=2)
        store.observe_gauge("g", 0.0, 50.0)
        engine.evaluate(0.0)
        store.observe_gauge("g", 1.0, 1.0)  # dips back under
        engine.evaluate(1.0)
        store.observe_gauge("g", 2.0, 50.0)
        engine.evaluate(2.0)
        assert engine.firing() == []  # hold restarted at t=2

    def test_missing_series_never_fires(self):
        _, engine = self._engine(series="ghost")
        engine.evaluate(0.0)
        assert engine.firing() == []
        assert list(engine.transitions) == []

    def test_rate_stat_on_a_counter_series(self):
        store = TimeSeriesStore(interval_s=1.0, retention=100)
        rules = load_rules(
            [_threshold(stat="rate", series="c", value=5.0, window_s=10)]
        )
        engine = AlertEngine(store, rules)
        for t in range(4):
            store.observe_counter("c", float(t), float(t * 10))
        engine.evaluate(3.0)
        assert engine.firing() == ["r"]

    def test_histogram_quantile_stat(self):
        store = TimeSeriesStore(interval_s=1.0, retention=100)
        rules = load_rules(
            [_threshold(stat="p99", series="ms", value=100.0, window_s=60)]
        )
        engine = AlertEngine(store, rules)
        histogram = Histogram("ms")
        for _ in range(100):
            histogram.observe(300.0)
        store.observe_histogram("ms", 0.0, histogram.state())
        engine.evaluate(0.0)
        assert engine.firing() == ["r"]

    def test_burn_rate_measures_budget_multiples(self):
        store = TimeSeriesStore(interval_s=1.0, retention=100)
        rules = load_rules(
            [
                {
                    "name": "burn",
                    "kind": "burn_rate",
                    "errors": "op.errors",
                    "total": "op.calls",
                    "objective": 0.999,
                    "threshold": 5.0,
                    "window_s": 60,
                }
            ]
        )
        engine = AlertEngine(store, rules)
        # 1% errors against a 0.1% budget: burning at 10x, over the 5x bar.
        for t in range(4):
            store.observe_counter("op.calls", float(t), float(t * 1000))
            store.observe_counter("op.errors", float(t), float(t * 10))
        engine.evaluate(3.0)
        assert engine.firing() == ["burn"]
        snapshot = engine.snapshot()
        burn = snapshot["rules"][0]
        assert burn["status"] == "firing"
        assert burn["value"] == pytest.approx(10.0)

    def test_firing_transitions_log_at_warning(self, caplog):
        store, engine = self._engine()
        store.observe_gauge("g", 0.0, 50.0)
        with caplog.at_level(logging.INFO, logger="repro.obs.alerts"):
            engine.evaluate(0.0)
            store.observe_gauge("g", 1.0, 1.0)
            engine.evaluate(1.0)
        levels = [(r.levelname, r.getMessage()) for r in caplog.records]
        assert any(lvl == "WARNING" and "-> firing" in msg for lvl, msg in levels)
        assert any(lvl == "INFO" and "-> resolved" in msg for lvl, msg in levels)

    def test_transition_ring_is_bounded(self):
        store = TimeSeriesStore(interval_s=1.0, retention=100)
        engine = AlertEngine(store, load_rules([_threshold()]), transition_capacity=4)
        for t in range(12):
            store.observe_gauge("g", float(t), 50.0 if t % 2 else 1.0)
            engine.evaluate(float(t))
        assert len(engine.transitions) == 4

    def test_snapshot_shape_is_wire_stable(self):
        store, engine = self._engine()
        engine.evaluate(0.0)
        snapshot = engine.snapshot()
        assert set(snapshot) == {"rules", "firing", "transitions"}
        entry = snapshot["rules"][0]
        assert {"name", "kind", "condition", "window_s", "for_s", "status"} <= set(entry)
        json.dumps(snapshot)


class TestServeEndToEnd:
    """Satellite: examples/alerts.json against a real ``repro serve``."""

    def test_example_rules_load_and_fire_against_a_live_daemon(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(
            os.path.join(os.path.dirname(__file__), "..", "..", "src")
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0",
                "--sample-interval", "0.1",
                "--alert-rules", os.path.abspath(EXAMPLES),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            env=env,
        )
        try:
            banner = proc.stdout.readline()
            assert " at pass://" in banner, banner
            url = banner.split(" at ")[1].split()[0]
            from repro.api import connect

            with connect(url) as client:
                # Well over 20 queries/s, sustained while polling so the
                # sampler sees the counter rising: trips
                # "query-rate-spike" (for_s=0).
                deadline = time.time() + 15.0
                snapshot = client.alerts()
                while time.time() < deadline:
                    for _ in range(30):
                        client.query(None, limit=1)
                    snapshot = client.alerts()
                    if "query-rate-spike" in snapshot.get("firing", []):
                        break
                    time.sleep(0.1)
                assert snapshot["enabled"] is True
                assert [r["name"] for r in snapshot["rules"]] == [
                    "query-p99-high",
                    "query-rate-spike",
                    "publish-slo-burn",
                ]
                assert "query-rate-spike" in snapshot["firing"]
                assert any(
                    t["rule"] == "query-rate-spike" and t["to"] == "firing"
                    for t in snapshot["transitions"]
                )
                # The same series feed the exposition endpoint.
                export = client.metrics_export()
                assert "daemon_default_query_calls_total" in export["text"]
        finally:
            proc.terminate()
            proc.wait(timeout=10)
