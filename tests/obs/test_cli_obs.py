"""The observability CLI surface: ``repro top``, ``repro trace``, serve flags."""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import build_parser, main
from repro.server import PassDaemon


class TestServeFlags:
    def test_serve_accepts_log_level_and_slow_query_ms(self):
        args = build_parser().parse_args(
            ["serve", "--log-level", "debug", "--slow-query-ms", "5"]
        )
        assert args.log_level == "debug"
        assert args.slow_query_ms == 5.0

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.log_level == "info"
        assert args.slow_query_ms is None
        assert args.metrics_port is None
        assert args.alert_rules is None
        assert args.sample_interval == 1.0

    def test_serve_accepts_monitoring_flags(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--metrics-port", "9101",
                "--alert-rules", "rules.json",
                "--sample-interval", "0.5",
            ]
        )
        assert args.metrics_port == 9101
        assert args.alert_rules == "rules.json"
        assert args.sample_interval == 0.5

    def test_serve_refuses_unreadable_alert_rules(self, capsys):
        code = main(["serve", "--port", "0", "--alert-rules", "/nope/rules.json"])
        assert code == 2
        assert "cannot read alert rules" in capsys.readouterr().err

    def test_bad_log_level_is_refused(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--log-level", "chatty"])


class TestTop:
    def test_top_once_renders_tenant_op_table(self):
        with PassDaemon() as daemon:
            from repro.api import Q, connect

            with connect(daemon.address.url) as client:
                client.query(Q.attr("city") == "x", limit=1)
                out = io.StringIO()
                code = main(["top", daemon.address.url, "--once"], out=out)
        assert code == 0
        screen = out.getvalue()
        assert "daemon up" in screen
        assert "tenant default" in screen
        assert "query" in screen
        assert "p95 ms" in screen

    def test_top_iterations_poll_repeatedly(self):
        with PassDaemon() as daemon:
            out = io.StringIO()
            code = main(
                ["top", daemon.address.url, "--iterations", "2", "--interval", "0.01"],
                out=out,
            )
        assert code == 0
        assert out.getvalue().count("daemon up") == 2

    def test_top_refuses_non_daemon_targets(self, capsys):
        out = io.StringIO()
        code = main(["top", "memory://"], out=out)
        assert code == 2
        assert "not a pass:// daemon" in capsys.readouterr().err

    def test_top_with_token_scopes_to_its_tenant(self):
        with PassDaemon(tokens={"tok": "alpha"}) as daemon:
            out = io.StringIO()
            code = main(["top", daemon.address.url, "--token", "tok", "--once"], out=out)
        assert code == 0
        assert "tenant alpha" in out.getvalue()

    def test_top_json_emits_one_document_per_refresh(self):
        with PassDaemon() as daemon:
            out = io.StringIO()
            code = main(
                [
                    "top", daemon.address.url,
                    "--json", "--iterations", "2", "--interval", "0.01",
                ],
                out=out,
            )
        assert code == 0
        lines = [line for line in out.getvalue().splitlines() if line.strip()]
        assert len(lines) == 2
        for line in lines:
            snapshot = json.loads(line)
            assert "tenants" in snapshot and "uptime_s" in snapshot

    def test_top_survives_a_daemon_restart_mid_watch(self, capsys):
        import threading

        first = PassDaemon()
        address = first.start()
        port = address.port
        result = {}

        def watch():
            out = io.StringIO()
            result["code"] = main(
                [
                    "top", address.url,
                    "--json", "--iterations", "3", "--interval", "0.2",
                    "--reconnect-attempts", "10",
                ],
                out=out,
            )
            result["lines"] = [l for l in out.getvalue().splitlines() if l.strip()]

        watcher = threading.Thread(target=watch)
        watcher.start()
        import time

        time.sleep(0.3)  # let the first snapshot land
        first.stop()
        second = PassDaemon(port=port)
        try:
            second.start()
            watcher.join(timeout=30)
        finally:
            second.stop()
        assert not watcher.is_alive()
        assert result["code"] == 0
        assert len(result["lines"]) == 3
        assert "retrying" in capsys.readouterr().err

    def test_top_gives_up_after_reconnect_attempts(self, capsys):
        daemon = PassDaemon()
        address = daemon.start()
        daemon.stop()  # nothing listens there any more
        out = io.StringIO()
        code = main(
            [
                "top", address.url,
                "--iterations", "5", "--interval", "0.01",
                "--reconnect-attempts", "0",
            ],
            out=out,
        )
        assert code in (1, 2)  # refused mid-poll or at connect
        assert "daemon" in capsys.readouterr().err


class TestHealthcheckCommand:
    def test_ok_daemon_exits_zero_with_check_lines(self):
        with PassDaemon() as daemon:
            out = io.StringIO()
            code = main(["healthcheck", daemon.address.url], out=out)
        assert code == 0
        screen = out.getvalue()
        assert "status: ok" in screen
        assert "storage:default" in screen

    def test_json_report_round_trips(self):
        with PassDaemon() as daemon:
            out = io.StringIO()
            code = main(["healthcheck", daemon.address.url, "--json"], out=out)
        assert code == 0
        report = json.loads(out.getvalue())
        assert report["status"] == "ok"
        assert report["checks"]["trace-ring"]["ok"] is True

    def test_local_targets_are_probed_too(self):
        out = io.StringIO()
        code = main(["healthcheck", "memory://"], out=out)
        assert code == 0
        assert "status: ok" in out.getvalue()

    def test_unreachable_daemon_exits_three(self, capsys):
        daemon = PassDaemon()
        address = daemon.start()
        daemon.stop()
        out = io.StringIO()
        code = main(["healthcheck", address.url], out=out)
        assert code == 3
        assert "error" in capsys.readouterr().err


class TestAlertsCommand:
    RULES_JSON = json.dumps(
        {
            "rules": [
                {
                    "name": "always-on",
                    "kind": "threshold",
                    "series": "daemon.connections",
                    "stat": "latest",
                    "op": ">=",
                    "value": 0.0,
                }
            ]
        }
    )

    def test_daemon_without_rules_reports_disabled(self):
        with PassDaemon() as daemon:
            out = io.StringIO()
            code = main(["alerts", daemon.address.url], out=out)
        assert code == 0
        assert "alerts disabled" in out.getvalue()

    def test_rules_render_with_status_and_condition(self, tmp_path):
        rules = tmp_path / "rules.json"
        rules.write_text(self.RULES_JSON)
        with PassDaemon(sample_interval_s=0.05, alert_rules=str(rules)) as daemon:
            import time

            time.sleep(0.3)  # a couple of sampler ticks
            out = io.StringIO()
            code = main(["alerts", daemon.address.url], out=out)
        assert code == 0
        screen = out.getvalue()
        assert "1 rule(s)" in screen
        assert "always-on" in screen
        assert "latest(daemon.connections) >= 0.0" in screen

    def test_json_snapshot_round_trips(self, tmp_path):
        rules = tmp_path / "rules.json"
        rules.write_text(self.RULES_JSON)
        with PassDaemon(sample_interval_s=0.05, alert_rules=str(rules)) as daemon:
            out = io.StringIO()
            code = main(["alerts", daemon.address.url, "--json"], out=out)
        assert code == 0
        snapshot = json.loads(out.getvalue())
        assert snapshot["enabled"] is True
        assert snapshot["rules"][0]["name"] == "always-on"

    def test_non_daemon_targets_are_refused(self, capsys):
        out = io.StringIO()
        code = main(["alerts", "memory://"], out=out)
        assert code == 2
        assert "not a pass:// daemon" in capsys.readouterr().err


class TestTraceCommand:
    def test_trace_writes_valid_chrome_json(self, tmp_path):
        target = tmp_path / "trace.json"
        out = io.StringIO()
        code = main(
            [
                "trace",
                "traffic",
                "city=london",
                "--hours",
                "0.25",
                "--output",
                str(target),
            ],
            out=out,
        )
        assert code == 0
        document = json.loads(target.read_text())
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        assert events, "trace produced no spans"
        names = {event["name"] for event in events}
        assert "cli.trace" in names
        assert any(name.startswith("client.") for name in names)
        assert any(name.startswith("query.") for name in names)
        root = next(event for event in events if event["name"] == "cli.trace")
        children = [
            event
            for event in events
            if event["args"].get("parent_id") == root["args"]["span_id"]
        ]
        assert children, "cli.trace has no child spans"
        assert "span(s)" in out.getvalue()

    def test_trace_prints_json_without_output_flag(self):
        out = io.StringIO()
        code = main(["trace", "traffic", "city=london", "--hours", "0.25"], out=out)
        assert code == 0
        text = out.getvalue()
        document = json.loads(text[: text.rindex("}") + 1])
        assert document["traceEvents"]

    def test_trace_rejects_malformed_predicates(self, capsys):
        out = io.StringIO()
        code = main(["trace", "traffic", "city"], out=out)
        assert code == 2
        assert "malformed predicate" in capsys.readouterr().err

    def test_tracing_is_disabled_again_after_the_command(self):
        from repro.obs import trace

        out = io.StringIO()
        main(["trace", "traffic", "city=london", "--hours", "0.25"], out=out)
        assert not trace.enabled()
