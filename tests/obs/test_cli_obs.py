"""The observability CLI surface: ``repro top``, ``repro trace``, serve flags."""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import build_parser, main
from repro.server import PassDaemon


class TestServeFlags:
    def test_serve_accepts_log_level_and_slow_query_ms(self):
        args = build_parser().parse_args(
            ["serve", "--log-level", "debug", "--slow-query-ms", "5"]
        )
        assert args.log_level == "debug"
        assert args.slow_query_ms == 5.0

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.log_level == "info"
        assert args.slow_query_ms is None

    def test_bad_log_level_is_refused(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--log-level", "chatty"])


class TestTop:
    def test_top_once_renders_tenant_op_table(self):
        with PassDaemon() as daemon:
            from repro.api import Q, connect

            with connect(daemon.address.url) as client:
                client.query(Q.attr("city") == "x", limit=1)
                out = io.StringIO()
                code = main(["top", daemon.address.url, "--once"], out=out)
        assert code == 0
        screen = out.getvalue()
        assert "daemon up" in screen
        assert "tenant default" in screen
        assert "query" in screen
        assert "p95 ms" in screen

    def test_top_iterations_poll_repeatedly(self):
        with PassDaemon() as daemon:
            out = io.StringIO()
            code = main(
                ["top", daemon.address.url, "--iterations", "2", "--interval", "0.01"],
                out=out,
            )
        assert code == 0
        assert out.getvalue().count("daemon up") == 2

    def test_top_refuses_non_daemon_targets(self, capsys):
        out = io.StringIO()
        code = main(["top", "memory://"], out=out)
        assert code == 2
        assert "not a pass:// daemon" in capsys.readouterr().err

    def test_top_with_token_scopes_to_its_tenant(self):
        with PassDaemon(tokens={"tok": "alpha"}) as daemon:
            out = io.StringIO()
            code = main(["top", daemon.address.url, "--token", "tok", "--once"], out=out)
        assert code == 0
        assert "tenant alpha" in out.getvalue()


class TestTraceCommand:
    def test_trace_writes_valid_chrome_json(self, tmp_path):
        target = tmp_path / "trace.json"
        out = io.StringIO()
        code = main(
            [
                "trace",
                "traffic",
                "city=london",
                "--hours",
                "0.25",
                "--output",
                str(target),
            ],
            out=out,
        )
        assert code == 0
        document = json.loads(target.read_text())
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        assert events, "trace produced no spans"
        names = {event["name"] for event in events}
        assert "cli.trace" in names
        assert any(name.startswith("client.") for name in names)
        assert any(name.startswith("query.") for name in names)
        root = next(event for event in events if event["name"] == "cli.trace")
        children = [
            event
            for event in events
            if event["args"].get("parent_id") == root["args"]["span_id"]
        ]
        assert children, "cli.trace has no child spans"
        assert "span(s)" in out.getvalue()

    def test_trace_prints_json_without_output_flag(self):
        out = io.StringIO()
        code = main(["trace", "traffic", "city=london", "--hours", "0.25"], out=out)
        assert code == 0
        text = out.getvalue()
        document = json.loads(text[: text.rindex("}") + 1])
        assert document["traceEvents"]

    def test_trace_rejects_malformed_predicates(self, capsys):
        out = io.StringIO()
        code = main(["trace", "traffic", "city"], out=out)
        assert code == 2
        assert "malformed predicate" in capsys.readouterr().err

    def test_tracing_is_disabled_again_after_the_command(self):
        from repro.obs import trace

        out = io.StringIO()
        main(["trace", "traffic", "city=london", "--hours", "0.25"], out=out)
        assert not trace.enabled()
