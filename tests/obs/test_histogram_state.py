"""HistogramState: mergeable snapshots with bounded quantile error.

The bucket layout (log base 1.1) promises quantiles within ~5% relative
error of the true sample quantile.  These tests hold `state()` /
`merge()` / `delta()` to the same bound: slicing a stream into
per-interval deltas and merging the slices back must not widen the
error, because the window quantiles the alert engine evaluates are
computed exactly that way.
"""

from __future__ import annotations

import random

import pytest

from repro.obs import Histogram, HistogramState

REL = 0.06  # bucket width 1.1 => <= ~5% quantile error, plus slack


def _true_quantile(samples, q):
    ordered = sorted(samples)
    rank = max(1, int(round(q * len(ordered) + 0.5)))
    return ordered[min(rank, len(ordered)) - 1]


class TestState:
    def test_state_mirrors_the_snapshot(self):
        histogram = Histogram("ms")
        for value in (1.0, 2.0, 4.0):
            histogram.observe(value)
        state = histogram.state()
        assert state.count == 3
        assert state.total == pytest.approx(7.0)
        assert state.min == 1.0
        assert state.max == 4.0
        assert state.summary() == histogram.snapshot()

    def test_empty_state(self):
        state = HistogramState()
        assert state.empty
        assert state.quantile(0.5) is None
        assert state.summary()["count"] == 0

    def test_state_is_a_snapshot_not_a_view(self):
        histogram = Histogram("ms")
        histogram.observe(1.0)
        state = histogram.state()
        histogram.observe(100.0)
        assert state.count == 1
        assert histogram.state().count == 2


class TestMerge:
    @pytest.mark.parametrize("quantile", [0.5, 0.95, 0.99])
    def test_merged_windows_stay_within_bucket_error(self, quantile):
        """Quantiles of merged interval slices track the true sample
        quantile as tightly as a single cumulative histogram does."""
        rng = random.Random(7)
        samples = []
        merged = HistogramState()
        for _ in range(40):  # 40 intervals x 50 observations
            window = Histogram("w")
            chunk = [rng.lognormvariate(1.5, 1.0) for _ in range(50)]
            for value in chunk:
                window.observe(value)
            samples.extend(chunk)
            merged = merged.merge(window.state())
        assert merged.count == len(samples)
        truth = _true_quantile(samples, quantile)
        assert merged.quantile(quantile) == pytest.approx(truth, rel=REL)

    def test_merge_equals_the_cumulative_histogram_exactly(self):
        """Merging deltas reconstructs the cumulative bucket counts, so
        the quantile answers are bit-identical, not just within error."""
        rng = random.Random(3)
        cumulative = Histogram("ms")
        merged = HistogramState()
        previous = cumulative.state()
        for _ in range(20):
            for _ in range(30):
                cumulative.observe(rng.expovariate(0.2))
            now = cumulative.state()
            merged = merged.merge(now.delta(previous))
            previous = now
        for q in (0.5, 0.9, 0.95, 0.99):
            assert merged.quantile(q) == cumulative.quantile(q)
        assert merged.count == cumulative.state().count
        assert merged.total == pytest.approx(cumulative.state().total)

    def test_merge_keeps_min_max_envelope(self):
        a = Histogram("a")
        a.observe(1.0)
        b = Histogram("b")
        b.observe(500.0)
        merged = a.state().merge(b.state())
        assert merged.min == 1.0
        assert merged.max == 500.0

    def test_merge_with_empty_is_identity(self):
        histogram = Histogram("ms")
        histogram.observe(3.0)
        state = histogram.state()
        merged = state.merge(HistogramState())
        assert merged.count == state.count
        assert merged.quantile(0.5) == state.quantile(0.5)


class TestDelta:
    def test_delta_isolates_the_intervals_observations(self):
        histogram = Histogram("ms")
        histogram.observe(10.0)
        earlier = histogram.state()
        histogram.observe(20.0)
        histogram.observe(40.0)
        delta = histogram.state().delta(earlier)
        assert delta.count == 2
        assert delta.total == pytest.approx(60.0)
        # The interval's quantiles see only the interval's two samples.
        assert delta.quantile(0.5) == pytest.approx(20.0, rel=REL)
        assert delta.quantile(0.99) == pytest.approx(40.0, rel=REL)

    def test_delta_of_identical_states_is_empty(self):
        histogram = Histogram("ms")
        histogram.observe(1.0)
        state = histogram.state()
        assert state.delta(state).empty

    def test_delta_bounds_stay_inside_the_cumulative_envelope(self):
        histogram = Histogram("ms")
        histogram.observe(2.0)
        earlier = histogram.state()
        histogram.observe(8.0)
        delta = histogram.state().delta(earlier)
        assert delta.min is not None and delta.min >= earlier.min
        assert delta.max is not None and delta.max <= histogram.state().max
