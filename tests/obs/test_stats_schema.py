"""The golden-key stats() contract: every connect target, one schema.

``docs/OBSERVABILITY.md`` documents the top-level keys each target
family's ``stats()`` answer carries; the ``STATS_*_KEYS`` constants in
:mod:`repro.obs` are that contract in code.  This suite holds every
target to it, so a refactor that drops (or silently renames) a stats
block fails here and not in a user's dashboard.
"""

from __future__ import annotations

import pytest

from repro.api import Q, connect
from repro.obs import (
    STATS_COMMON_KEYS,
    STATS_LOCAL_KEYS,
    STATS_MODEL_KEYS,
    STATS_REMOTE_KEYS,
)
from repro.sensors.workloads import TrafficWorkload

LOCAL_TARGETS = ["memory://", "sqlite://", "sqlite://?shards=4", "memory://?shards=2"]
MODEL_TARGETS = [
    "centralized://",
    "distributed-db://",
    "federated://",
    "soft-state://",
    "hierarchical://",
    "dht://",
    "locale-aware-pass://",
]
ALL_TARGETS = LOCAL_TARGETS + MODEL_TARGETS + ["pass://"]


@pytest.fixture(scope="module")
def workload_sets():
    workload = TrafficWorkload(seed=3, cities=("london",), stations_per_city=2)
    raw, derived = workload.all_sets(hours=0.25)
    return raw, derived


@pytest.fixture(scope="module")
def daemon_url():
    from repro.server import PassDaemon

    with PassDaemon() as daemon:
        yield daemon.address.url


@pytest.fixture(params=ALL_TARGETS, scope="module")
def exercised(request, workload_sets):
    """Each target with a little real traffic behind its stats()."""
    raw, derived = workload_sets
    url = request.param
    if url == "pass://":
        url = request.getfixturevalue("daemon_url")
    client = connect(url)
    client.publish_many(raw + derived)
    client.refresh()
    client.query(Q.attr("city") == "london", limit=5)
    yield request.param, client
    client.close()


def _expected_keys(target: str) -> frozenset:
    if target == "pass://":
        return STATS_REMOTE_KEYS
    if target in LOCAL_TARGETS:
        return STATS_LOCAL_KEYS
    return STATS_MODEL_KEYS


#: the frozen sub-schema of stats()["storage"] on every local/remote target
STORAGE_BLOCK_KEYS = frozenset(
    {
        "kind",
        "shards",
        "records",
        "group_commits",
        "batch_records",
        "commit_ms",
        "parallel_scans",
        "parallel_probes",
        "per_shard",
        "closure_restore",
    }
)


#: the frozen sub-schema of stats()["planner"]["feedback"] wherever a
#: planner block rides (local stores and the pass:// daemon)
PLANNER_FEEDBACK_KEYS = frozenset(
    {
        "enabled",
        "queries_observed",
        "misestimates",
        "drift_events",
        "plans_invalidated",
        "stats_refreshes",
        "closure_switches",
        "hot_keys",
        "result_cache",
    }
)

#: the frozen sub-schema of the feedback block's result_cache
RESULT_CACHE_KEYS = frozenset(
    {"entries", "hits", "misses", "invalidations", "evictions"}
)


class TestGoldenKeys:
    def test_documented_keys_are_present(self, exercised):
        target, client = exercised
        stats = client.stats()
        missing = _expected_keys(target) - set(stats)
        assert not missing, f"{target} stats() lacks documented keys: {sorted(missing)}"

    def test_common_keys_on_every_target(self, exercised):
        _, client = exercised
        stats = client.stats()
        assert STATS_COMMON_KEYS <= set(stats)

    def test_local_targets_emit_exactly_the_documented_schema(self, exercised):
        target, client = exercised
        if target not in LOCAL_TARGETS:
            pytest.skip("exact-schema check is for local stores")
        assert set(client.stats()) == STATS_LOCAL_KEYS

    def test_storage_block_keeps_its_documented_schema(self, exercised):
        """The ``storage`` block is frozen: kind, shard layout, group-commit
        and parallel-scan counters plus the closure adoption report --
        identical shape whether or not the store is sharded."""
        target, client = exercised
        stats = client.stats()
        if "storage" not in stats:
            pytest.skip("architecture models carry no storage block")
        storage = stats["storage"]
        assert set(storage) == STORAGE_BLOCK_KEYS
        assert set(storage["commit_ms"]) == {"total", "max"}
        assert len(storage["per_shard"]) == storage["shards"]
        if "shards=" in target:
            assert storage["kind"] == "sharded"
            assert storage["shards"] > 1
        elif target in LOCAL_TARGETS:
            # A non-sharded store is exactly one shard of itself.
            assert storage["shards"] == 1
            assert storage["per_shard"][0]["shard"] == 0

    def test_planner_feedback_block_keeps_its_documented_schema(self, exercised):
        """The adaptive engine's feedback block is frozen: drift, refresh
        and closure-switch counters plus the hot-key result-cache facts --
        identical shape on every target that carries a planner."""
        target, client = exercised
        stats = client.stats()
        if "planner" not in stats:
            pytest.skip("architecture models carry no planner block")
        feedback = stats["planner"]["feedback"]
        assert set(feedback) == PLANNER_FEEDBACK_KEYS
        assert set(feedback["result_cache"]) == RESULT_CACHE_KEYS
        assert feedback["enabled"] is True
        assert feedback["queries_observed"] >= 1
        # The cumulative plan-cache counters ride alongside it.
        cache = stats["planner"]["cache"]
        assert {"entries", "hits", "evictions", "drift_invalidations"} <= set(cache)

    def test_obs_block_has_the_registry_shape(self, exercised):
        _, client = exercised
        obs = client.stats()["obs"]
        assert set(obs) == {"counters", "gauges", "histograms"}

    def test_trace_ring_counters_ride_every_obs_block(self, exercised):
        """Ring drops and export truncation are first-class counters, so
        a dashboard can alert on span loss from any target's stats()."""
        _, client = exercised
        counters = client.stats()["obs"]["counters"]
        assert "trace.spans_dropped" in counters
        assert "trace.exports_truncated" in counters
        assert counters["trace.spans_dropped"] >= 0
        assert counters["trace.exports_truncated"] >= 0

    def test_op_metrics_recorded_the_traffic(self, exercised):
        target, client = exercised
        obs = client.stats()["obs"]
        if target == "pass://":
            # The daemon-side obs block counts the *tenant store's* ops;
            # this client's socket-side ops live under "client".
            obs = client.stats()["client"]
        assert obs["counters"].get("client.query", 0) >= 1
        histogram = obs["histograms"].get("client.query.ms")
        assert histogram is not None and histogram["count"] >= 1

    def test_remote_stats_carry_identity_and_client_blocks(self, exercised):
        target, client = exercised
        if target != "pass://":
            pytest.skip("remote-only keys")
        stats = client.stats()
        assert stats["tenant"] == "default"
        assert stats["target"].startswith("remote+")
        assert set(stats["client"]) == {"counters", "gauges", "histograms"}
