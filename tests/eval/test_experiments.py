"""Tests that every experiment runs and its results have the paper's shape.

These are the "does the reproduction actually reproduce the claims"
tests: each asserts the qualitative relationship the paper states, not
absolute numbers.
"""

from __future__ import annotations

import pytest

from repro.eval import run_experiment


@pytest.fixture(scope="module")
def results():
    """Run every experiment once for this module (several take ~1s each)."""
    return {eid: run_experiment(eid) for eid in [f"E{i}" for i in range(1, 15)]}


class TestExperimentMechanics:
    def test_all_experiments_produce_rows(self, results):
        for experiment_id, result in results.items():
            assert result.rows, f"{experiment_id} produced no rows"
            assert result.experiment_id == experiment_id
            assert result.claim

    def test_row_widths_match_headers(self, results):
        for result in results.values():
            for row in result.rows:
                assert len(row) == len(result.headers)


class TestClaimShapes:
    def test_e1_per_set_indexing_is_much_smaller(self, results):
        for row in results["E1"].row_dicts():
            assert row["per_set_index_entries"] < row["per_tuple_index_entries"]
            assert row["entry_ratio"] >= 5.0
        ratios = results["E1"].column("entry_ratio")
        assert ratios == sorted(ratios), "wider windows should increase the ratio"

    def test_e2_filenames_lose_recall_on_unencoded_attributes(self, results):
        result = results["E2"]
        encoded = result.find_row(query="by city (encoded in filename)", scheme="filename")
        unencoded = result.find_row(query="by owner (not encoded)", scheme="filename")
        relationship = result.find_row(query="derived-from relationship", scheme="filename")
        # Encoded attributes work only partially (filename collisions shadow
        # derived products); unencoded attributes and relationships fail outright.
        assert 0.5 < encoded["recall"] <= 1.0
        assert unencoded["recall"] == 0.0
        assert relationship["answerable"] is False
        assert encoded["recall"] > unencoded["recall"]
        for row in result.row_dicts():
            if row["scheme"] == "provenance":
                assert row["recall"] == 1.0 and row["precision"] == 1.0

    def test_e3_labelled_closure_beats_naive_at_depth(self, results):
        rows = results["E3"].row_dicts()
        deepest = max(row["depth"] for row in rows)
        naive = next(r for r in rows if r["depth"] == deepest and r["strategy"] == "naive")
        labelled = next(r for r in rows if r["depth"] == deepest and r["strategy"] == "labelled")
        assert labelled["node_visits"] < naive["node_visits"]

    def test_e4_all_query_suites_answered(self, results):
        rows = results["E4"].row_dicts()
        suites = {row["suite"] for row in rows}
        assert suites == {"versioning", "science", "sensor/EMT"}
        assert all(row["elapsed_ms"] < 1000.0 for row in rows)

    def test_e5_saturation_and_dangling_links(self, results):
        rows = results["E5"].row_dicts()
        latencies = [row["value"] for row in rows if row["measure"] == "publish latency (ms)"]
        assert latencies[-1] > latencies[0], "overload should raise publish latency"
        dangling = [row for row in rows if row["measure"] == "dangling locate answers"]
        assert dangling[0]["value"].startswith("0/")
        assert not dangling[-1]["value"].startswith("0/")

    def test_e6_closure_needs_multiple_rounds_on_databases(self, results):
        rows = results["E6"].row_dicts()
        for model in ("distributed-db", "federated"):
            closure = next(
                r for r in rows if r["model"] == model and r["operation"] == "ancestor closure"
            )
            assert int(closure["closure_rounds"]) >= 2
        central_attr = next(
            r for r in rows if r["model"] == "centralized" and r["operation"] == "attribute query"
        )
        federated_attr = next(
            r for r in rows if r["model"] == "federated" and r["operation"] == "attribute query"
        )
        assert federated_attr["latency_ms"] > central_attr["latency_ms"]

    def test_e7_staleness_grows_with_refresh_interval(self, results):
        rows = results["E7"].row_dicts()
        recalls = [row["recall"] for row in rows]
        assert recalls[0] >= recalls[-1]
        assert recalls[-1] < 1.0
        assert all(row["precision"] <= 1.0 for row in rows)
        assert all(row["closure_supported"] is False for row in rows)

    def test_e8_non_primary_queries_broadcast(self, results):
        rows = results["E8"].row_dicts()
        primary = next(r for r in rows if "primary" in r["query_attribute"] and "non" not in r["query_attribute"])
        others = [r for r in rows if r is not primary]
        assert primary["servers_contacted"] == 1
        assert all(row["servers_contacted"] > 1 for row in others)

    def test_e9_dht_placement_and_scaling(self, results):
        rows = results["E9"].row_dicts()
        dht_distance = next(
            r["value"] for r in rows if r["measure"].startswith("placement") and r["setting"] == "dht"
        )
        locale_distance = next(
            r["value"]
            for r in rows
            if r["measure"].startswith("placement") and r["setting"] == "locale-aware-pass"
        )
        assert dht_distance > 100.0 * (locale_distance + 1.0)
        updaters = [r["value"] for r in rows if r["measure"] == "max supported updaters"]
        assert max(updaters) < 1_000_000, "per-attribute fan-out caps update scaling"

    def test_e10_local_queries_cheapest_on_locale_aware(self, results):
        result = results["E10"]
        locale = result.find_row(model="locale-aware-pass")
        centralized = result.find_row(model="centralized")
        dht = result.find_row(model="dht")
        assert locale["local_query_ms"] < centralized["local_query_ms"]
        assert locale["local_query_ms"] < dht["local_query_ms"]
        assert dht["placement_km"] > 1000.0
        assert locale["placement_km"] < 100.0

    def test_e11_recovery_is_consistent(self, results):
        for row in results["E11"].row_dicts():
            assert row["consistent"] is True
            assert row["recovered"] >= row["acknowledged"]

    def test_e12_no_model_dominates(self, results):
        result = results["E12"]
        rows = {row["model"]: row for row in result.row_dicts()}
        assert set(rows) == {
            "centralized",
            "distributed-db",
            "federated",
            "soft-state",
            "hierarchical",
            "dht",
            "locale-aware-pass",
        }
        # Soft state gives up closure; the DHT pays the largest publish cost and
        # the worst placement; the locale-aware store keeps placement local.
        assert rows["soft-state"]["closure_ms"] == "unsupported"
        publish_costs = {name: row["publish_bytes"] for name, row in rows.items()}
        assert max(publish_costs, key=publish_costs.get) == "dht"
        assert rows["dht"]["placement_km"] > 1000.0
        assert rows["locale-aware-pass"]["placement_km"] < 100.0
        # "No single model dominates": the model with the best query latency
        # does not also have the cheapest publishes.
        best_query = min(rows, key=lambda name: rows[name]["query_ms"])
        best_publish = min(rows, key=lambda name: rows[name]["publish_ms"])
        assert best_query != best_publish

    def test_e13_pass_properties_hold(self, results):
        for row in results["E13"].row_dicts():
            assert row["violations"] == 0

    def test_e14_abstraction_compresses_lineage(self, results):
        rows = results["E14"].row_dicts()
        plain = next(r for r in rows if r["configuration"] == "no abstraction")
        abstracted = next(r for r in rows if "abstracted" in r["configuration"])
        assert plain["compression"] == pytest.approx(1.0)
        assert abstracted["compression"] > 2.0
        assert abstracted["full_lineage"] == plain["full_lineage"]
