"""Tests for the evaluation criteria, result containers, reports and scenario helpers."""

from __future__ import annotations

import pytest

from repro.core import AttributeEquals, ProvenanceRecord, Query
from repro.errors import UnknownEntityError
from repro.eval import (
    EXPERIMENTS,
    MODEL_NAMES,
    CriteriaScores,
    ExperimentResult,
    LatencySample,
    build_all_models,
    f1_score,
    format_experiment,
    format_many,
    format_table,
    ground_truth_store,
    precision_recall,
    run_experiment,
    standard_topology,
)
from repro.eval.criteria import mean
from repro.sensors.workloads import TrafficWorkload


def _pnames(count):
    return [ProvenanceRecord({"n": i}).pname() for i in range(count)]


class TestPrecisionRecall:
    def test_perfect(self):
        names = _pnames(3)
        assert precision_recall(names, names) == (1.0, 1.0)

    def test_empty_both(self):
        assert precision_recall([], []) == (1.0, 1.0)

    def test_partial(self):
        names = _pnames(4)
        precision, recall = precision_recall(names[:3], names[1:])
        assert precision == pytest.approx(2 / 3)
        assert recall == pytest.approx(2 / 3)

    def test_empty_answer(self):
        assert precision_recall([], _pnames(2)) == (1.0, 0.0)

    def test_irrelevant_answer(self):
        assert precision_recall(_pnames(2), []) == (0.0, 1.0)

    def test_f1(self):
        assert f1_score(1.0, 1.0) == 1.0
        assert f1_score(0.0, 0.0) == 0.0
        assert f1_score(0.5, 1.0) == pytest.approx(2 / 3)

    def test_mean_empty(self):
        assert mean([]) == 0.0


class TestCriteriaScores:
    def test_derived_metrics(self):
        scores = CriteriaScores(model="x")
        scores.publish_samples = [LatencySample(10.0, 2, 100), LatencySample(20.0, 4, 300)]
        scores.query_samples = [LatencySample(5.0, 1, 50)]
        scores.lineage_samples = [LatencySample(7.0, 1, 70)]
        assert scores.publish_latency_ms() == 15.0
        assert scores.publish_messages() == 3.0
        assert scores.publish_bytes() == 200.0
        assert scores.query_latency_ms() == 5.0
        assert scores.lineage_latency_ms() == 7.0
        assert scores.usability_score() == 2

    def test_unsupported_lineage(self):
        scores = CriteriaScores(model="x", supports_lineage=False)
        assert scores.lineage_latency_ms() is None
        assert scores.as_row()["closure_ms"] == "unsupported"
        assert scores.usability_score() == 1


class TestExperimentResult:
    def test_add_row_validates_width(self):
        result = ExperimentResult("EX", "t", "c", headers=["a", "b"])
        result.add_row(1, 2)
        with pytest.raises(ValueError):
            result.add_row(1)

    def test_column_and_row_dicts(self):
        result = ExperimentResult("EX", "t", "c", headers=["model", "value"])
        result.add_row("m1", 10)
        result.add_row("m2", 20)
        assert result.column("value") == [10, 20]
        assert result.row_dicts()[1] == {"model": "m2", "value": 20}
        assert result.find_row(model="m1") == {"model": "m1", "value": 10}
        assert result.find_row(model="nope") is None


class TestReportFormatting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["alpha", 1], ["b", 22.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "22.5" in lines[3]

    def test_format_experiment_includes_notes(self):
        result = ExperimentResult("EX", "Title", "Claim", headers=["a"], notes=["something"])
        result.add_row(1)
        text = format_experiment(result)
        assert "[EX] Title" in text
        assert "claim: Claim" in text
        assert "note: something" in text

    def test_format_many_separates_blocks(self):
        a = ExperimentResult("E1", "A", "c", headers=["x"])
        b = ExperimentResult("E2", "B", "c", headers=["x"])
        text = format_many([a, b])
        assert "[E1]" in text and "[E2]" in text and "=" * 10 in text


class TestScenario:
    def test_standard_topology_layout(self):
        topology = standard_topology()
        assert "warehouse" in topology
        assert len(topology.sites(kind="storage")) == 4

    def test_standard_topology_rejects_unknown_city(self):
        with pytest.raises(ValueError):
            standard_topology(cities=("atlantis",))

    def test_build_all_models_covers_every_name(self):
        topology = standard_topology()
        models = build_all_models(topology)
        assert sorted(models) == sorted(MODEL_NAMES)

    def test_ground_truth_store_holds_everything(self):
        workload = TrafficWorkload(seed=1, stations_per_city=2)
        raw, derived = workload.all_sets(hours=0.5)
        store = ground_truth_store(raw + derived)
        assert len(store) == len({ts.pname for ts in raw + derived})

    def test_experiment_registry_complete(self):
        numeric_order = sorted(EXPERIMENTS, key=lambda eid: int(eid[1:]))
        assert numeric_order == [f"E{i}" for i in range(1, 15)]

    def test_unknown_experiment_rejected(self):
        with pytest.raises(UnknownEntityError):
            run_experiment("E99")
