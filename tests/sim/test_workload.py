"""Tests for the concurrent-client workload runner and its reports."""

from __future__ import annotations

import pytest

from repro.api import connect
from repro.core import ProvenanceRecord, Timestamp, TupleSet
from repro.distributed import CentralizedWarehouse, DistributedHashTable
from repro.errors import ConfigurationError
from repro.eval.harness import run_simulation_matrix
from repro.eval.scenario import standard_topology
from repro.sim import Schedule, SimConfig, WorkloadRunner, simulate_publish_workload


def _tuple_sets(count: int, city: str = "london"):
    sets = []
    for index in range(count):
        record = ProvenanceRecord(
            {
                "domain": "traffic",
                "city": city,
                "sequence": index,
                "window_start": Timestamp(60.0 * index),
                "window_end": Timestamp(60.0 * index + 59.0),
            }
        )
        sets.append(TupleSet([], record))
    return sets


class TestDegenerateRuns:
    def test_single_client_latencies_equal_composed_latencies(self):
        """The runner's degenerate mode reproduces the arithmetic numbers."""
        sets = _tuple_sets(6)
        model = CentralizedWarehouse(standard_topology(), warehouse_site="warehouse")
        twin = CentralizedWarehouse(standard_topology(), warehouse_site="warehouse")
        expected = [twin.publish(ts, "london-site").latency_ms for ts in sets]
        report = simulate_publish_workload(
            model, sets, clients=1, sites=["london-site"], config=SimConfig()
        )
        assert [r.kind for r in report.records] == ["publish"] * len(sets)
        assert all(r.ok for r in report.records)
        got = [r.latency_ms for r in report.records]
        assert got == pytest.approx(expected, rel=1e-9)
        # Closed loop: each op starts exactly when the previous one ends.
        assert report.virtual_ms == pytest.approx(sum(expected), rel=1e-9)

    def test_rejects_local_stores(self):
        with pytest.raises(ConfigurationError):
            WorkloadRunner(object(), lambda c, i: None)


class TestConcurrency:
    def test_shared_warehouse_queues_under_concurrent_publishers(self):
        """More clients -> queueing at the warehouse -> higher tail latency."""
        config = SimConfig(service_ms_per_message=5.0)

        def run(clients: int):
            model = CentralizedWarehouse(
                standard_topology(), warehouse_site="warehouse", indexing_ms_per_update=5.0
            )
            return simulate_publish_workload(
                model, _tuple_sets(32), clients=clients, config=config
            )

        solo = run(1)
        crowd = run(8)
        assert crowd.summary()["p99"] > solo.summary()["p99"]
        warehouse_crowd = crowd.sites["warehouse"]
        assert warehouse_crowd["mean_wait_ms"] > solo.sites["warehouse"]["mean_wait_ms"]
        assert warehouse_crowd["utilization"] > solo.sites["warehouse"]["utilization"]

    def test_identical_seeds_reproduce_reports_byte_for_byte(self):
        config = SimConfig(seed=11, jitter=0.2, service_ms_per_message=1.0, journal=True)

        def run():
            model = DistributedHashTable(standard_topology())
            return simulate_publish_workload(model, _tuple_sets(12), clients=4, config=config)

        first, second = run(), run()
        assert first.journal_digest == second.journal_digest
        assert first.snapshot() == second.snapshot()


class TestSchedules:
    def test_mid_run_partition_fails_ops_and_heal_restores(self):
        schedule = Schedule.parse(
            [{"at_ms": 0.5, "action": "churn", "site": "warehouse", "duration_ms": 200.0}]
        )
        model = CentralizedWarehouse(standard_topology(), warehouse_site="warehouse")
        report = simulate_publish_workload(
            model, _tuple_sets(30), clients=1, sites=["london-site"], schedule=schedule
        )
        assert len(report.schedule_applied) == 2
        assert report.failed() > 0, "no publish hit the partition window"
        ok_records = report.ok_records()
        assert ok_records, "heal never restored publishing"
        # Ops landing inside the partition window fail (in flight or at
        # capture); everything issued after the heal succeeds again.
        assert all(record.start_ms > 200.0 for record in ok_records)
        assert not model.network.is_partitioned("warehouse")

    def test_far_future_schedule_events_do_not_skew_the_report(self):
        """A heal queued long after the workload must not stretch virtual time."""
        model = CentralizedWarehouse(standard_topology(), warehouse_site="warehouse")
        plain = simulate_publish_workload(model, _tuple_sets(10), clients=2)

        late_heal = Schedule.parse([{"at_ms": 500_000.0, "action": "heal", "site": "warehouse"}])
        model = CentralizedWarehouse(standard_topology(), warehouse_site="warehouse")
        scheduled = simulate_publish_workload(
            model, _tuple_sets(10), clients=2, schedule=late_heal
        )
        assert scheduled.virtual_ms == pytest.approx(plain.virtual_ms)
        assert scheduled.sites["warehouse"]["utilization"] == pytest.approx(
            plain.sites["warehouse"]["utilization"]
        )


class TestStatsSurface:
    def test_model_client_stats_carry_the_sim_block(self):
        client = connect("centralized://")
        assert client.stats()["sim"] == {"enabled": False, "reason": "no simulation has run"}
        report = client.simulate(_tuple_sets(8), clients=2)
        stats = client.stats()
        assert stats["sim"]["enabled"] is True
        assert stats["sim"] == report.snapshot()
        assert stats["sim"]["latency_ms"]["count"] == 8

    def test_local_client_stats_say_sim_is_unavailable(self):
        client = connect("memory://")
        assert client.stats()["sim"]["enabled"] is False

    def test_run_simulation_matrix_rows(self):
        rows = run_simulation_matrix(
            ["centralized://", "memory://"], _tuple_sets(6), clients=2
        )
        assert rows[0]["target"] == "centralized://"
        assert rows[0]["ops"] == 6
        assert set(rows[0]) >= {"p50_ms", "p95_ms", "p99_ms", "busiest_site"}
        assert rows[1]["simulation"] == "unsupported (local store)"
