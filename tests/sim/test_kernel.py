"""Tests for the discrete-event kernel: ordering, queueing, determinism."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sim import (
    Compute,
    Hop,
    OpTrace,
    Parallel,
    Schedule,
    SimConfig,
    SimKernel,
    percentile,
    trace_elapsed_ms,
)


def _hop(src="a", dst="b", ms=10.0, size=100, kind="x", critical=True):
    return Hop(src, dst, size, kind, ms, critical=critical)


def _replay(kernel: SimKernel, steps, start=0.0):
    outcome = {}
    kernel.schedule_trace(
        OpTrace(kind="t", origin="a", steps=steps),
        start,
        lambda end, ok: outcome.update(end=end, ok=ok),
    )
    kernel.run()
    return outcome["end"], outcome["ok"]


class TestEventQueue:
    def test_events_run_in_time_then_insertion_order(self):
        kernel = SimKernel()
        seen = []
        kernel.schedule(5.0, lambda: seen.append("late"))
        kernel.schedule(1.0, lambda: seen.append("early-1"))
        kernel.schedule(1.0, lambda: seen.append("early-2"))
        kernel.run()
        assert seen == ["early-1", "early-2", "late"]
        assert kernel.events_processed == 3
        assert kernel.now == 5.0

    def test_past_schedules_clamp_to_now(self):
        kernel = SimKernel()
        times = []
        kernel.schedule(10.0, lambda: kernel.schedule(3.0, lambda: times.append(kernel.now)))
        kernel.run()
        assert times == [10.0]

    def test_run_until_leaves_future_events_pending(self):
        kernel = SimKernel()
        kernel.schedule(1.0, lambda: None)
        kernel.schedule(100.0, lambda: None)
        kernel.run(until=50.0)
        assert kernel.events_processed == 1
        assert kernel.pending() == 1


class TestConfig:
    def test_negative_service_rejected(self):
        with pytest.raises(ConfigurationError):
            SimConfig(service_ms_per_message=-1.0)

    def test_jitter_range_enforced(self):
        with pytest.raises(ConfigurationError):
            SimConfig(jitter=1.5)


class TestTraceReplay:
    def test_sequential_hops_add(self):
        end, ok = _replay(SimKernel(), [_hop(ms=10.0), _hop(ms=7.0)])
        assert ok and end == pytest.approx(17.0)

    def test_parallel_takes_slowest_branch(self):
        group = Parallel(branches=[[_hop(ms=5.0), _hop(ms=5.0)], [_hop(ms=3.0)]])
        end, ok = _replay(SimKernel(), [group, _hop(ms=1.0)])
        assert ok and end == pytest.approx(11.0)

    def test_compute_advances_without_a_site(self):
        end, ok = _replay(SimKernel(), [Compute(4.0), _hop(ms=1.0)])
        assert ok and end == pytest.approx(5.0)

    def test_background_hop_costs_nothing_on_the_critical_path(self):
        end, ok = _replay(SimKernel(), [_hop(ms=10.0), _hop(ms=50.0, critical=False)])
        assert ok and end == pytest.approx(10.0)

    def test_replay_matches_closed_form(self):
        steps = [
            _hop(ms=2.0),
            Parallel(branches=[[_hop(ms=9.0)], [_hop(ms=4.0), Compute(2.0)]]),
            Compute(1.0),
        ]
        end, ok = _replay(SimKernel(), steps)
        assert ok and end == pytest.approx(trace_elapsed_ms(steps))


class TestQueueing:
    def test_fifo_service_delays_the_second_arrival(self):
        config = SimConfig(service_ms_per_message=5.0)
        kernel = SimKernel(config)
        ends = []
        for start in (0.0, 1.0):
            kernel.schedule_trace(
                OpTrace("t", "a", [_hop("a", "shared", ms=10.0)]),
                start,
                lambda end, ok: ends.append(end),
            )
        kernel.run()
        # First arrives at 10, served until 15; second arrives at 11 but
        # must wait for the server, finishing at 20.
        assert ends == [pytest.approx(15.0), pytest.approx(20.0)]
        server = kernel.server("shared")
        assert server.served == 2
        assert server.busy_ms == pytest.approx(10.0)
        assert server.max_wait_ms == pytest.approx(4.0)

    def test_degenerate_config_adds_no_queueing(self):
        kernel = SimKernel(SimConfig())
        ends = []
        for start in (0.0, 0.0):
            kernel.schedule_trace(
                OpTrace("t", "a", [_hop("a", "shared", ms=10.0)]),
                start,
                lambda end, ok: ends.append(end),
            )
        kernel.run()
        assert ends == [pytest.approx(10.0), pytest.approx(10.0)]

    def test_sited_compute_occupies_the_server(self):
        config = SimConfig(service_ms_per_message=0.0)
        kernel = SimKernel(config)
        ends = []
        kernel.schedule_trace(
            OpTrace("t", "a", [Compute(8.0, site="shared")]), 0.0, lambda e, ok: ends.append(e)
        )
        kernel.schedule_trace(
            OpTrace("t", "a", [Compute(8.0, site="shared")]), 1.0, lambda e, ok: ends.append(e)
        )
        kernel.run()
        assert ends == [pytest.approx(8.0), pytest.approx(16.0)]


class TestDeterminism:
    def _run_once(self, seed: int) -> tuple:
        config = SimConfig(seed=seed, jitter=0.2, service_ms_per_message=1.0, journal=True)
        kernel = SimKernel(config)
        ends = []
        for client in range(4):
            kernel.schedule_trace(
                OpTrace("t", "a", [_hop("a", f"s{client % 2}", ms=10.0), _hop("b", "c", ms=3.0)]),
                float(client),
                lambda end, ok: ends.append(round(end, 9)),
            )
        kernel.run()
        return tuple(ends), kernel.journal_digest()

    def test_same_seed_is_byte_identical(self):
        first_ends, first_digest = self._run_once(seed=7)
        second_ends, second_digest = self._run_once(seed=7)
        assert first_ends == second_ends
        assert first_digest == second_digest
        assert first_digest is not None

    def test_different_seed_diverges(self):
        _, first_digest = self._run_once(seed=7)
        _, other_digest = self._run_once(seed=8)
        assert first_digest != other_digest


class TestPartitionsDuringReplay:
    def test_critical_hop_to_partitioned_site_fails_the_operation(self):
        down = {"b"}
        kernel = SimKernel(is_partitioned=lambda site: site in down)
        end, ok = _replay(kernel, [_hop("a", "b", ms=10.0)])
        assert not ok

    def test_background_hop_loss_is_counted_not_fatal(self):
        down = {"b"}
        kernel = SimKernel(is_partitioned=lambda site: site in down)
        end, ok = _replay(kernel, [_hop("a", "c", ms=5.0), _hop("a", "b", ms=5.0, critical=False)])
        assert ok and end == pytest.approx(5.0)
        assert kernel.notifications_lost == 1

    def test_mid_flight_partition_drops_the_message(self):
        down = set()
        kernel = SimKernel(is_partitioned=lambda site: site in down)
        kernel.schedule(4.0, lambda: down.add("b"))
        outcome = {}
        kernel.schedule_trace(
            OpTrace("t", "a", [_hop("a", "b", ms=10.0)]),
            0.0,
            lambda end, ok: outcome.update(end=end, ok=ok),
        )
        kernel.run()
        assert outcome["ok"] is False


class TestScheduleDsl:
    def test_parse_partition_heal_and_churn(self):
        schedule = Schedule.parse(
            [
                {"at_ms": 100, "action": "partition", "site": "x"},
                {"at_ms": 300, "action": "heal", "site": "x"},
                {"at_ms": 50, "action": "churn", "site": "y", "duration_ms": 25},
            ]
        )
        assert [(e.at_ms, e.action, e.site) for e in schedule] == [
            (50.0, "partition", "y"),
            (75.0, "heal", "y"),
            (100.0, "partition", "x"),
            (300.0, "heal", "x"),
        ]

    def test_events_wrapper_and_json(self):
        schedule = Schedule.from_json('{"events": [{"at_ms": 1, "action": "heal", "site": "s"}]}')
        assert len(schedule) == 1

    def test_bad_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            Schedule.parse([{"at_ms": -1, "action": "heal", "site": "s"}])
        with pytest.raises(ConfigurationError):
            Schedule.parse([{"at_ms": 1, "action": "explode", "site": "s"}])
        with pytest.raises(ConfigurationError):
            Schedule.parse([{"at_ms": 1, "action": "churn", "site": "s"}])
        with pytest.raises(ConfigurationError):
            Schedule.from_json("not json")
        # Non-numeric times are configuration errors, not raw ValueErrors.
        with pytest.raises(ConfigurationError):
            Schedule.parse([{"at_ms": "half", "action": "heal", "site": "s"}])
        with pytest.raises(ConfigurationError):
            Schedule.parse([{"at_ms": None, "action": "heal", "site": "s"}])
        with pytest.raises(ConfigurationError):
            Schedule.parse([{"at_ms": 1, "action": "churn", "site": "s", "duration_ms": "x"}])


class TestPercentile:
    def test_nearest_rank(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == 50
        assert percentile(values, 95) == 95
        assert percentile(values, 99) == 99
        assert percentile(values, 100) == 100
        assert percentile([], 99) == 0.0
        assert percentile([7.0], 50) == 7.0
