"""Parity: degenerate kernel replay equals the models' composed latencies.

The refactor's load-bearing property: for every architecture model and
every operation kind, replaying the captured message-exchange trace
through a kernel with no service time, no jitter and no contention
yields *exactly* the latency the model composed arithmetically -- i.e.
the pre-kernel numbers are a provable degenerate case of the simulation.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AttributeEquals, AttributeRange, Query
from repro.errors import UnsupportedQueryError
from repro.eval.scenario import MODEL_NAMES, build_all_models, standard_topology
from repro.sensors.workloads import TrafficWorkload
from repro.sim import Compute, Hop, OpTrace, Parallel, SimConfig, SimKernel, trace_elapsed_ms


def _degenerate_replay(model, result):
    """Replay one operation's trace; returns (end_time, ok)."""
    assert result.trace is not None, "operation captured no trace"
    kernel = SimKernel(SimConfig(), is_partitioned=model.network.is_partitioned)
    outcome = {}
    kernel.schedule_trace(result.trace, 0.0, lambda end, ok: outcome.update(end=end, ok=ok))
    kernel.run()
    return outcome["end"], outcome["ok"]


def _assert_parity(model, result, label):
    end, ok = _degenerate_replay(model, result)
    assert ok, f"{model.name} {label}: degenerate replay reported failure"
    assert end == pytest.approx(result.latency_ms, rel=1e-9, abs=1e-9), (
        f"{model.name} {label}: composed {result.latency_ms} != replayed {end}"
    )
    # The closed form agrees too (three independent computations of one number).
    assert trace_elapsed_ms(result.trace.steps) == pytest.approx(
        result.latency_ms, rel=1e-9, abs=1e-9
    )


@pytest.fixture(scope="module")
def workload_sets():
    workload = TrafficWorkload(seed=21, cities=("london", "boston"), stations_per_city=2)
    return workload.all_sets(hours=1.0)


@pytest.mark.parametrize("model_name", MODEL_NAMES)
class TestSingleClientParity:
    """Every op kind, every model: composed latency == degenerate replay."""

    def test_all_operation_kinds_match(self, model_name, workload_sets):
        raw, derived = workload_sets
        model = build_all_models(standard_topology())[model_name]

        # Publishes (each from the tuple set's own city's site).
        for tuple_set in raw + derived:
            city = str(tuple_set.provenance.get("city", "london"))
            origin = f"{city}-site" if f"{city}-site" in model.topology else "london-site"
            _assert_parity(model, model.publish(tuple_set, origin), "publish")

        # Attribute queries: routable equality, range (flood/broadcast
        # paths), and an empty answer.
        for label, query in (
            ("query-eq", Query(AttributeEquals("city", "london"))),
            ("query-range", Query(AttributeRange("sequence", low=1))),
            ("query-empty", Query(AttributeEquals("city", "atlantis"))),
        ):
            _assert_parity(model, model.query(query, "tokyo-site"), label)

        # Lineage (where supported) and locate.
        target = derived[-1] if derived else raw[0]
        if model.supports_lineage:
            _assert_parity(model, model.ancestors(target.pname, "seattle-site"), "ancestors")
            _assert_parity(model, model.descendants(raw[0].pname, "boston-site"), "descendants")
        else:
            with pytest.raises(UnsupportedQueryError):
                model.ancestors(target.pname, "seattle-site")
        _assert_parity(model, model.locate(raw[0].pname, "tokyo-site"), "locate")

    def test_publish_batch_parity(self, model_name, workload_sets):
        raw, _ = workload_sets
        model = build_all_models(standard_topology())[model_name]
        result = model.publish_batch(list(raw), "london-site")
        _assert_parity(model, result, "publish_batch")


# ----------------------------------------------------------------------
# Property: for *any* operation structure, degenerate replay equals the
# closed-form composition (sequential sums, parallel maxima).
# ----------------------------------------------------------------------
_SITES = ("s0", "s1", "s2")
_latency = st.floats(min_value=0.0, max_value=200.0, allow_nan=False, allow_infinity=False)

_hops = st.builds(
    Hop,
    source=st.sampled_from(_SITES),
    destination=st.sampled_from(_SITES),
    size_bytes=st.integers(min_value=0, max_value=4096),
    kind=st.just("hop"),
    base_latency_ms=_latency,
    critical=st.booleans(),
)
# Site-less computes only: a *sited* compute deliberately occupies its
# server, so two of them racing in parallel branches serialize -- the
# queueing behaviour the kernel adds on purpose, outside the closed form.
_computes = st.builds(Compute, ms=_latency, site=st.just(""))
_steps = st.recursive(
    st.one_of(_hops, _computes),
    lambda children: st.builds(
        Parallel, branches=st.lists(st.lists(children, max_size=3), max_size=3)
    ),
    max_leaves=12,
)


@settings(max_examples=60, deadline=None)
@given(steps=st.lists(_steps, max_size=6), start=st.floats(min_value=0.0, max_value=1000.0))
def test_replay_matches_closed_form_for_arbitrary_traces(steps, start):
    kernel = SimKernel(SimConfig())
    outcome = {}
    kernel.schedule_trace(
        OpTrace(kind="any", origin="s0", steps=steps),
        start,
        lambda end, ok: outcome.update(end=end, ok=ok),
    )
    kernel.run()
    assert outcome["ok"]
    assert outcome["end"] - start == pytest.approx(trace_elapsed_ms(steps), rel=1e-9, abs=1e-6)
