"""Tests for the write-ahead log and crash recovery."""

from __future__ import annotations

import pytest

from repro.core import ProvenanceRecord
from repro.errors import StorageError
from repro.storage import MemoryBackend, WalEntry, WriteAheadLog


def _record(label: str):
    return ProvenanceRecord({"domain": "traffic", "label": label})


class TestWalEntry:
    def test_encode_decode_round_trip(self):
        entry = WalEntry(3, "put_record", "a" * 64, '{"x":1}')
        decoded = WalEntry.decode(entry.encode())
        assert decoded == entry

    def test_decode_rejects_missing_checksum(self):
        with pytest.raises(StorageError):
            WalEntry.decode('{"seq":1}')

    def test_decode_rejects_bad_checksum(self):
        entry = WalEntry(1, "put_record", "a" * 64, "{}").encode()
        corrupted = entry[:-1] + ("0" if entry[-1] != "0" else "1")
        with pytest.raises(StorageError):
            WalEntry.decode(corrupted)

    def test_decode_rejects_unknown_operation(self):
        import json
        import zlib

        body = json.dumps({"seq": 1, "op": "format_disk", "pname": "a" * 64, "payload": None},
                          sort_keys=True, separators=(",", ":"))
        crc = zlib.crc32(body.encode()) & 0xFFFFFFFF
        with pytest.raises(StorageError):
            WalEntry.decode(f"{body}|{crc:08x}")


class TestWriteAheadLog:
    def test_sequence_increments(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "log.wal")
        assert wal.sequence == 0
        wal.log_put_record(_record("a"))
        wal.log_mark_removed(_record("a").pname())
        assert wal.sequence == 2

    def test_sequence_restored_from_disk(self, tmp_path):
        path = tmp_path / "log.wal"
        wal = WriteAheadLog(path)
        wal.log_put_record(_record("a"))
        wal.log_put_record(_record("b"))
        assert WriteAheadLog(path).sequence == 2

    def test_entries_skips_torn_line(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "log.wal")
        wal.log_put_record(_record("a"))
        wal.inject_torn_write()
        wal.log_put_record(_record("b"))
        assert len(wal.entries()) == 1

    def test_replay_restores_records_payloads_and_removals(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "log.wal")
        record = _record("a")
        wal.log_put_record(record)
        wal.log_put_payload(record.pname(), b"\x01\x02")
        wal.log_mark_removed(record.pname())

        backend = MemoryBackend()
        report = wal.replay(backend)
        assert report.applied == 3
        assert backend.has_record(record.pname())
        assert backend.get_payload(record.pname()) == b"\x01\x02"
        assert backend.is_removed(record.pname())

    def test_replay_is_idempotent(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "log.wal")
        record = _record("a")
        wal.log_put_record(record)
        backend = MemoryBackend()
        wal.replay(backend)
        second = wal.replay(backend)
        assert second.applied == 0
        assert second.skipped_duplicate == 1

    def test_replay_counts_corrupt_entries(self, tmp_path):
        path = tmp_path / "log.wal"
        wal = WriteAheadLog(path)
        wal.log_put_record(_record("a"))
        wal.inject_torn_write()
        wal.log_put_record(_record("b"))
        backend = MemoryBackend()
        report = wal.replay(backend)
        assert report.applied == 1
        assert report.skipped_corrupt == 1
        assert report.total_seen() == 2

    def test_truncate_resets_log(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "log.wal")
        wal.log_put_record(_record("a"))
        wal.truncate()
        assert wal.sequence == 0
        assert wal.entries() == []

    def test_recovery_after_simulated_crash(self, tmp_path):
        """The E11 scenario in miniature: WAL ahead of a lost backend."""
        wal = WriteAheadLog(tmp_path / "log.wal")
        records = [_record(label) for label in "abcde"]
        backend = MemoryBackend()
        for index, record in enumerate(records):
            wal.log_put_record(record)
            if index < 3:
                backend.put_record(record)  # the rest were lost in the crash

        fresh = MemoryBackend()
        wal.replay(fresh)
        for record in records:
            assert fresh.has_record(record.pname())


def _backend_state(backend: MemoryBackend) -> tuple:
    """A full, comparable snapshot of what the backend holds."""
    records = {}
    payloads = {}
    for pname, record in backend.iter_records():
        records[pname.digest] = record.to_json()
        payloads[pname.digest] = backend.get_payload(pname)
    removed = {pname.digest for pname in backend.removed_pnames()}
    return records, payloads, removed


class TestReplayIdempotency:
    """Replaying the same log N times yields the identical backend state."""

    def _populated_wal(self, tmp_path, torn_tail: bool):
        wal = WriteAheadLog(tmp_path / "log.wal")
        first, second, third = _record("a"), _record("b"), _record("c")
        wal.log_put_record(first)
        wal.log_put_payload(first.pname(), b"\x01\x02\x03")
        wal.log_put_record(second)
        wal.log_mark_removed(second.pname())
        if torn_tail:
            wal.inject_torn_write()
        wal.log_put_record(third)  # torn when requested: must be discarded
        return wal

    @pytest.mark.parametrize("torn_tail", [False, True])
    def test_double_replay_matches_single_replay(self, tmp_path, torn_tail):
        wal = self._populated_wal(tmp_path, torn_tail)

        once = MemoryBackend()
        wal.replay(once)
        twice = MemoryBackend()
        wal.replay(twice)
        second_report = wal.replay(twice)

        assert _backend_state(once) == _backend_state(twice)
        # The second pass applied nothing: every intact entry was a duplicate.
        assert second_report.applied == 0
        assert second_report.skipped_duplicate == len(wal.entries())

    def test_torn_final_line_is_discarded_both_times(self, tmp_path):
        wal = self._populated_wal(tmp_path, torn_tail=True)
        backend = MemoryBackend()
        first = wal.replay(backend)
        second = wal.replay(backend)
        assert first.skipped_corrupt == 1
        assert second.skipped_corrupt == 1
        # The torn record never materializes, no matter how often we replay.
        assert backend.record_count() == 2

    def test_replay_onto_already_recovered_backend_is_a_noop(self, tmp_path):
        wal = self._populated_wal(tmp_path, torn_tail=False)
        backend = MemoryBackend()
        wal.replay(backend)
        before = _backend_state(backend)
        wal.replay(backend)
        assert _backend_state(backend) == before
