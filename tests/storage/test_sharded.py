"""Tests for the digest-partitioned sharded backend."""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.core import ProvenanceRecord
from repro.errors import StorageError
from repro.storage import ShardedBackend, WriteAheadLog, make_backend, shard_of_digest
from repro.storage.sharded import MANIFEST_BLOB, shard_file_name


def _record(label: str, ancestors=()):
    return ProvenanceRecord({"domain": "traffic", "label": label}, ancestors=ancestors)


def _records(count: int):
    return [_record(f"r{i:04d}") for i in range(count)]


class TestPartitioner:
    # Baked-in expectations: the assignment is a pure function of the
    # digest text, so these hold in every interpreter run on every host.
    KNOWN = {
        ("0" * 64, 4): 0,
        ("0" * 7 + "1" + "0" * 56, 4): 1,
        ("f" * 64, 4): int("ffffffff", 16) % 4,
        ("89abcdef" + "0" * 56, 8): int("89abcdef", 16) % 8,
        ("deadbeef" + "f" * 56, 3): int("deadbeef", 16) % 3,
    }

    def test_known_assignments(self):
        for (digest, shards), expected in self.KNOWN.items():
            assert shard_of_digest(digest, shards) == expected

    def test_only_the_leading_32_bits_matter(self):
        head = "12345678"
        assert shard_of_digest(head + "0" * 56, 16) == shard_of_digest(
            head + "f" * 56, 16
        )

    def test_assignment_is_hash_salt_independent(self):
        """The same digests map to the same shards under different
        PYTHONHASHSEED values -- the partitioner must never route through
        Python's per-process salted hash()."""
        digests = [_record(f"x{i}").pname().digest for i in range(8)]
        script = (
            "import sys; sys.path.insert(0, sys.argv[1]); "
            "from repro.storage import shard_of_digest; "
            "print([shard_of_digest(d, 5) for d in sys.argv[2:]])"
        )
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        outputs = set()
        for seed in ("0", "1", "424242"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            result = subprocess.run(
                [sys.executable, "-c", script, src, *digests],
                capture_output=True, text=True, env=env, check=True,
            )
            outputs.add(result.stdout.strip())
        assert len(outputs) == 1
        assert outputs.pop() == str([shard_of_digest(d, 5) for d in digests])

    def test_every_shard_is_reachable(self):
        shards = 4
        hit = {shard_of_digest(r.pname().digest, shards) for r in _records(200)}
        assert hit == set(range(shards))

    def test_records_land_on_their_digest_shard(self, tmp_path):
        backend = ShardedBackend(str(tmp_path / "pass.db"), shards=4)
        records = _records(40)
        backend.put_batch([(record, None) for record in records])
        for record in records:
            expected = backend.shard_of(record.pname().digest)
            for index, shard in enumerate(backend.shard_backends):
                assert shard.has_record(record.pname()) == (index == expected)
        backend.close()


class TestManifest:
    def test_reopen_with_same_count_keeps_records(self, tmp_path):
        path = str(tmp_path / "pass.db")
        backend = ShardedBackend(path, shards=3)
        records = _records(12)
        backend.put_batch([(r, b"payload") for r in records])
        backend.close()
        reopened = ShardedBackend(path, shards=3)
        assert reopened.record_count() == 12
        for record in records:
            assert reopened.get_payload(record.pname()) == b"payload"
        reopened.close()

    def test_reopen_with_different_count_raises(self, tmp_path):
        path = str(tmp_path / "pass.db")
        ShardedBackend(path, shards=3).close()
        with pytest.raises(StorageError, match="created with shards=3"):
            ShardedBackend(path, shards=5)

    def test_plain_open_of_sharded_base_raises(self, tmp_path):
        path = str(tmp_path / "pass.db")
        ShardedBackend(path, shards=2).close()
        with pytest.raises(StorageError, match="base of a sharded database"):
            make_backend("sqlite", path=path)

    def test_sharded_open_of_plain_database_raises(self, tmp_path):
        path = str(tmp_path / "plain.db")
        make_backend("sqlite", path=path).close()
        with pytest.raises(StorageError, match="existing unsharded"):
            make_backend("sqlite", path=path, shards=4)

    def test_missing_manifest_on_populated_shard0_raises(self, tmp_path):
        path = str(tmp_path / "pass.db")
        backend = ShardedBackend(path, shards=2)
        backend.put_batch([(record, None) for record in _records(8)])
        backend.shard_backends[0].delete_index_blob(MANIFEST_BLOB)
        backend.close()
        with pytest.raises(StorageError, match="no shard manifest"):
            ShardedBackend(path, shards=2)

    def test_missing_shard0_file_raises(self, tmp_path):
        path = str(tmp_path / "pass.db")
        ShardedBackend(path, shards=3).close()
        os.remove(shard_file_name(path, 0))
        with pytest.raises(StorageError, match="missing shard 00"):
            ShardedBackend(path, shards=3)


class TestGroupCommitAndParallelScans:
    def test_put_batch_is_one_group_commit(self, tmp_path):
        backend = ShardedBackend(str(tmp_path / "pass.db"), shards=4)
        records = _records(40)
        backend.put_batch([(record, b"x") for record in records])
        snapshot = backend.storage_stats()
        assert snapshot["group_commits"] == 1
        assert snapshot["batch_records"] == 40
        # Each shard that received a slice committed it as its own batch.
        per_shard = {entry["shard"]: entry for entry in snapshot["per_shard"]}
        for index, shard in enumerate(backend.shard_backends):
            expected = shard.record_count()
            assert per_shard[index]["records"] == expected
            assert per_shard[index]["group_commits"] == (1 if expected else 0)
        backend.close()

    def test_scan_all_merges_in_digest_order(self, tmp_path):
        backend = ShardedBackend(str(tmp_path / "pass.db"), shards=4)
        backend.put_batch([(record, None) for record in _records(30)])
        scanned = backend.scan_all()
        digests = [pname.digest for pname, _ in scanned]
        assert digests == sorted(digests)
        assert len(scanned) == 30
        assert backend.storage_stats()["parallel_scans"] == 1
        backend.close()

    def test_scan_all_is_identical_across_shard_counts(self, tmp_path):
        records = _records(25)
        answers = []
        for shards in (1, 3, 4):
            backend = ShardedBackend(
                str(tmp_path / f"pass{shards}.db"), shards=shards
            )
            backend.put_batch([(record, None) for record in records])
            answers.append(
                [(p.digest, r.to_json()) for p, r in backend.scan_all()]
            )
            backend.close()
        assert answers[0] == answers[1] == answers[2]

    def test_get_records_preserves_input_order(self, tmp_path):
        backend = ShardedBackend(str(tmp_path / "pass.db"), shards=4)
        records = _records(20)
        backend.put_batch([(record, None) for record in records])
        wanted = [records[i].pname() for i in (17, 3, 11, 0, 8)]
        fetched = backend.get_records(wanted + [_record("ghost").pname()])
        assert [pname for pname, _ in fetched] == wanted
        assert backend.storage_stats()["parallel_probes"] >= 1
        backend.close()

    def test_storage_stats_schema_is_frozen(self, tmp_path):
        backend = ShardedBackend(str(tmp_path / "pass.db"), shards=2)
        snapshot = backend.storage_stats()
        assert set(snapshot) == {
            "kind", "shards", "records", "group_commits", "batch_records",
            "commit_ms", "parallel_scans", "parallel_probes", "per_shard",
        }
        assert set(snapshot["commit_ms"]) == {"total", "max"}
        assert snapshot["kind"] == "sharded"
        assert snapshot["shards"] == 2
        assert [entry["shard"] for entry in snapshot["per_shard"]] == [0, 1]
        backend.close()


class TestPerShardRecovery:
    """Crash recovery composes per shard: one WAL per shard, each replayed
    into its own shard; a torn tail on one shard never disturbs the rest."""

    def _shard_wals(self, tmp_path, backend, records):
        """One WAL per shard, logging each record on its owning shard."""
        wals = [
            WriteAheadLog(tmp_path / f"wal.shard{index:02d}")
            for index in range(backend.shard_count())
        ]
        for record in records:
            wals[backend.shard_of(record.pname().digest)].log_put_record(record)
        return wals

    def test_torn_tail_on_one_shard_loses_only_that_record(self, tmp_path):
        backend = ShardedBackend(str(tmp_path / "pass.db"), shards=3)
        records = _records(30)
        # The last record's shard gets a torn tail: its final WAL entry is
        # written only partially, as if the crash hit mid-sector.
        victim = records[-1]
        torn_shard = backend.shard_of(victim.pname().digest)
        wals = self._shard_wals(tmp_path, backend, records[:-1])
        wals[torn_shard].inject_torn_write()
        wals[torn_shard].log_put_record(victim)

        for index, wal in enumerate(wals):
            report = wal.replay(backend.shard_backends[index])
            if index == torn_shard:
                assert report.skipped_corrupt == 1
            else:
                assert report.skipped_corrupt == 0
        survivors = {pname.digest for pname, _ in backend.scan_all()}
        lost = {r.pname().digest for r in records} - survivors
        # Exactly the torn entry is missing, and it lived on the torn shard.
        assert lost == {victim.pname().digest}
        backend.close()

    def test_double_replay_with_one_torn_shard_is_idempotent(self, tmp_path):
        backend = ShardedBackend(str(tmp_path / "pass.db"), shards=3)
        records = _records(24)
        victim = next(
            r for r in records if backend.shard_of(r.pname().digest) == 1
        )
        rest = [r for r in records if r is not victim]
        wals = self._shard_wals(tmp_path, backend, rest)
        wals[1].inject_torn_write()
        wals[1].log_put_record(victim)

        for index, wal in enumerate(wals):
            wal.replay(backend.shard_backends[index])
        once = [(p.digest, r.to_json()) for p, r in backend.scan_all()]
        reports = [
            wal.replay(backend.shard_backends[index])
            for index, wal in enumerate(wals)
        ]
        assert [(p.digest, r.to_json()) for p, r in backend.scan_all()] == once
        # Second pass: every intact entry is a duplicate, nothing applies.
        assert all(report.applied == 0 for report in reports)
        assert reports[1].skipped_corrupt == 1
        backend.close()
