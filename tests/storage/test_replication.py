"""Tests for the replication manager."""

from __future__ import annotations

import pytest

from repro.core import ProvenanceRecord
from repro.errors import ConfigurationError, StorageError, UnknownEntityError
from repro.storage import MemoryBackend, ReplicationManager


def _record(label: str):
    return ProvenanceRecord({"domain": "traffic", "label": label})


@pytest.fixture
def backends():
    return {name: MemoryBackend() for name in ("boston", "london", "tokyo")}


@pytest.fixture
def manager(backends):
    return ReplicationManager(backends, replication_factor=2)


class TestConfiguration:
    def test_requires_backends(self):
        with pytest.raises(ConfigurationError):
            ReplicationManager({}, replication_factor=2)

    def test_requires_positive_factor(self, backends):
        with pytest.raises(ConfigurationError):
            ReplicationManager(backends, replication_factor=0)

    def test_factor_capped_at_site_count(self, backends):
        manager = ReplicationManager(backends, replication_factor=10)
        assert manager.replication_factor == 3

    def test_unknown_site_operations_raise(self, manager):
        with pytest.raises(UnknownEntityError):
            manager.fail_site("mars")
        with pytest.raises(UnknownEntityError):
            manager.store(_record("a"), "mars")


class TestStoreAndFetch:
    def test_store_creates_factor_copies(self, manager, backends):
        record = _record("a")
        copies = manager.store(record, home_site="london")
        assert len(copies) == 2
        assert copies[0] == "london"
        for site in copies:
            assert backends[site].has_record(record.pname())

    def test_fetch_prefers_requested_site(self, manager):
        record = _record("a")
        copies = manager.store(record, home_site="london")
        fetched = manager.fetch(record.pname(), prefer_site=copies[1])
        assert fetched.pname() == record.pname()

    def test_fetch_unknown_record_raises(self, manager):
        with pytest.raises(UnknownEntityError):
            manager.fetch(_record("ghost").pname())

    def test_locations_reported(self, manager):
        record = _record("a")
        copies = manager.store(record, home_site="boston")
        assert manager.locations(record.pname()) == copies


class TestFailures:
    def test_store_fails_when_home_site_down(self, manager):
        manager.fail_site("london")
        with pytest.raises(StorageError):
            manager.store(_record("a"), home_site="london")

    def test_fetch_falls_back_to_replica(self, manager):
        record = _record("a")
        copies = manager.store(record, home_site="london")
        manager.fail_site("london")
        fetched = manager.fetch(record.pname())
        assert fetched.pname() == record.pname()
        assert manager.copy_count(record.pname()) == len(copies) - 1

    def test_fetch_fails_when_all_replicas_down(self, manager):
        record = _record("a")
        copies = manager.store(record, home_site="london")
        for site in copies:
            manager.fail_site(site)
        assert not manager.available(record.pname())
        with pytest.raises(StorageError):
            manager.fetch(record.pname())

    def test_recover_site_restores_availability(self, manager):
        record = _record("a")
        copies = manager.store(record, home_site="london")
        for site in copies:
            manager.fail_site(site)
        manager.recover_site(copies[0])
        assert manager.available(record.pname())

    def test_live_sites_tracking(self, manager):
        manager.fail_site("tokyo")
        assert manager.live_sites() == ["boston", "london"]
        assert manager.is_failed("tokyo")


class TestRepair:
    def test_repair_restores_replication_factor(self, manager, backends):
        record = _record("a")
        copies = manager.store(record, home_site="london")
        lost = copies[1]
        manager.fail_site(lost)
        created = manager.repair()
        assert created == 1
        assert manager.copy_count(record.pname()) == 2
        surviving = [site for site in manager.locations(record.pname()) if site != lost]
        for site in surviving:
            assert backends[site].has_record(record.pname())

    def test_repair_skips_unrecoverable_records(self, manager):
        record = _record("a")
        copies = manager.store(record, home_site="london")
        for site in copies:
            manager.fail_site(site)
        assert manager.repair() == 0

    def test_repair_noop_when_healthy(self, manager):
        manager.store(_record("a"), home_site="london")
        assert manager.repair() == 0
