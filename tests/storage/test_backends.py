"""Tests for the in-memory and SQLite storage backends."""

from __future__ import annotations

import pytest

from repro.core import ProvenanceRecord
from repro.errors import CrashInjectedError, StorageError
from repro.storage import MemoryBackend, ShardedBackend, SQLiteBackend


def _record(label: str, ancestors=()):
    return ProvenanceRecord({"domain": "traffic", "label": label}, ancestors=ancestors)


BACKEND_FACTORIES = {
    "memory": lambda tmp_path: MemoryBackend(),
    "sqlite": lambda tmp_path: SQLiteBackend(tmp_path / "test.db"),
    "sqlite-memory": lambda tmp_path: SQLiteBackend(":memory:"),
    "sharded": lambda tmp_path: ShardedBackend(str(tmp_path / "sharded.db"), shards=3),
    "sharded-memory": lambda tmp_path: ShardedBackend(None, shards=3, kind="memory"),
}


@pytest.fixture(params=sorted(BACKEND_FACTORIES))
def backend(request, tmp_path):
    instance = BACKEND_FACTORIES[request.param](tmp_path)
    yield instance
    instance.close()


class TestBackendContract:
    def test_put_get_record(self, backend):
        record = _record("a")
        backend.put_record(record)
        fetched = backend.get_record(record.pname())
        assert fetched is not None
        assert fetched.pname() == record.pname()
        assert backend.has_record(record.pname())
        assert backend.record_count() == 1

    def test_get_missing_record_is_none(self, backend):
        assert backend.get_record(_record("ghost").pname()) is None
        assert not backend.has_record(_record("ghost").pname())

    def test_put_record_overwrite_is_idempotent(self, backend):
        record = _record("a")
        backend.put_record(record)
        backend.put_record(record)
        assert backend.record_count() == 1

    def test_iter_records(self, backend):
        records = [_record(label) for label in "abc"]
        for record in records:
            backend.put_record(record)
        seen = {pname.digest for pname, _ in backend.iter_records()}
        assert seen == {record.pname().digest for record in records}

    def test_payload_round_trip(self, backend):
        record = _record("a")
        backend.put_record(record)
        backend.put_payload(record.pname(), b"\x00\x01payload")
        assert backend.get_payload(record.pname()) == b"\x00\x01payload"

    def test_payload_missing_is_none(self, backend):
        assert backend.get_payload(_record("ghost").pname()) is None

    def test_payload_requires_bytes(self, backend):
        with pytest.raises(StorageError):
            backend.put_payload(_record("a").pname(), "not-bytes")  # type: ignore[arg-type]

    def test_delete_payload_keeps_record(self, backend):
        record = _record("a")
        backend.put_record(record)
        backend.put_payload(record.pname(), b"data")
        assert backend.delete_payload(record.pname())
        assert backend.get_payload(record.pname()) is None
        assert backend.has_record(record.pname())

    def test_delete_missing_payload_returns_false(self, backend):
        assert not backend.delete_payload(_record("ghost").pname())

    def test_removed_markers(self, backend):
        record = _record("a")
        backend.put_record(record)
        assert not backend.is_removed(record.pname())
        backend.mark_removed(record.pname())
        assert backend.is_removed(record.pname())
        assert record.pname() in backend.removed_pnames()

    def test_stats_counters(self, backend):
        record = _record("a")
        backend.put_record(record)
        backend.put_payload(record.pname(), b"1234")
        backend.get_record(record.pname())
        snapshot = backend.stats.snapshot()
        assert snapshot["puts"] == 2
        assert snapshot["gets"] >= 1
        assert snapshot["payload_bytes"] == 4

    def test_use_after_close_raises(self, backend):
        backend.close()
        with pytest.raises(StorageError):
            backend.put_record(_record("a"))

    def test_index_blob_overwrite_returns_latest(self, backend):
        assert backend.put_index_blob("closure:test", b"v1")
        assert backend.put_index_blob("closure:test", b"v2")
        assert backend.get_index_blob("closure:test") == b"v2"
        assert backend.delete_index_blob("closure:test")
        assert backend.get_index_blob("closure:test") is None

    def test_put_batch_round_trip(self, backend):
        records = [_record(label) for label in "abcde"]
        backend.put_batch(
            [(record, f"p{i}".encode()) for i, record in enumerate(records)]
        )
        assert backend.record_count() == 5
        for i, record in enumerate(records):
            assert backend.get_payload(record.pname()) == f"p{i}".encode()
        snapshot = backend.storage_stats()
        assert snapshot["group_commits"] == 1
        assert snapshot["batch_records"] == 5

    def test_put_batch_rejects_bad_payload_with_no_partial_state(self, backend):
        """A bad entry anywhere in the batch rejects the whole batch:
        every backend validates up front, so none stores a prefix."""
        good, bad = _record("good"), _record("bad")
        with pytest.raises(StorageError):
            backend.put_batch([(good, b"fine"), (bad, "not-bytes")])
        assert backend.record_count() == 0
        assert not backend.has_record(good.pname())
        assert backend.storage_stats()["group_commits"] == 0

    def test_scan_all_matches_iter_records(self, backend):
        records = [_record(label) for label in "abcdef"]
        backend.put_batch([(record, None) for record in records])
        scanned = {pname.digest for pname, _ in backend.scan_all()}
        iterated = {pname.digest for pname, _ in backend.iter_records()}
        assert scanned == iterated == {r.pname().digest for r in records}

    def test_storage_stats_schema(self, backend):
        snapshot = backend.storage_stats()
        assert set(snapshot) == {
            "kind", "shards", "records", "group_commits", "batch_records",
            "commit_ms", "parallel_scans", "parallel_probes", "per_shard",
        }
        assert snapshot["shards"] == backend.shard_count()
        assert len(snapshot["per_shard"]) == backend.shard_count()


class TestSQLiteSpecific:
    def test_durability_across_reopen(self, tmp_path):
        path = tmp_path / "durable.db"
        backend = SQLiteBackend(path)
        record = _record("a")
        child = _record("b", ancestors=(record.pname(),))
        backend.put_record(record)
        backend.put_record(child)
        backend.put_payload(record.pname(), b"payload")
        backend.mark_removed(record.pname())
        backend.close()

        reopened = SQLiteBackend(path)
        assert reopened.record_count() == 2
        assert reopened.get_payload(record.pname()) == b"payload"
        assert reopened.is_removed(record.pname())
        reopened.close()

    def test_recursive_sql_ancestors_and_descendants(self, tmp_path):
        backend = SQLiteBackend(tmp_path / "cte.db")
        a = _record("a")
        b = _record("b", ancestors=(a.pname(),))
        c = _record("c", ancestors=(b.pname(),))
        for record in (a, b, c):
            backend.put_record(record)
        assert set(backend.sql_ancestors(c.pname())) == {a.pname(), b.pname()}
        assert set(backend.sql_descendants(a.pname())) == {b.pname(), c.pname()}
        backend.close()

    def test_crash_injection_after_n_writes(self, tmp_path):
        backend = SQLiteBackend(tmp_path / "crash.db", crash_after_writes=2)
        backend.put_record(_record("a"))
        backend.put_record(_record("b"))
        with pytest.raises(CrashInjectedError):
            backend.put_record(_record("c"))
        # After the crash the backend is unusable.
        with pytest.raises(StorageError):
            backend.record_count()

    def test_crashed_backend_loses_nothing_acknowledged(self, tmp_path):
        path = tmp_path / "crash2.db"
        backend = SQLiteBackend(path, crash_after_writes=3)
        acknowledged = []
        for label in "abcdef":
            try:
                record = _record(label)
                backend.put_record(record)
                acknowledged.append(record.pname())
            except CrashInjectedError:
                break
        reopened = SQLiteBackend(path)
        for pname in acknowledged:
            assert reopened.has_record(pname)
        reopened.close()
