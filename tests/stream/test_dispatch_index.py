"""Tests for the attribute-keyed dispatch index (anchor compilation + pruning)."""

from __future__ import annotations

import random

import pytest

from repro.api import Q
from repro.core import GeoPoint, ProvenanceRecord, Timestamp
from repro.query.normalize import normalize
from repro.stream.dispatch import DispatchIndex, anchor_groups_for
from repro.stream.engine import StreamEngine


def _record(**attributes) -> ProvenanceRecord:
    return ProvenanceRecord({"domain": "traffic", **attributes})


class TestAnchorCompilation:
    def test_equality_anchors_on_the_exact_value(self):
        groups = anchor_groups_for(normalize(Q.attr("city") == "london"))
        assert len(groups) == 1
        assert groups[0][0][:2] == ("eq", "city")

    def test_membership_is_one_group_of_equalities(self):
        groups = anchor_groups_for(normalize(Q.attr("city").one_of("london", "boston")))
        assert len(groups) == 1
        assert len(groups[0]) == 2
        assert all(anchor[0] == "eq" for anchor in groups[0])

    def test_range_anchors_on_attribute_presence(self):
        groups = anchor_groups_for(normalize(Q.attr("sequence") >= 5))
        assert groups == [[("attr", "sequence")]]

    def test_conjunction_demands_every_anchorable_conjunct(self):
        predicate = normalize((Q.attr("domain") == "traffic") & (Q.attr("city") == "london"))
        groups = anchor_groups_for(predicate)
        assert len(groups) == 2  # both facts must be exhibited

    def test_disjunction_unions_branch_anchors(self):
        predicate = normalize((Q.attr("city") == "london") | (Q.attr("city") == "boston"))
        groups = anchor_groups_for(predicate)
        assert len(groups) == 1
        assert len(groups[0]) == 2

    def test_unanchorable_disjunct_poisons_the_predicate(self):
        predicate = normalize((Q.attr("city") == "london") | Q.raw())
        assert anchor_groups_for(predicate) is None

    def test_negated_leaves_are_unanchorable(self):
        # ~(city == london) matches records that lack `city` entirely, so
        # no attribute fact of the record can be demanded.
        assert anchor_groups_for(normalize(~(Q.attr("city") == "london"))) is None

    def test_conjunction_with_unanchorable_part_keeps_other_anchors(self):
        predicate = normalize((Q.attr("city") == "london") & Q.raw())
        groups = anchor_groups_for(predicate)
        assert len(groups) == 1


class TestCandidatePruning:
    def test_equality_buckets_prune_other_values(self):
        index = DispatchIndex()
        index.add("s1", normalize(Q.attr("city") == "london"))
        index.add("s2", normalize(Q.attr("city") == "boston"))
        assert index.candidates(_record(city="london")) == {"s1"}
        assert index.candidates(_record(city="paris")) == set()

    def test_conjunction_prunes_multiplicatively(self):
        index = DispatchIndex()
        index.add("s1", normalize((Q.attr("domain") == "traffic") & (Q.attr("city") == "london")))
        # domain matches but city does not: NOT a candidate (this is what
        # single-anchor dispatch would get wrong).
        assert index.candidates(_record(city="boston")) == set()
        assert index.candidates(_record(city="london")) == {"s1"}

    def test_scan_bucket_is_always_a_candidate(self):
        index = DispatchIndex()
        index.add("s1", normalize(Q.raw()))
        assert index.candidates(_record(city="anything")) == {"s1"}

    def test_remove_clears_every_posting(self):
        index = DispatchIndex()
        predicate = normalize((Q.attr("city") == "london") | (Q.attr("city") == "boston"))
        index.add("s1", predicate)
        index.remove("s1")
        assert index.candidates(_record(city="london")) == set()
        assert len(index) == 0

    def test_remove_scan_subscription(self):
        index = DispatchIndex()
        index.add("s1", normalize(Q.raw()))
        index.remove("s1")
        assert index.candidates(_record()) == set()


class TestIndexedNaiveParity:
    """The index only prunes: indexed and naive dispatch deliver identically."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_randomized_parity(self, seed):
        rng = random.Random(seed)
        cities = [f"city-{i}" for i in range(6)]
        domains = ["traffic", "weather", "medical"]

        def random_predicate():
            roll = rng.random()
            if roll < 0.3:
                return Q.attr("city") == rng.choice(cities)
            if roll < 0.5:
                return (Q.attr("domain") == rng.choice(domains)) & (
                    Q.attr("city") == rng.choice(cities)
                )
            if roll < 0.65:
                low = rng.randrange(0, 40)
                return Q.attr("sequence").between(low, low + 10)
            if roll < 0.75:
                return (Q.attr("city") == rng.choice(cities)) | (
                    Q.attr("sequence") >= rng.randrange(0, 40)
                )
            if roll < 0.85:
                return ~(Q.attr("city") == rng.choice(cities))
            if roll < 0.95:
                return Q.attr("city").one_of(*rng.sample(cities, 2))
            return Q.near(GeoPoint(45.0, 0.0), rng.uniform(100.0, 2000.0))

        def build(engine, collector):
            for _ in range(40):
                engine.subscribe(random_predicate(), callback=collector)

        naive_events, indexed_events = [], []
        naive = StreamEngine(use_index=False)
        indexed = StreamEngine(use_index=True)
        build(naive, naive_events.append)
        # Re-seed so both engines hold identical subscription populations.
        rng = random.Random(seed)
        build(indexed, indexed_events.append)

        rng2 = random.Random(seed + 100)
        for i in range(120):
            record = ProvenanceRecord(
                {
                    "domain": rng2.choice(domains),
                    "city": rng2.choice(cities),
                    "sequence": rng2.randrange(0, 50),
                    "window_start": Timestamp(60.0 * i),
                    "location": GeoPoint(rng2.uniform(30, 60), rng2.uniform(-10, 10)),
                }
            )
            pname = record.pname()
            naive.on_ingest(pname, record)
            indexed.on_ingest(pname, record)

        def keys(events):
            return sorted((e.subscription_id, e.pname.digest) for e in events)

        assert keys(naive_events) == keys(indexed_events)
        assert naive_events  # the comparison must not be vacuous
        # And the index must have done real pruning work.
        assert indexed.candidates_checked < indexed.naive_checks
