"""Subscriptions through the façade: delivery, overflow policies, lifecycle."""

from __future__ import annotations

import threading

import pytest

from repro.api import Q, connect
from repro.core import GeoPoint, ProvenanceRecord, Timestamp, TupleSet
from repro.errors import QueryError, UnsupportedQueryError
from repro.stream import DeliveryQueue, MatchEvent


def _tuple_set(i: int, city: str = "london", parents=()) -> TupleSet:
    record = ProvenanceRecord(
        {
            "domain": "traffic",
            "city": city,
            "sequence": i,
            "window_start": Timestamp(60.0 * i),
            "window_end": Timestamp(60.0 * i + 59.0),
            "location": GeoPoint(51.5, -0.1),
        },
        ancestors=tuple(parents),
    )
    return TupleSet([], record)


@pytest.fixture
def client():
    with connect("memory://") as c:
        yield c


class TestQuerySubscriptions:
    def test_callback_fires_per_matching_publish(self, client):
        hits = []
        client.subscribe(Q.attr("city") == "london", callback=hits.append)
        client.publish(_tuple_set(0))
        client.publish(_tuple_set(1, city="boston"))
        client.publish(_tuple_set(2))
        assert [e.record.get("sequence") for e in hits] == [0, 2]
        assert all(isinstance(e, MatchEvent) for e in hits)

    def test_pull_queue_delivery(self, client):
        subscription = client.subscribe(Q.attr("city") == "london")
        client.publish_many([_tuple_set(0), _tuple_set(1, city="boston"), _tuple_set(2)])
        events = subscription.drain()
        assert [e.record.get("sequence") for e in events] == [0, 2]
        assert subscription.poll() is None  # drained

    def test_events_iterator_runs_dry(self, client):
        subscription = client.subscribe(Q.attr("domain") == "traffic")
        client.publish(_tuple_set(0))
        assert len(list(subscription.events())) == 1
        assert list(subscription.events()) == []

    def test_only_publishes_after_registration_match(self, client):
        client.publish(_tuple_set(0))
        subscription = client.subscribe(Q.attr("city") == "london")
        client.publish(_tuple_set(1))
        events = subscription.drain()
        assert [e.record.get("sequence") for e in events] == [1]

    def test_matches_are_post_commit(self, client):
        """The observed record must be fully queryable when the event fires."""
        seen = []

        def probe(event):
            # Inside the notification the store already answers queries
            # for the very record being announced.
            answer = client.query(Q.attr("sequence") == event.record.get("sequence"))
            seen.append(event.pname in answer.pname_set())

        client.subscribe(Q.attr("city") == "london", callback=probe)
        client.publish(_tuple_set(0))
        client.publish_many([_tuple_set(1), _tuple_set(2)])
        assert seen == [True, True, True]

    def test_lineage_predicates_are_rejected(self, client):
        root = _tuple_set(0)
        client.publish(root)
        with pytest.raises(UnsupportedQueryError):
            client.subscribe(Q.derived_from(root))

    def test_limit_and_order_by_are_rejected(self, client):
        with pytest.raises(QueryError):
            client.subscribe(Q.find(Q.attr("city") == "london").limit(5))
        with pytest.raises(QueryError):
            client.subscribe(Q.find(Q.attr("city") == "london").order_by("sequence"))

    def test_unsubscribe_stops_delivery(self, client):
        hits = []
        subscription = client.subscribe(Q.attr("city") == "london", callback=hits.append)
        client.publish(_tuple_set(0))
        assert client.unsubscribe(subscription) is True
        client.publish(_tuple_set(1))
        assert len(hits) == 1
        assert client.unsubscribe(subscription) is False
        assert client.subscriptions() == []

    def test_subscriptions_listing_and_stats(self, client):
        subscription = client.subscribe(Q.attr("city") == "london", name="london-monitor")
        client.publish(_tuple_set(0))
        listed = client.subscriptions()
        assert [s.name for s in listed] == ["london-monitor"]
        facts = subscription.stats()
        assert facts["matched"] == 1
        assert facts["delivered"] == 1
        assert facts["dropped"] == 0
        stream = client.stats()["stream"]
        assert stream["subscriptions"] == 1
        assert stream["matches"] == 1

    def test_close_detaches_the_engine(self):
        client = connect("memory://")
        hits = []
        client.subscribe(Q.everything(), callback=hits.append)
        client.close()
        assert client.subscriptions() == []

    def test_failing_callback_does_not_starve_other_subscribers(self, client):
        """One bad consumer must not abort delivery or fail the publish."""

        def explode(event):
            raise RuntimeError("subscriber bug")

        healthy = []
        bad = client.subscribe(Q.attr("city") == "london", callback=explode)
        client.subscribe(Q.attr("city") == "london", callback=healthy.append)
        result = client.publish_many([_tuple_set(0), _tuple_set(1)])  # must not raise
        assert len(result.records) == 2
        assert len(healthy) == 2
        assert bad.stats()["errors"] == 2
        assert client.stats()["stream"]["callback_errors"] == 2
        # The records themselves committed fine.
        assert client.query(Q.attr("city") == "london").total == 2


class TestDurableTarget:
    def test_subscriptions_on_sqlite(self, tmp_path):
        """The engine rides the ingest hook, so durable stores stream too."""
        with connect(f"sqlite:///{tmp_path}/pass.db") as client:
            hits = []
            client.subscribe(Q.attr("city") == "london", callback=hits.append)
            subscription = client.subscribe_descendants(_tuple_set(0).pname)
            client.publish_many(
                [
                    _tuple_set(0),
                    _tuple_set(1, city="boston"),
                    _tuple_set(2, parents=[_tuple_set(0).pname]),
                ]
            )
            assert [e.record.get("sequence") for e in hits] == [0, 2]
            assert [e.record.get("sequence") for e in subscription.drain()] == [2]
            assert client.stats()["stream"]["matches"] == 2


class TestOverflowPolicies:
    def test_drop_oldest_keeps_the_most_recent(self, client):
        subscription = client.subscribe(
            Q.attr("domain") == "traffic", maxsize=3, overflow="drop-oldest"
        )
        client.publish_many([_tuple_set(i) for i in range(8)])
        events = subscription.drain()
        assert [e.record.get("sequence") for e in events] == [5, 6, 7]
        assert subscription.dropped == 5
        assert subscription.stats()["dropped"] == 5
        # Drop counts surface in the client-level stream stats too.
        assert client.stats()["stream"]["dropped"] == 5

    def test_block_waits_for_a_consumer(self):
        queue = DeliveryQueue(maxsize=2, overflow="block")
        queue.put("a")
        queue.put("b")
        produced = []

        def producer():
            queue.put("c")  # blocks until the main thread makes room
            produced.append(True)

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        assert not produced  # still blocked against the full queue
        assert queue.get(timeout=1.0) == "a"
        thread.join(timeout=5.0)
        assert produced == [True]
        assert queue.dropped == 0
        assert [queue.get(), queue.get()] == ["b", "c"]

    def test_unknown_policy_is_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            DeliveryQueue(maxsize=2, overflow="drop-newest")
        with pytest.raises(ConfigurationError):
            DeliveryQueue(maxsize=0)

    def test_callback_subscriptions_validate_queue_options_too(self, client):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            client.subscribe(Q.everything(), callback=print, overflow="drop-newest")
        with pytest.raises(ConfigurationError):
            client.subscribe(Q.everything(), callback=print, maxsize=-5)


class TestLineageTriggers:
    def test_descendants_fire_incrementally(self, client):
        root = _tuple_set(0)
        client.publish(root)
        subscription = client.subscribe_descendants(root)
        child = _tuple_set(1, parents=[root.pname])
        grandchild = _tuple_set(2, parents=[child.pname])
        unrelated = _tuple_set(3)
        client.publish_many([child, grandchild, unrelated])
        events = subscription.drain()
        assert [e.pname for e in events] == [child.pname, grandchild.pname]
        assert all(e.watched == root.pname for e in events)

    def test_diamond_descent_fires_once_per_publish(self, client):
        root = _tuple_set(0)
        client.publish(root)
        subscription = client.subscribe_descendants(root)
        left = _tuple_set(1, parents=[root.pname])
        right = _tuple_set(2, parents=[root.pname])
        merged = _tuple_set(3, parents=[left.pname, right.pname])
        client.publish_many([left, right, merged])
        events = subscription.drain()
        # merged descends from the root via both sides but is one publish.
        assert [e.pname for e in events] == [left.pname, right.pname, merged.pname]

    def test_watching_a_not_yet_published_pname(self, client):
        root = _tuple_set(0)
        subscription = client.subscribe_descendants(root.pname)
        client.publish(root)  # the watched node itself is not a descendant
        child = _tuple_set(1, parents=[root.pname])
        client.publish(child)
        events = subscription.drain()
        assert [e.pname for e in events] == [child.pname]

    def test_late_watch_catches_descent_via_preexisting_intermediates(self, client):
        """Subscribing after a child exists still fires for grandchildren."""
        root = _tuple_set(0)
        child = _tuple_set(1, parents=[root.pname])
        client.publish_many([root, child])
        subscription = client.subscribe_descendants(root)
        grandchild = _tuple_set(2, parents=[child.pname])
        client.publish(grandchild)
        events = subscription.drain()
        assert [e.pname for e in events] == [grandchild.pname]

    def test_known_descendants_accepts_a_one_shot_iterable(self, client):
        """A generator seed must not be half-consumed (it is read twice)."""
        engine = client._stream_engine(create=True)
        root = _tuple_set(0)
        child = _tuple_set(1, parents=[root.pname])
        client.publish_many([root, child])
        subscription = engine.subscribe_descendants(
            root.pname, known_descendants=(p for p in [child.pname])
        )
        client.publish(_tuple_set(2, parents=[child.pname]))
        events = subscription.drain()
        assert [e.record.get("sequence") for e in events] == [2]

    def test_unsubscribe_lineage(self, client):
        root = _tuple_set(0)
        client.publish(root)
        subscription = client.subscribe_descendants(root)
        client.unsubscribe(subscription)
        client.publish(_tuple_set(1, parents=[root.pname]))
        assert subscription.drain() == []

    def test_engine_delivery_counters_survive_unsubscribe(self, client):
        """stats()['stream'] counters are cumulative; they never run backwards."""
        subscription = client.subscribe(Q.attr("city") == "london", maxsize=1)
        client.publish_many([_tuple_set(0), _tuple_set(1)])  # 1 delivered kept, 1 evicted
        before = client.stats()["stream"]
        assert before["deliveries"] == 2 and before["dropped"] == 1
        client.unsubscribe(subscription)
        after = client.stats()["stream"]
        assert after["deliveries"] == 2
        assert after["dropped"] == 1

    def test_local_client_rides_the_shared_reachability_index(self, client):
        """The local engine keeps no edge/label maps; the store's closure answers."""
        root = _tuple_set(0)
        client.publish(root)
        subscription = client.subscribe_descendants(root)
        client.publish(_tuple_set(1, parents=[root.pname]))
        engine = client._stream_engine(create=False)
        assert engine.stats()["lineage_matching"] == "shared-index"
        assert engine._children_seen == {}  # no engine-side bookkeeping at all
        assert engine._taint == {}
        assert [e.record.get("sequence") for e in subscription.drain()] == [1]

    def test_graph_walking_closures_keep_label_inheritance(self):
        """A naive-closure store must not pay a BFS per ingest per watch."""
        with connect("memory://?closure=naive") as naive_client:
            root = _tuple_set(0)
            naive_client.publish(root)
            subscription = naive_client.subscribe_descendants(root)
            engine = naive_client._stream_engine(create=False)
            assert engine.stats()["lineage_matching"] == "label-inheritance"
            naive_client.publish(_tuple_set(1, parents=[root.pname]))
            assert [e.record.get("sequence") for e in subscription.drain()] == [1]

    def test_lineage_edge_map_is_capped_visibly(self):
        """The label-inheritance fallback (no oracle) caps its edge map loudly."""
        from repro.stream import engine as engine_module
        from repro.stream.engine import StreamEngine

        engine = StreamEngine()  # no lineage oracle: the distributed-model path
        assert engine.stats()["lineage_matching"] == "label-inheritance"
        root = _tuple_set(0)
        engine.subscribe_descendants(root.pname)
        original = engine_module.CHILDREN_SEEN_MAX_EDGES
        engine_module.CHILDREN_SEEN_MAX_EDGES = 1
        try:
            for child in (_tuple_set(1, parents=[root.pname]), _tuple_set(2, parents=[root.pname])):
                engine.on_ingest(child.pname, child.provenance)
        finally:
            engine_module.CHILDREN_SEEN_MAX_EDGES = original
        facts = engine.stats()
        assert facts.get("lineage_edges_capped") is True  # truncation is never silent

    def test_last_lineage_unsubscribe_releases_edge_tracking(self):
        """No watchers left -> the fallback engine drops its label and edge maps."""
        from repro.stream.engine import StreamEngine

        engine = StreamEngine()
        root = _tuple_set(0)
        engine.on_ingest(root.pname, root.provenance)
        subscription = engine.subscribe_descendants(root.pname)
        child = _tuple_set(1, parents=[root.pname])
        engine.on_ingest(child.pname, child.provenance)
        assert engine._children_seen  # tracked while the watch was live
        engine.unsubscribe(subscription)
        assert engine._children_seen == {}
        assert engine._taint == {}
        # And ingest stops recording edges entirely without lineage interest.
        grandchild = _tuple_set(2, parents=[root.pname])
        engine.on_ingest(grandchild.pname, grandchild.provenance)
        assert engine._children_seen == {}


class TestStoreLevelIngests:
    def test_direct_store_ingest_reaches_subscribers(self, client):
        """The hook rides PassStore.ingest, not the façade publish wrapper."""
        hits = []
        client.subscribe(Q.attr("city") == "london", callback=hits.append)
        client.store.ingest(_tuple_set(0))
        assert len(hits) == 1

    def test_idempotent_reingest_does_not_refire(self, client):
        hits = []
        client.subscribe(Q.attr("city") == "london", callback=hits.append)
        ts = _tuple_set(0)
        client.publish(ts)
        client.publish(ts)  # same provenance, same data: idempotent
        assert len(hits) == 1
