"""Subscriptions on distributed targets: notify traffic through the simulator.

The Section IV comparison gains a dissemination dimension: every
delivery on an architecture model is one simulated ``notify`` message,
charged through the :class:`~repro.net.simulator.NetworkSimulator` and
surfaced per-kind in ``client.stats()["traffic"]["by_kind"]`` -- so
centralized vs. DHT vs. hierarchical push cost is measurable without
reaching into the simulator.
"""

from __future__ import annotations

import pytest

from repro.api import Q, connect
from repro.core import GeoPoint, ProvenanceRecord, Timestamp, TupleSet

DISTRIBUTED_TARGETS = [
    "centralized://",
    "distributed-db://",
    "federated://",
    "soft-state://",
    "hierarchical://",
    "dht://",
    "locale-aware-pass://",
]


def _tuple_set(i: int, city: str = "london") -> TupleSet:
    record = ProvenanceRecord(
        {
            "domain": "traffic",
            "city": city,
            "sequence": i,
            "window_start": Timestamp(60.0 * i),
            "window_end": Timestamp(60.0 * i + 59.0),
            "location": GeoPoint(51.5, -0.1),
        }
    )
    return TupleSet([], record)


@pytest.mark.parametrize("url", DISTRIBUTED_TARGETS)
class TestNotifyAcrossArchitectures:
    def test_matches_deliver_and_notify_traffic_is_visible(self, url):
        client = connect(url)
        hits = []
        client.subscribe(Q.attr("city") == "london", callback=hits.append)
        client.publish_many([_tuple_set(0), _tuple_set(1, city="boston"), _tuple_set(2)])

        assert [e.record.get("sequence") for e in hits] == [0, 2]

        stats = client.stats()
        notify = stats["traffic"]["by_kind"].get("notify")
        assert notify is not None, f"{url} charged no notify traffic"
        assert notify["messages"] == 2
        assert notify["bytes"] > 0
        assert stats["notifications_sent"] == 2
        assert stats["stream"]["subscriptions"] == 1
        assert stats["stream"]["matches"] == 2

    def test_no_subscriptions_means_no_notify_traffic(self, url):
        client = connect(url)
        client.publish_many([_tuple_set(0), _tuple_set(1)])
        stats = client.stats()
        assert "notify" not in stats["traffic"]["by_kind"]
        # The stream block keeps its full shape even when nothing ever
        # subscribed, so dashboards can key on the counters unconditionally.
        assert stats["stream"]["subscriptions"] == 0
        assert stats["stream"]["matches"] == 0
        assert stats["stream"]["records_seen"] == 0


class TestNotifyCostDiffersByArchitecture:
    def test_publish_result_charges_notify_messages(self):
        client = connect("centralized://")
        client.subscribe(Q.attr("city") == "london")
        quiet = client.publish(_tuple_set(0, city="boston"))
        noisy = client.publish(_tuple_set(1))
        # The matching publish carries exactly one extra (notify) message.
        assert noisy.cost.messages == quiet.cost.messages + 1
        assert noisy.cost.bytes > quiet.cost.bytes

    def test_subscriber_origin_routes_the_notify(self):
        client = connect("centralized://")
        # Pick a concrete consumer site; every notify should land there.
        site = client.topology.site_names[0]
        client.subscribe(Q.attr("city") == "london", origin=site)
        client.publish(_tuple_set(0))
        network = client.model.network
        assert network.messages_between(client.model.warehouse_site, site) >= 1

    def test_unknown_subscriber_site_is_rejected(self):
        from repro.errors import ConfigurationError

        client = connect("centralized://")
        with pytest.raises(ConfigurationError):
            client.subscribe(Q.attr("city") == "london", origin="atlantis")

    def test_partitioned_subscriber_misses_events_loudly(self):
        client = connect("centralized://")
        site = client.topology.site_names[0]
        subscription = client.subscribe(Q.attr("city") == "london", origin=site)
        client.model.network.partition(site)
        result = client.publish(_tuple_set(0))
        assert any("notify" in note and "dropped" in note for note in result.notes)
        assert client.model.notifications_suppressed == 1
        # Delivery is gated on the simulated send: the partitioned
        # subscriber genuinely observes nothing, though the match itself
        # happened at the disseminating site -- so the per-subscription
        # and engine-level counters agree: matched 1, delivered 0.
        assert subscription.drain() == []
        assert subscription.stats()["matched"] == 1
        assert subscription.stats()["delivered"] == 0
        assert client.stats()["stream"]["matches"] == 1
        # Healing the partition resumes delivery for later publishes.
        client.model.network.heal(site)
        client.publish(_tuple_set(1))
        assert [e.record.get("sequence") for e in subscription.drain()] == [1]

    def test_two_clients_wrapping_one_model_both_receive(self):
        """Attaching a second engine must not displace the first."""
        from repro.api import wrap

        first = connect("centralized://")
        second = wrap(first.model)
        got_first, got_second = [], []
        first.subscribe(Q.attr("city") == "london", callback=got_first.append)
        second.subscribe(Q.attr("city") == "london", callback=got_second.append)
        first.publish(_tuple_set(0))
        assert len(got_first) == 1
        assert len(got_second) == 1
        # Closing one client detaches only its own engine.
        second.close()
        first.publish(_tuple_set(1))
        assert len(got_first) == 2
        assert len(got_second) == 1

    def test_late_model_watch_catches_preexisting_descent(self):
        client = connect("centralized://")
        root = _tuple_set(0)
        child_record = ProvenanceRecord(
            {"domain": "traffic", "city": "london", "sequence": 1},
            ancestors=(root.pname,),
        )
        child = TupleSet([], child_record)
        client.publish_many([root, child])
        subscription = client.subscribe_descendants(root)  # child already exists
        grandchild_record = ProvenanceRecord(
            {"domain": "traffic", "city": "london", "sequence": 2},
            ancestors=(child.pname,),
        )
        client.publish(TupleSet([], grandchild_record))
        events = subscription.drain()
        assert [e.record.get("sequence") for e in events] == [2]

    def test_lineage_triggers_work_on_models_too(self):
        client = connect("distributed-db://")
        root = _tuple_set(0)
        client.publish(root)
        subscription = client.subscribe_descendants(root)
        child_record = ProvenanceRecord(
            {"domain": "traffic", "city": "london", "sequence": 1},
            ancestors=(root.pname,),
        )
        client.publish(TupleSet([], child_record))
        events = subscription.drain()
        assert [e.watched for e in events] == [root.pname]
        assert client.stats()["traffic"]["by_kind"]["notify"]["messages"] == 1

    def test_windowed_subscription_on_a_model(self):
        from repro.stream import WindowSpec

        client = connect("dht://")
        subscription = client.subscribe(
            Q.attr("city") == "london", window=WindowSpec(size_seconds=120.0)
        )
        client.publish_many([_tuple_set(0), _tuple_set(1), _tuple_set(2)])
        events = subscription.drain()
        assert [e.count for e in events] == [2]  # [0, 120) closed by t=120
        assert client.stats()["traffic"]["by_kind"]["notify"]["messages"] == 1
