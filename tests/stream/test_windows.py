"""Window aggregation semantics: tumbling, sliding, grouping, watermarks."""

from __future__ import annotations

import pytest

from repro.api import Q, connect
from repro.core import ProvenanceRecord, Timestamp, TupleSet
from repro.errors import ConfigurationError
from repro.stream import WindowAggregator, WindowEvent, WindowSpec


def _tuple_set(t: float, city: str = "london", speed: float = 30.0) -> TupleSet:
    record = ProvenanceRecord(
        {
            "domain": "traffic",
            "city": city,
            "mean_speed": speed,
            "window_start": Timestamp(t),
            "window_end": Timestamp(t + 59.0),
        }
    )
    return TupleSet([], record)


def _record(t: float, **extra) -> ProvenanceRecord:
    return ProvenanceRecord({"window_start": Timestamp(t), **extra})


class TestWindowSpecValidation:
    def test_rejects_nonpositive_size(self):
        with pytest.raises(ConfigurationError):
            WindowSpec(size_seconds=0)

    def test_rejects_slide_larger_than_size(self):
        with pytest.raises(ConfigurationError):
            WindowSpec(size_seconds=10, slide_seconds=20)

    def test_rejects_unknown_aggregate(self):
        with pytest.raises(ConfigurationError):
            WindowSpec(size_seconds=10, aggregate="median")

    def test_value_aggregates_need_a_value_attr(self):
        with pytest.raises(ConfigurationError):
            WindowSpec(size_seconds=10, aggregate="mean")


class TestTumblingWindows:
    def test_count_per_window_emits_on_watermark(self):
        aggregator = WindowAggregator(WindowSpec(size_seconds=120.0))
        assert aggregator.observe(_record(0.0)) == []
        assert aggregator.observe(_record(60.0)) == []
        # Crossing into the next window closes the first one.
        emitted = aggregator.observe(_record(120.0))
        assert emitted == [(0.0, 120.0, None, 2.0, 2)]

    def test_mean_min_max_sum(self):
        for aggregate, expected in (("mean", 20.0), ("min", 10.0), ("max", 30.0), ("sum", 60.0)):
            aggregator = WindowAggregator(
                WindowSpec(size_seconds=100.0, aggregate=aggregate, value_attr="speed")
            )
            for t, speed in ((0.0, 10.0), (10.0, 20.0), (20.0, 30.0)):
                aggregator.observe(_record(t, speed=speed))
            emitted = aggregator.observe(_record(150.0, speed=0.0))
            assert emitted == [(0.0, 100.0, None, expected, 3)]

    def test_group_by_partitions_each_window(self):
        aggregator = WindowAggregator(WindowSpec(size_seconds=100.0, group_by="city"))
        aggregator.observe(_record(0.0, city="london"))
        aggregator.observe(_record(10.0, city="boston"))
        aggregator.observe(_record(20.0, city="london"))
        emitted = aggregator.observe(_record(200.0, city="paris"))
        assert sorted((group, count) for _, _, group, _, count in emitted) == [
            ("boston", 1),
            ("london", 2),
        ]

    def test_mean_ignores_records_missing_the_value(self):
        """A matched record without value_attr must not dilute the mean."""
        aggregator = WindowAggregator(
            WindowSpec(size_seconds=100.0, aggregate="mean", value_attr="speed")
        )
        aggregator.observe(_record(0.0, speed=10.0))
        aggregator.observe(_record(10.0))  # matched, but carries no speed
        emitted = aggregator.flush()
        assert emitted == [(0.0, 100.0, None, 10.0, 2)]  # mean 10.0, count 2

    def test_mean_of_only_valueless_records_is_none(self):
        aggregator = WindowAggregator(
            WindowSpec(size_seconds=100.0, aggregate="mean", value_attr="speed")
        )
        aggregator.observe(_record(0.0))
        assert aggregator.flush() == [(0.0, 100.0, None, None, 1)]

    def test_records_without_event_time_are_skipped(self):
        aggregator = WindowAggregator(WindowSpec(size_seconds=100.0))
        assert aggregator.observe(ProvenanceRecord({"city": "london"})) == []
        assert aggregator.skipped_records == 1

    def test_late_record_behind_emitted_window_is_counted(self):
        aggregator = WindowAggregator(WindowSpec(size_seconds=100.0))
        aggregator.observe(_record(0.0))
        aggregator.observe(_record(250.0))  # closes [0, 100)
        aggregator.observe(_record(10.0))  # too late for [0, 100)
        assert aggregator.late_records == 1

    def test_late_count_covers_partially_missed_sliding_windows(self):
        """One late count per already-emitted window the record missed,
        even when the record still lands in an open sliding window."""
        aggregator = WindowAggregator(WindowSpec(size_seconds=10.0, slide_seconds=5.0))
        aggregator.observe(_record(2.0))
        aggregator.observe(_record(11.0))  # closes [0, 10); [5, 15) stays open
        aggregator.observe(_record(7.0))  # belonged in both; missed [0, 10)
        assert aggregator.late_records == 1
        emitted = aggregator.flush()
        counts = {(start, end): count for start, end, _, _, count in emitted}
        assert counts[(5.0, 15.0)] == 2  # the open window did admit it

    def test_flush_closes_open_windows(self):
        aggregator = WindowAggregator(WindowSpec(size_seconds=100.0))
        aggregator.observe(_record(0.0))
        aggregator.observe(_record(10.0))
        assert aggregator.flush() == [(0.0, 100.0, None, 2.0, 2)]
        assert aggregator.open_windows() == 0


class TestSlidingWindows:
    def test_each_record_lands_in_every_covering_window(self):
        aggregator = WindowAggregator(WindowSpec(size_seconds=100.0, slide_seconds=50.0))
        aggregator.observe(_record(60.0))  # covered by [0,100) and [50,150)
        emitted = aggregator.observe(_record(200.0))
        closed = [(start, end, count) for start, end, _, _, count in emitted]
        assert (0.0, 100.0, 1) in closed
        assert (50.0, 150.0, 1) in closed

    def test_windows_emit_in_start_order(self):
        aggregator = WindowAggregator(WindowSpec(size_seconds=100.0, slide_seconds=25.0))
        aggregator.observe(_record(80.0))
        emitted = aggregator.observe(_record(400.0))
        starts = [start for start, *_ in emitted]
        assert starts == sorted(starts)


class TestWindowedSubscriptions:
    def test_client_window_subscription_end_to_end(self):
        with connect("memory://") as client:
            subscription = client.subscribe(
                Q.attr("city") == "london",
                window=WindowSpec(
                    size_seconds=120.0, aggregate="mean", value_attr="mean_speed"
                ),
            )
            client.publish_many(
                [
                    _tuple_set(0.0, speed=10.0),
                    _tuple_set(60.0, speed=30.0),
                    _tuple_set(60.0, city="boston", speed=99.0),  # filtered out
                    _tuple_set(120.0, speed=50.0),
                ]
            )
            events = subscription.drain()
            assert len(events) == 1
            event = events[0]
            assert isinstance(event, WindowEvent)
            assert (event.window_start, event.window_end) == (0.0, 120.0)
            assert event.value == 20.0
            assert event.count == 2

    def test_flush_windows_via_the_client(self):
        with connect("memory://") as client:
            subscription = client.subscribe(
                Q.everything(), window=WindowSpec(size_seconds=600.0)
            )
            client.publish(_tuple_set(0.0))
            assert subscription.drain() == []  # window still open
            assert client.flush_windows() == 1
            events = subscription.drain()
            assert [e.count for e in events] == [1]
