"""Tests for the Q query-builder DSL and its lowering to the Predicate algebra."""

from __future__ import annotations

import pytest

from repro.api import Q, QueryBuilder, as_query
from repro.api.dsl import coerce_pname
from repro.core import GeoPoint, ProvenanceRecord, Timestamp
from repro.core.query import (
    TRUE,
    AgentIs,
    AncestorOf,
    And,
    AnnotationMatches,
    AttributeContains,
    AttributeEquals,
    AttributeExists,
    AttributeIn,
    AttributeRange,
    DerivedFrom,
    IsRaw,
    NearLocation,
    Not,
    Or,
    Predicate,
    Query,
)
from repro.core.tupleset import TupleSet
from repro.errors import QueryError


@pytest.fixture
def record():
    return ProvenanceRecord({"domain": "traffic", "city": "london", "vehicle_count": 42})


class TestAttrLowering:
    def test_equality_lowers_to_AttributeEquals(self):
        predicate = Q.attr("city") == "london"
        assert predicate == AttributeEquals("city", "london")

    def test_inequality_lowers_to_Not_equals(self):
        predicate = Q.attr("city") != "london"
        assert isinstance(predicate, Not)
        assert predicate.part == AttributeEquals("city", "london")

    def test_comparisons_lower_to_ranges(self):
        assert (Q.attr("n") < 5) == AttributeRange("n", high=5, include_high=False)
        assert (Q.attr("n") <= 5) == AttributeRange("n", high=5)
        assert (Q.attr("n") > 5) == AttributeRange("n", low=5, include_low=False)
        assert (Q.attr("n") >= 5) == AttributeRange("n", low=5)

    def test_between(self):
        predicate = Q.attr("window_start").between(Timestamp(0.0), Timestamp(60.0))
        assert predicate == AttributeRange("window_start", Timestamp(0.0), Timestamp(60.0))

    def test_contains_one_of_exists_near(self):
        assert Q.attr("description").contains("zone") == AttributeContains("description", "zone")
        assert Q.attr("city").one_of("london", "boston") == AttributeIn(
            "city", ("london", "boston")
        )
        assert Q.attr("patient").exists() == AttributeExists("patient")
        centre = GeoPoint(51.5, -0.12)
        assert Q.attr("location").near(centre, 5.0) == NearLocation("location", centre, 5.0)

    def test_one_of_requires_values(self):
        with pytest.raises(QueryError):
            Q.attr("city").one_of()

    def test_empty_attribute_name_rejected(self):
        with pytest.raises(QueryError):
            Q.attr("")

    def test_dsl_predicates_evaluate(self, record):
        pname = record.pname()
        assert (Q.attr("city") == "london").matches(pname, record)
        assert not (Q.attr("city") == "boston").matches(pname, record)
        assert (Q.attr("vehicle_count") > 40).matches(pname, record)


class TestLineageAndOtherEntryPoints:
    def test_derived_from_accepts_pname_and_carriers(self, record):
        pname = record.pname()
        assert Q.derived_from(pname) == DerivedFrom(pname)
        assert Q.derived_from(record) == DerivedFrom(pname)
        tuple_set = TupleSet([], record)
        assert Q.derived_from(tuple_set) == DerivedFrom(pname)

    def test_ancestor_of(self, record):
        pname = record.pname()
        assert Q.ancestor_of(pname, include_self=True) == AncestorOf(pname, include_self=True)

    def test_coerce_pname_rejects_garbage(self):
        with pytest.raises(QueryError):
            coerce_pname("not-a-pname")

    def test_agent_annotated_raw(self):
        assert Q.agent("sharpen", kind="program") == AgentIs("sharpen", kind="program")
        assert Q.annotated("flag", 1) == AnnotationMatches("flag", 1)
        assert Q.raw() == IsRaw(True)
        assert Q.raw(False) == IsRaw(False)

    def test_combinator_entry_points(self):
        a, b = AttributeEquals("x", 1), AttributeEquals("y", 2)
        assert Q.all(a, b) == And((a, b))
        assert Q.any(a, b) == Or((a, b))
        assert Q.none(a) == Not(a)
        assert Q.everything() is TRUE

    def test_dsl_composes_with_core_combinators(self, record):
        pname = record.pname()
        predicate = (Q.attr("city") == "london") & ~(Q.attr("domain") == "weather")
        assert isinstance(predicate, Predicate)
        assert predicate.matches(pname, record)

    def test_q_is_a_namespace(self):
        with pytest.raises(TypeError):
            Q()


class TestQueryBuilderAndAsQuery:
    def test_builder_collects_options(self):
        query = (
            Q.find(Q.attr("city") == "london")
            .where(Q.attr("domain") == "traffic")
            .limit(5)
            .order_by("window_start")
            .exclude_removed()
            .build()
        )
        assert isinstance(query, Query)
        assert query.limit == 5
        assert query.order_by == "window_start"
        assert not query.include_removed
        assert isinstance(query.predicate, And)

    def test_builder_defaults_to_everything(self):
        query = Q.find().build()
        assert query.predicate is TRUE
        assert query.limit is None and query.include_removed

    def test_builder_rejects_non_predicates(self):
        with pytest.raises(QueryError):
            QueryBuilder("city=london")

    def test_as_query_accepts_all_shapes(self):
        assert as_query(None).predicate is TRUE
        predicate = Q.attr("city") == "london"
        assert as_query(predicate).predicate is predicate
        builder = Q.find(predicate).limit(3)
        assert as_query(builder).limit == 3
        query = Query(predicate=predicate)
        assert as_query(query) is query

    def test_as_query_rejects_bare_attr_and_garbage(self):
        with pytest.raises(QueryError):
            as_query(Q.attr("city"))
        with pytest.raises(QueryError):
            as_query(42)
