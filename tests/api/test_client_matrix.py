"""One shared suite exercising the PassClient protocol identically on every target.

This is the acceptance test of the unified façade: the same workload is
published through ``connect()`` into each local store and each
architecture model, and publish/query/ancestors/descendants/locate must
answer consistently with the local ground truth (modulo capabilities the
paper says a model lacks, which must be refused loudly, not wrongly).
"""

from __future__ import annotations

import pytest

from repro.api import Q, Result, connect
from repro.errors import UnsupportedQueryError
from repro.sensors.workloads import TrafficWorkload

ALL_TARGETS = [
    "memory://",
    "sqlite://",
    "sqlite://?shards=4",  # digest-partitioned store behind the same façade
    "centralized://",
    "distributed-db://",
    "federated://",
    "soft-state://",
    "hierarchical://",
    "dht://",
    "locale-aware-pass://",
    "pass://",  # resolved to a live daemon by the target fixture
    "pass+sharded://",  # a daemon whose tenant stores are sharded
]


@pytest.fixture(scope="module")
def workload_sets():
    workload = TrafficWorkload(seed=11, cities=("london", "boston"), stations_per_city=2)
    raw, derived = workload.all_sets(hours=0.5)
    return raw, derived


@pytest.fixture(scope="module")
def truth(workload_sets):
    raw, derived = workload_sets
    client = connect("memory://")
    client.publish_many(raw + derived)
    return client


@pytest.fixture(scope="module")
def daemon_url():
    """One live provenance daemon shared by the ``pass://`` target."""
    from repro.server import PassDaemon

    with PassDaemon() as daemon:
        yield daemon.address.url


@pytest.fixture(scope="module")
def sharded_daemon_url(tmp_path_factory):
    """A daemon serving tenants over a digest-partitioned SQLite store."""
    from repro.server import PassDaemon

    db = tmp_path_factory.mktemp("sharded-daemon") / "pass.db"
    with PassDaemon(backend_url=f"sqlite:///{db}?shards=4") as daemon:
        yield daemon.address.url


@pytest.fixture(params=ALL_TARGETS, scope="module")
def target(request, workload_sets):
    raw, derived = workload_sets
    url = request.param
    if url == "pass://":
        url = request.getfixturevalue("daemon_url")
    elif url == "pass+sharded://":
        url = request.getfixturevalue("sharded_daemon_url")
    client = connect(url)
    published = client.publish_many(raw + derived)
    client.refresh()  # soft state pushes its pending summaries
    assert len(published) == len(raw) + len(derived)
    yield client
    client.close()


class TestProtocolAcrossTargets:
    def test_attribute_query_matches_ground_truth(self, target, truth):
        question = Q.attr("city") == "london"
        expected = truth.query(question).pname_set()
        answer = target.query(question)
        assert isinstance(answer, Result)
        assert answer.pname_set() == expected

    def test_pagination_is_uniform(self, target, truth):
        question = Q.attr("city") == "london"
        full = target.query(question)
        page = target.query(question, limit=3, offset=1)
        assert len(page) == min(3, max(0, full.total - 1))
        assert page.total == full.total
        assert page.records == full.records[1:4]
        assert page.has_more == (full.total > 4)

    def test_query_own_limit_still_reports_true_total(self, target, truth):
        """A ``Q.find(...).limit(n)`` must not corrupt total/has_more."""
        question = Q.attr("city") == "london"
        full_total = target.query(question).total
        limited = target.query(Q.find(question).limit(2))
        assert len(limited) == min(2, full_total)
        assert limited.total == full_total
        assert limited.has_more == (full_total > 2)
        # Explicit limit= combines with the query's limit as the stricter one.
        stricter = target.query(Q.find(question).limit(2), limit=1)
        assert len(stricter) == min(1, full_total)

    def test_ancestors_match_or_are_refused(self, target, truth, workload_sets):
        raw, derived = workload_sets
        focus = derived[0]
        if not target.supports_lineage:
            with pytest.raises(UnsupportedQueryError):
                target.ancestors(focus)
            return
        expected = truth.ancestors(focus).pname_set()
        assert target.ancestors(focus).pname_set() == expected

    def test_descendants_match_or_are_refused(self, target, truth, workload_sets):
        raw, derived = workload_sets
        focus = raw[0]
        if not target.supports_lineage:
            with pytest.raises(UnsupportedQueryError):
                target.descendants(focus)
            return
        expected = truth.descendants(focus).pname_set()
        assert target.descendants(focus).pname_set() == expected

    def test_locate_finds_published_data(self, target, workload_sets):
        raw, _ = workload_sets
        located = target.locate(raw[0])
        assert located.records == [raw[0].pname]
        assert located.cost.sites, "locate must name at least one holding site"

    def test_locate_unknown_pname_is_a_note_not_an_error(self, target, sample_tuple_set):
        located = target.locate(sample_tuple_set)
        assert len(located) == 0
        assert located.notes

    def test_stats_reports_target(self, target):
        stats = target.stats()
        assert "target" in stats
        assert stats["target"] == target.target


class TestBatchedPublish:
    def test_publish_many_equals_looped_publish(self, workload_sets):
        raw, derived = workload_sets
        looped = connect("memory://")
        for tuple_set in raw + derived:
            looped.publish(tuple_set)
        batched = connect("memory://")
        batched.publish_many(raw + derived)
        everything = Q.everything()
        assert batched.query(everything).pname_set() == looped.query(everything).pname_set()
        assert len(batched.store) == len(looped.store)
        assert batched.store.verify_invariants() == []

    def test_centralized_batch_is_one_round_trip(self, workload_sets):
        raw, derived = workload_sets
        sets = raw + derived
        looped = connect("centralized://")
        looped_cost = Result()
        for tuple_set in sets:
            looped_cost.merge(looped.publish(tuple_set))
        batched = connect("centralized://")
        batched_cost = batched.publish_many(sets)
        # Batches pay two messages per origin-site group instead of two per set.
        assert batched_cost.cost.messages < looped_cost.cost.messages
        assert batched_cost.cost.latency_ms < looped_cost.cost.latency_ms
        # ... without changing what got published.
        question = Q.attr("city") == "london"
        assert batched.query(question).pname_set() == looped.query(question).pname_set()

    def test_publish_many_on_models_preserves_answers(self, workload_sets, truth):
        raw, derived = workload_sets
        question = Q.attr("city") == "boston"
        expected = truth.query(question).pname_set()
        client = connect("distributed-db://")
        client.publish_many(raw + derived)
        assert client.query(question).pname_set() == expected


class TestRunQueryMatrix:
    def test_harness_matrix_over_urls(self, workload_sets):
        from repro.eval.harness import run_query_matrix

        raw, derived = workload_sets
        rows = run_query_matrix(
            ["memory://", "centralized://", "soft-state://"],
            raw + derived,
            {"london": Q.attr("city") == "london", "taint": Q.derived_from(raw[0])},
        )
        by_target = {row["target"]: row for row in rows}
        assert set(by_target) == {"memory://", "centralized://", "soft-state://"}
        assert by_target["memory://"]["london"] == by_target["centralized://"]["london"]
        # Soft state refuses transitive closure; the matrix reports it, not crashes.
        assert by_target["soft-state://"]["taint"] == "unsupported"
        assert by_target["centralized://"]["publish_messages"] > 0
