"""``client.explain()`` and rows-scanned cost reporting across targets."""

from __future__ import annotations

import pytest

from repro.api import Q, connect
from repro.core.attributes import GeoPoint
from repro.query import Explain
from repro.sensors.workloads import TrafficWorkload

TARGETS = [
    "memory://",
    "sqlite://",
    "centralized://",
    "distributed-db://",
    "federated://",
    "soft-state://",
    "hierarchical://",
    "dht://",
    "locale-aware-pass://",
]


@pytest.fixture(scope="module")
def workload_sets():
    workload = TrafficWorkload(seed=5, cities=("london", "boston"), stations_per_city=2)
    raw, derived = workload.all_sets(hours=0.5)
    return raw + derived


@pytest.fixture(params=TARGETS, scope="module")
def target(request, workload_sets):
    client = connect(request.param)
    client.publish_many(workload_sets)
    client.refresh()
    return client


class TestExplainAcrossTargets:
    def test_explain_returns_structured_output(self, target):
        explain = target.explain(Q.attr("city") == "london")
        assert isinstance(explain, Explain)
        assert explain.rows_scanned >= explain.actual_rows >= 0
        assert explain.format()

    def test_explain_actuals_match_query(self, target):
        question = Q.attr("city") == "london"
        explain = target.explain(question)
        assert explain.actual_rows == target.query(question).total

    def test_query_cost_reports_rows_scanned(self, target):
        result = target.query(Q.attr("city") == "london")
        assert result.cost.rows_scanned > 0

    def test_selective_query_scans_less_than_everything(self, target):
        if target.target == "dht":
            pytest.skip("the DHT fetches per-candidate records, not store scans")
        total = target.query(None).total
        selective = target.query(Q.attr("city") == "london")
        # An indexed equality must not scan every record at every site.
        assert selective.cost.rows_scanned <= total * 2


class TestDistributedExplain:
    def test_model_explain_nests_per_site_plans(self):
        client = connect("distributed-db://")
        workload = TrafficWorkload(seed=5, cities=("london",), stations_per_city=2)
        raw, derived = workload.all_sets(hours=0.5)
        client.publish_many(raw + derived)
        explain = client.explain(Q.attr("city") == "london")
        assert explain.path_kind == "distributed"
        assert explain.children
        for child in explain.children:
            assert isinstance(child, Explain)
            assert child.site
        assert explain.rows_scanned == sum(c.rows_scanned for c in explain.children)

    def test_temporal_fast_path_reaches_every_site(self):
        client = connect("centralized://")
        workload = TrafficWorkload(seed=5, cities=("london",), stations_per_city=2)
        raw, derived = workload.all_sets(hours=0.5)
        client.publish_many(raw + derived)
        explain = client.explain(Q.between(0.0, 600.0))
        child_kinds = {child.path_kind for child in explain.children}
        assert "temporal-overlap" in child_kinds


class TestQBetweenAndNear:
    def test_between_takes_temporal_path(self, workload_sets):
        client = connect("memory://")
        client.publish_many(workload_sets)
        explain = client.explain(Q.between(0.0, 600.0))
        assert explain.path_kind == "temporal-overlap"
        assert explain.used_index

    def test_near_takes_spatial_path_when_selective(self, workload_sets):
        client = connect("memory://")
        client.publish_many(workload_sets)
        # London and Boston are ~5300 km apart; a city-scale radius is
        # selective and must ride the spatial grid.
        explain = client.explain(Q.near(GeoPoint(51.5074, -0.1278), 30.0))
        assert explain.path_kind in ("spatial-radius", "full-scan")
        matches = client.query(Q.near(GeoPoint(51.5074, -0.1278), 30.0))
        everything = client.query(None)
        assert 0 < matches.total < everything.total
