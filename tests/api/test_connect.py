"""Tests for connect() URL parsing, the scheme registry and client construction."""

from __future__ import annotations

import pytest

from repro.api import ConnectionSpec, connect, known_schemes, parse_url
from repro.api.client import LocalClient, ModelClient, PassClient, wrap
from repro.api.topologies import synthetic_sites, topology_from_spec
from repro.core import PassStore
from repro.distributed import CentralizedWarehouse
from repro.errors import ConfigurationError
from repro.eval.scenario import standard_topology
from repro.storage.sqlite import SQLiteBackend


class TestParseUrl:
    def test_scheme_path_and_params(self):
        spec = parse_url("sqlite:///pass.db?closure=naive")
        assert spec.scheme == "sqlite"
        assert spec.path == "/pass.db"
        assert spec.params == {"closure": "naive"}

    def test_missing_scheme_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_url("just-a-string")

    def test_duplicate_parameter_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_url("dht://?sites=4&sites=8")

    def test_typed_accessors_and_errors(self):
        spec = parse_url("dht://?sites=8&rate=2.5&index=a,b")
        assert spec.integer("sites") == 8
        assert spec.number("rate") == 2.5
        assert spec.listing("index") == ["a", "b"]
        bad = parse_url("dht://?sites=eight")
        with pytest.raises(ConfigurationError):
            bad.integer("sites")
        with pytest.raises(ConfigurationError):
            parse_url("dht://?rate=fast").number("rate")
        with pytest.raises(ConfigurationError):
            parse_url("dht://?index=,,").listing("index")

    def test_database_path_conventions(self):
        assert parse_url("sqlite://").database_path() == ":memory:"
        assert parse_url("sqlite:///pass.db").database_path() == "pass.db"
        assert parse_url("sqlite:////var/lib/pass.db").database_path() == "/var/lib/pass.db"

    def test_unconsumed_tracking(self):
        spec = parse_url("memory://?closure=naive&bogus=1")
        spec.text("closure")
        assert spec.unconsumed() == ["bogus"]


class TestConnectStrictness:
    def test_unknown_scheme(self):
        with pytest.raises(ConfigurationError, match="unknown connection scheme"):
            connect("bogus://")

    def test_unknown_parameter(self):
        with pytest.raises(ConfigurationError, match="unknown parameter"):
            connect("memory://?sties=32")

    def test_bad_parameter_value(self):
        with pytest.raises(ConfigurationError):
            connect("dht://?sites=thirty-two")

    def test_path_on_pathless_scheme(self):
        with pytest.raises(ConfigurationError, match="takes no path"):
            connect("centralized://sites=8")

    def test_both_sites_and_cities_rejected(self):
        with pytest.raises(ConfigurationError):
            connect("dht://?sites=4&cities=london,boston")

    def test_unknown_city_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown city"):
            connect("dht://?cities=atlantis")

    def test_known_schemes_cover_all_targets(self):
        schemes = known_schemes()
        for expected in (
            "memory",
            "sqlite",
            "centralized",
            "distributed-db",
            "federated",
            "soft-state",
            "hierarchical",
            "dht",
            "locale-aware-pass",
        ):
            assert expected in schemes


class TestConnectConstruction:
    def test_memory_returns_local_client(self):
        client = connect("memory://")
        assert isinstance(client, LocalClient)
        assert client.target == "local"

    def test_memory_options(self):
        client = connect("memory://?closure=naive&site=gateway&indexed=city,domain")
        assert client.store.site == "gateway"
        assert client.store.closure.name == "naive"
        assert client.store.attribute_index.covers("city")
        assert not client.store.attribute_index.covers("patient")

    def test_sqlite_file_persists_across_connections(self, tmp_path, sample_tuple_set):
        url = f"sqlite:///{tmp_path}/pass.db"
        with connect(url) as client:
            assert isinstance(client.store.backend, SQLiteBackend)
            client.publish(sample_tuple_set)
        with connect(url) as reopened:
            assert len(reopened.locate(sample_tuple_set)) == 1

    def test_model_schemes_return_model_clients(self):
        for scheme, name in (
            ("centralized://", "centralized"),
            ("distributed-db://", "distributed-db"),
            ("federated://", "federated"),
            ("soft-state://", "soft-state"),
            ("hierarchical://", "hierarchical"),
            ("dht://", "dht"),
            ("locale-aware-pass://", "locale-aware-pass"),
        ):
            client = connect(scheme)
            assert isinstance(client, ModelClient)
            assert client.target == name

    def test_scheme_aliases(self):
        assert connect("ddb://").target == "distributed-db"
        assert connect("locale://").target == "locale-aware-pass"

    def test_sites_parameter_sizes_topology(self):
        client = connect("dht://?sites=12")
        # 12 storage sites plus the warehouse.
        assert len(client.topology) == 13

    def test_cities_parameter(self):
        client = connect("centralized://?cities=london,boston")
        assert "london-site" in client.topology
        assert "boston-site" in client.topology

    def test_origin_parameter_validated(self):
        with pytest.raises(ConfigurationError):
            connect("centralized://?origin=atlantis-site")
        client = connect("centralized://?origin=tokyo-site")
        assert client.default_origin == "tokyo-site"


class TestTopologyHelpers:
    def test_synthetic_sites_are_deterministic_and_distinct(self):
        a = synthetic_sites(16)
        b = synthetic_sites(16)
        assert [site.name for site in a] == [site.name for site in b]
        assert len({site.name for site in a}) == 16

    def test_synthetic_sites_requires_positive_count(self):
        with pytest.raises(ConfigurationError):
            synthetic_sites(0)

    def test_topology_from_spec_default_cities(self):
        topology = topology_from_spec(parse_url("dht://"))
        assert "london-site" in topology and "warehouse" in topology


class TestWrap:
    def test_wrap_store_and_model_and_client(self):
        store_client = wrap(PassStore())
        assert isinstance(store_client, LocalClient)
        model = CentralizedWarehouse(standard_topology(), warehouse_site="warehouse")
        model_client = wrap(model)
        assert isinstance(model_client, ModelClient)
        assert wrap(model_client) is model_client

    def test_wrap_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            wrap(object())

    def test_wrap_does_not_close_a_caller_owned_store(self, sample_tuple_set):
        store = PassStore()
        with wrap(store) as client:
            client.publish(sample_tuple_set)
        # The caller's store stays usable after the client context exits...
        assert sample_tuple_set.pname in store
        assert len(store.get_readings(sample_tuple_set.pname)) == len(sample_tuple_set)
        # ... whereas connect() clients own (and close) their backend.
        owned = connect("memory://")
        owned.close()
        from repro.errors import StorageError

        with pytest.raises(StorageError):
            owned.store.backend.record_count()

    def test_clients_are_pass_clients(self):
        assert isinstance(connect("memory://"), PassClient)
        assert isinstance(connect("dht://"), PassClient)
