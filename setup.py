"""Setup shim so legacy editable installs work in offline environments without the wheel package."""
from setuptools import setup

setup()
